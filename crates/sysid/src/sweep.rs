//! Parameter sweeps: training-data horizon and prediction length
//! (the two panels of the paper's Fig. 5).
//!
//! Both sweeps run through the incremental engine of [`crate::cache`]
//! when the fit is ridge-regularised (the default): the nested
//! training windows are fitted smallest-to-largest, each cell
//! ingesting only the transitions the previous cell did not cover,
//! with per-range Gram blocks memoized in a [`GramCache`]. The
//! `ridge == 0` configuration keeps the numerically robust QR
//! full-refit path ([`sweep_training_horizon_full`]).

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use thermal_timeseries::{Dataset, Mask};

use crate::cache::{identify_with_cache, GramCache, SweepEngine};
use crate::{
    evaluate, identify, EvalConfig, EvalReport, FitConfig, ModelSpec, Result, SysidError,
    ThermalModel,
};

/// One point of a sweep: the swept parameter value and the resulting
/// evaluation report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Value of the swept parameter (days of training data, or
    /// prediction horizon in samples, depending on the sweep).
    pub parameter: f64,
    /// Evaluation of the model at this parameter value.
    pub report: EvalReport,
}

/// Sweeps the amount of training data: for each entry of
/// `train_day_counts`, fit on the **most recent** `n` usable days
/// (within `mode_mask`) and evaluate on the fixed `validation_days`.
///
/// Reproduces the top panel of Fig. 5, where the paper observes that
/// *more* training data does not monotonically improve accuracy (13
/// training days beat 58 in their campaign): growing the window drags
/// in stale data from weeks earlier — different season, different
/// load patterns — which biases the fit.
///
/// # Errors
///
/// Propagates identification/evaluation failures; returns
/// [`crate::SysidError::InvalidSpec`] when `train_day_counts` asks for
/// more days than available.
#[allow(clippy::too_many_arguments)]
pub fn sweep_training_horizon(
    dataset: &Dataset,
    spec: &ModelSpec,
    mode_mask: &Mask,
    usable_days: &[i64],
    train_day_counts: &[usize],
    validation_days: &[i64],
    fit: &FitConfig,
    eval_cfg: &EvalConfig,
) -> Result<Vec<SweepPoint>> {
    sweep_training_horizon_with_cache(
        dataset,
        spec,
        mode_mask,
        usable_days,
        train_day_counts,
        validation_days,
        fit,
        eval_cfg,
        &mut GramCache::new(),
    )
}

/// [`sweep_training_horizon`] with a caller-owned [`GramCache`], so
/// repeated sweeps over the same dataset and spec (both Fig. 5
/// panels, bench reruns) reuse each other's memoized Gram blocks.
///
/// Ridge-regularised fits (the default) run through the incremental
/// engine; `fit.ridge == 0` falls back to
/// [`sweep_training_horizon_full`] (see the fallback rule in
/// [`crate::cache`]).
///
/// # Errors
///
/// Same conditions as [`sweep_training_horizon`]; when several cells
/// fail, the error of the lowest-index failing cell surfaces, matching
/// the full-refit path.
#[allow(clippy::too_many_arguments)]
pub fn sweep_training_horizon_with_cache(
    dataset: &Dataset,
    spec: &ModelSpec,
    mode_mask: &Mask,
    usable_days: &[i64],
    train_day_counts: &[usize],
    validation_days: &[i64],
    fit: &FitConfig,
    eval_cfg: &EvalConfig,
    cache: &mut GramCache,
) -> Result<Vec<SweepPoint>> {
    if fit.ridge == 0.0 {
        return sweep_training_horizon_full(
            dataset,
            spec,
            mode_mask,
            usable_days,
            train_day_counts,
            validation_days,
            fit,
            eval_cfg,
        );
    }
    let mut sorted = usable_days.to_vec();
    sorted.sort_unstable();
    let val_mask = Mask::days(dataset.grid(), validation_days).and(mode_mask)?;
    // Validate every requested horizon up front so the fit loop and
    // the parallel evaluation fan-out only see well-formed cells.
    for &n in train_day_counts {
        if n == 0 || n > sorted.len() {
            return Err(SysidError::InvalidSpec {
                reason: format!(
                    "training horizon {n} outside available {} usable days",
                    sorted.len()
                ),
            });
        }
    }
    // Fit stage, sequential by design: distinct horizons ascending are
    // nested windows, so the engine ingests every training day exactly
    // once across the whole sweep. Duplicated counts fit once.
    let distinct: BTreeSet<usize> = train_day_counts.iter().copied().collect();
    let mut engine = SweepEngine::new(dataset, spec, fit)?;
    let mut fits: BTreeMap<usize, Result<ThermalModel>> = BTreeMap::new();
    for &n in &distinct {
        let train_mask = Mask::days(dataset.grid(), &sorted[sorted.len() - n..]).and(mode_mask);
        let result = train_mask.map_err(SysidError::from).and_then(|mask| {
            let fitted = engine.fit_mask(&mask, cache);
            if fitted.is_err() {
                // A failed ingest may leave a partial delta in the
                // accumulators; the next cell re-ingests from scratch.
                engine.reset();
            }
            fitted
        });
        fits.insert(n, result);
    }
    // Error parity with the parallel full-refit path: the failing
    // cell with the lowest original index wins.
    for n in train_day_counts {
        if fits.get(n).is_some_and(std::result::Result::is_err) {
            if let Some(Err(e)) = fits.remove(n) {
                return Err(e);
            }
        }
    }
    let models: BTreeMap<usize, ThermalModel> = fits
        .into_iter()
        .filter_map(|(n, r)| r.ok().map(|m| (n, m)))
        .collect();
    // Evaluation stage: independent per cell, deterministic output
    // order — same fan-out as the full-refit path.
    thermal_par::try_parallel_map(train_day_counts, |&n| {
        let model = models.get(&n).ok_or(SysidError::Internal {
            context: "sweep cell model missing after fit stage",
        })?;
        let report = evaluate(model, dataset, &val_mask, eval_cfg)?;
        Ok(SweepPoint {
            parameter: n as f64,
            report,
        })
    })
}

/// The full-refit training-horizon sweep: every cell independently
/// assembles its regressors and solves from scratch (QR for
/// `ridge == 0`, ridge normal equations otherwise), cells fanned out
/// over the configured thread count.
///
/// This is the reference implementation the incremental engine is
/// differentially tested against, and the serving path for plain
/// (unregularised) least squares.
///
/// # Errors
///
/// Same conditions as [`sweep_training_horizon`].
#[allow(clippy::too_many_arguments)]
pub fn sweep_training_horizon_full(
    dataset: &Dataset,
    spec: &ModelSpec,
    mode_mask: &Mask,
    usable_days: &[i64],
    train_day_counts: &[usize],
    validation_days: &[i64],
    fit: &FitConfig,
    eval_cfg: &EvalConfig,
) -> Result<Vec<SweepPoint>> {
    let mut sorted = usable_days.to_vec();
    sorted.sort_unstable();
    let val_mask = Mask::days(dataset.grid(), validation_days).and(mode_mask)?;
    // Validate every requested horizon up front so the parallel fan-out
    // below only sees well-formed cells.
    for &n in train_day_counts {
        if n == 0 || n > sorted.len() {
            return Err(SysidError::InvalidSpec {
                reason: format!(
                    "training horizon {n} outside available {} usable days",
                    sorted.len()
                ),
            });
        }
    }
    // Each sweep cell fits and evaluates an independent model; errors
    // surface for the lowest-index failing cell regardless of
    // scheduling, matching the sequential loop.
    thermal_par::try_parallel_map(train_day_counts, |&n| {
        let recent = &sorted[sorted.len() - n..];
        let train_mask = Mask::days(dataset.grid(), recent).and(mode_mask)?;
        let model = identify(dataset, spec, &train_mask, fit)?;
        let report = evaluate(&model, dataset, &val_mask, eval_cfg)?;
        Ok(SweepPoint {
            parameter: n as f64,
            report,
        })
    })
}

/// Sweeps the open-loop prediction length: one model (fit on
/// `train_mask`) evaluated at each horizon of `horizons_samples`.
///
/// Reproduces the bottom panel of Fig. 5 (error grows monotonically
/// with prediction length).
///
/// # Errors
///
/// Propagates identification/evaluation failures.
pub fn sweep_prediction_length(
    dataset: &Dataset,
    spec: &ModelSpec,
    train_mask: &Mask,
    validation_mask: &Mask,
    horizons_samples: &[usize],
    fit: &FitConfig,
) -> Result<Vec<SweepPoint>> {
    sweep_prediction_length_with_cache(
        dataset,
        spec,
        train_mask,
        validation_mask,
        horizons_samples,
        fit,
        &mut GramCache::new(),
    )
}

/// [`sweep_prediction_length`] with a caller-owned [`GramCache`]: the
/// single shared fit goes through [`identify_with_cache`], so a sweep
/// over a training mask whose Gram blocks are already memoized (e.g.
/// by a preceding training-horizon sweep over the same data) skips
/// the regressor assembly.
///
/// # Errors
///
/// Same conditions as [`sweep_prediction_length`].
pub fn sweep_prediction_length_with_cache(
    dataset: &Dataset,
    spec: &ModelSpec,
    train_mask: &Mask,
    validation_mask: &Mask,
    horizons_samples: &[usize],
    fit: &FitConfig,
    cache: &mut GramCache,
) -> Result<Vec<SweepPoint>> {
    // One shared fit, then each horizon is an independent open-loop
    // evaluation — the cells fan out over the configured thread count.
    let model = identify_with_cache(dataset, spec, train_mask, fit, cache)?;
    thermal_par::try_parallel_map(horizons_samples, |&h| {
        let cfg = EvalConfig::with_horizon(h.max(1));
        let report = evaluate(&model, dataset, validation_mask, &cfg)?;
        Ok(SweepPoint {
            parameter: h as f64,
            report,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelOrder;
    use thermal_timeseries::{Channel, TimeGrid, Timestamp};

    /// Four days of hourly data from a noisy first-order system.
    fn synth() -> Dataset {
        let n = 4 * 24;
        let u: Vec<f64> = (0..n).map(|k| (k as f64 * 0.4).sin() * 0.5 + 0.5).collect();
        let mut t = vec![20.0_f64];
        // Deterministic "noise" so identification is imperfect but
        // reproducible.
        for k in 0..n - 1 {
            let wiggle = 0.01 * ((k * 7919 % 97) as f64 / 97.0 - 0.5);
            t.push(0.9 * t[k] + 1.0 * u[k] + wiggle);
        }
        let grid = TimeGrid::new(Timestamp::from_minutes(0), 60, n).unwrap();
        Dataset::new(
            grid,
            vec![
                Channel::from_values("t", t).unwrap(),
                Channel::from_values("u", u).unwrap(),
            ],
        )
        .unwrap()
    }

    fn spec() -> ModelSpec {
        ModelSpec::new(vec!["t".into()], vec!["u".into()], ModelOrder::First).unwrap()
    }

    #[test]
    fn training_sweep_produces_one_point_per_count() {
        let ds = synth();
        let mode = Mask::all(ds.grid());
        let points = sweep_training_horizon(
            &ds,
            &spec(),
            &mode,
            &[0, 1, 2],
            &[1, 2],
            &[3],
            &FitConfig::default(),
            &EvalConfig::default(),
        )
        .unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].parameter, 1.0);
        assert_eq!(points[1].parameter, 2.0);
        for p in &points {
            assert!(p.report.per_sensor_rms()[0].is_finite());
        }
    }

    #[test]
    fn training_sweep_rejects_oversized_horizon() {
        let ds = synth();
        let mode = Mask::all(ds.grid());
        assert!(sweep_training_horizon(
            &ds,
            &spec(),
            &mode,
            &[0, 1],
            &[3],
            &[2],
            &FitConfig::default(),
            &EvalConfig::default(),
        )
        .is_err());
    }

    /// Byte-level view of a sweep result: the full `Debug` rendering
    /// plus the exact bits of every per-sensor RMS.
    fn fingerprint(points: &[SweepPoint]) -> (String, Vec<u64>) {
        let bits = points
            .iter()
            .flat_map(|p| p.report.per_sensor_rms().iter().map(|v| v.to_bits()))
            .collect();
        (format!("{points:?}"), bits)
    }

    #[test]
    fn incremental_sweep_matches_full_refit_within_tolerance() {
        let ds = synth();
        let mode = Mask::all(ds.grid());
        let run = |full: bool| {
            let args = (
                &ds,
                &spec(),
                &mode,
                [0_i64, 1, 2].as_slice(),
                [1_usize, 2, 3].as_slice(),
                [3_i64].as_slice(),
            );
            if full {
                sweep_training_horizon_full(
                    args.0,
                    args.1,
                    args.2,
                    args.3,
                    args.4,
                    args.5,
                    &FitConfig::default(),
                    &EvalConfig::default(),
                )
            } else {
                sweep_training_horizon(
                    args.0,
                    args.1,
                    args.2,
                    args.3,
                    args.4,
                    args.5,
                    &FitConfig::default(),
                    &EvalConfig::default(),
                )
            }
        };
        let incremental = run(false).unwrap();
        let full = run(true).unwrap();
        assert_eq!(incremental.len(), full.len());
        for (a, b) in incremental.iter().zip(&full) {
            assert_eq!(a.parameter, b.parameter);
            for (x, y) in a
                .report
                .per_sensor_rms()
                .iter()
                .zip(b.report.per_sensor_rms())
            {
                assert!(
                    (x - y).abs() < 1e-6,
                    "cell {}: incremental {x} vs full {y}",
                    a.parameter
                );
            }
        }
    }

    #[test]
    fn sweep_is_bitwise_identical_across_cold_warm_and_disabled_caches() {
        let ds = synth();
        let mode = Mask::all(ds.grid());
        let mut shared = GramCache::new();
        let run = |cache: &mut GramCache| {
            fingerprint(
                &sweep_training_horizon_with_cache(
                    &ds,
                    &spec(),
                    &mode,
                    &[0, 1, 2],
                    &[1, 2, 3],
                    &[3],
                    &FitConfig::default(),
                    &EvalConfig::default(),
                    cache,
                )
                .unwrap(),
            )
        };
        let cold = run(&mut shared);
        let warm = run(&mut shared);
        let disabled = run(&mut GramCache::disabled());
        assert_eq!(cold, warm, "warm-cache sweep must be bit-identical");
        assert_eq!(cold, disabled, "memoization must not change results");
        assert!(shared.stats().hits > 0, "{:?}", shared.stats());
    }

    #[test]
    fn duplicate_counts_fit_once_and_match_bitwise() {
        let ds = synth();
        let mode = Mask::all(ds.grid());
        let points = sweep_training_horizon(
            &ds,
            &spec(),
            &mode,
            &[0, 1, 2],
            &[2, 1, 2],
            &[3],
            &FitConfig::default(),
            &EvalConfig::default(),
        )
        .unwrap();
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].parameter, 2.0);
        assert_eq!(points[1].parameter, 1.0);
        let (first, _) = fingerprint(&points[0..1]);
        let (third, _) = fingerprint(&points[2..3]);
        assert_eq!(first, third, "duplicated cells must be identical");
    }

    #[test]
    fn eval_stage_is_thread_count_invariant() {
        let ds = synth();
        let mode = Mask::all(ds.grid());
        let val_mask = Mask::days(ds.grid(), &[3]).and(&mode).unwrap();
        let spec = spec();
        let mut engine = SweepEngine::new(&ds, &spec, &FitConfig::default()).unwrap();
        let mut cache = GramCache::new();
        let models: Vec<ThermalModel> = (1..=3_i64)
            .map(|n| {
                let days: Vec<i64> = (3 - n..3).collect();
                let mask = Mask::days(ds.grid(), &days).and(&mode).unwrap();
                engine.fit_mask(&mask, &mut cache).unwrap()
            })
            .collect();
        let eval_all = |threads: usize| {
            thermal_par::try_parallel_map_with(threads, &models, |m| {
                evaluate(m, &ds, &val_mask, &EvalConfig::default())
            })
            .unwrap()
        };
        let seq = eval_all(1);
        let par = eval_all(4);
        assert_eq!(
            format!("{seq:?}"),
            format!("{par:?}"),
            "evaluation fan-out must be thread-count invariant"
        );
    }

    #[test]
    fn ridge_zero_sweep_takes_the_full_refit_path_bitwise() {
        let ds = synth();
        let mode = Mask::all(ds.grid());
        let run_plain = |via_cache: bool| {
            let fit = FitConfig::plain();
            if via_cache {
                sweep_training_horizon_with_cache(
                    &ds,
                    &spec(),
                    &mode,
                    &[0, 1, 2],
                    &[1, 2],
                    &[3],
                    &fit,
                    &EvalConfig::default(),
                    &mut GramCache::new(),
                )
            } else {
                sweep_training_horizon_full(
                    &ds,
                    &spec(),
                    &mode,
                    &[0, 1, 2],
                    &[1, 2],
                    &[3],
                    &fit,
                    &EvalConfig::default(),
                )
            }
        };
        let a = fingerprint(&run_plain(true).unwrap());
        let b = fingerprint(&run_plain(false).unwrap());
        assert_eq!(a, b, "ridge == 0 must route to the QR full-refit path");
    }

    #[test]
    fn prediction_length_sweep_is_monotone_for_imperfect_model() {
        let ds = synth();
        let train = Mask::days(ds.grid(), &[0, 1]);
        let val = Mask::days(ds.grid(), &[2, 3]);
        let points = sweep_prediction_length(
            &ds,
            &spec(),
            &train,
            &val,
            &[1, 6, 23],
            &FitConfig::default(),
        )
        .unwrap();
        assert_eq!(points.len(), 3);
        // One-step error should not exceed long-horizon error.
        let short = points[0].report.per_sensor_rms()[0];
        let long = points[2].report.per_sensor_rms()[0];
        assert!(
            short <= long + 1e-12,
            "expected error to grow with horizon: {short} vs {long}"
        );
    }
}
