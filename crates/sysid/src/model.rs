//! Thermal state-space model container: coefficient blocks, one-
//! step prediction and multi-step rollout (the paper's Eq. 2 family).

use serde::{Deserialize, Serialize};

use thermal_linalg::{Matrix, Vector};

use crate::{Result, SysidError};

/// Dynamic order of the identified thermal model.
///
/// The paper compares a first-order model (Eq. 1), which assumes supply
/// air mixes instantaneously, against a second-order model (Eq. 2)
/// that adds the temperature *increment* `ΔT(k) = T(k) − T(k−1)` to
/// the state and thereby captures the mixing delay of the plumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelOrder {
    /// `T(k+1) = A·T(k) + B·u(k)`.
    First,
    /// `[T(k+1); ΔT(k+1)] = A'·[T(k); ΔT(k)] + B'·u(k)`.
    Second,
}

impl ModelOrder {
    /// Number of lagged temperature blocks in the regressor
    /// (`1` for first order, `2` for second order counting the
    /// increment block).
    pub fn state_blocks(self) -> usize {
        match self {
            ModelOrder::First => 1,
            ModelOrder::Second => 2,
        }
    }

    /// Number of leading samples a segment must donate before the
    /// first usable transition (one extra for the increment).
    pub fn warmup(self) -> usize {
        match self {
            ModelOrder::First => 1,
            ModelOrder::Second => 2,
        }
    }
}

impl std::fmt::Display for ModelOrder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelOrder::First => write!(f, "first-order"),
            ModelOrder::Second => write!(f, "second-order"),
        }
    }
}

/// What to identify: which channels are the modelled temperatures,
/// which are exogenous inputs, and the dynamic order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Names of the temperature channels the model predicts.
    pub outputs: Vec<String>,
    /// Names of the exogenous input channels (paper order: four VAV
    /// flows, occupancy, lighting, ambient).
    pub inputs: Vec<String>,
    /// Dynamic order.
    pub order: ModelOrder,
}

impl ModelSpec {
    /// Creates a spec after basic validation.
    ///
    /// # Errors
    ///
    /// Returns [`SysidError::InvalidSpec`] when `outputs` is empty or
    /// names repeat across the two lists.
    pub fn new(outputs: Vec<String>, inputs: Vec<String>, order: ModelOrder) -> Result<Self> {
        if outputs.is_empty() {
            return Err(SysidError::InvalidSpec {
                reason: "model must have at least one output".to_owned(),
            });
        }
        let mut all: Vec<&String> = outputs.iter().chain(inputs.iter()).collect();
        all.sort();
        for w in all.windows(2) {
            if w[0] == w[1] {
                return Err(SysidError::InvalidSpec {
                    reason: format!("channel {:?} appears twice in the spec", w[0]),
                });
            }
        }
        Ok(ModelSpec {
            outputs,
            inputs,
            order,
        })
    }

    /// Number of outputs `p`.
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    /// Number of inputs `m`.
    pub fn input_count(&self) -> usize {
        self.inputs.len()
    }

    /// Width of the stacked regressor `[T(k); (ΔT(k)); u(k)]`.
    pub fn regressor_width(&self) -> usize {
        self.order.state_blocks() * self.output_count() + self.input_count()
    }
}

/// An identified linear thermal model.
///
/// Stores the compact coefficient matrix `Θ` (`p × regressor_width`)
/// with `T(k+1) = Θ · [T(k); (ΔT(k)); u(k)]`. For the second-order
/// form this is the top block row of the paper's `[A' B']`; the bottom
/// block row (`ΔT(k+1)`) is implied (`ΔT(k+1) = T(k+1) − T(k)`) and
/// carries no extra information.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThermalModel {
    spec: ModelSpec,
    /// `p × (state_blocks·p + m)` coefficient matrix.
    coef: Matrix,
}

impl ThermalModel {
    /// Assembles a model from a spec and coefficient matrix.
    ///
    /// # Errors
    ///
    /// Returns [`SysidError::DimensionMismatch`] when `coef` does not
    /// have shape `p × regressor_width`.
    pub fn new(spec: ModelSpec, coef: Matrix) -> Result<Self> {
        let expected = (spec.output_count(), spec.regressor_width());
        if coef.shape() != expected {
            return Err(SysidError::DimensionMismatch {
                what: "coefficient matrix rows",
                expected: expected.0 * expected.1,
                actual: coef.rows() * coef.cols(),
            });
        }
        Ok(ThermalModel { spec, coef })
    }

    /// The model specification.
    pub fn spec(&self) -> &ModelSpec {
        &self.spec
    }

    /// The raw coefficient matrix `Θ`.
    pub fn coefficients(&self) -> &Matrix {
        &self.coef
    }

    /// The `A` block (effect of `T(k)` on `T(k+1)`), `p × p`.
    ///
    /// # Errors
    ///
    /// Propagates [`SysidError::Linalg`] if the column selection fails
    /// (impossible for a model built through [`ThermalModel::new`]).
    pub fn a_matrix(&self) -> Result<Matrix> {
        let p = self.spec.output_count();
        let idx: Vec<usize> = (0..p).collect();
        Ok(self.coef.select_columns(&idx)?)
    }

    /// The `B` block (effect of inputs on `T(k+1)`), `p × m`.
    ///
    /// # Errors
    ///
    /// Propagates [`SysidError::Linalg`] if the column selection fails
    /// (impossible for a model built through [`ThermalModel::new`]).
    pub fn b_matrix(&self) -> Result<Matrix> {
        let p = self.spec.output_count();
        let start = self.spec.order.state_blocks() * p;
        let idx: Vec<usize> = (start..start + self.spec.input_count()).collect();
        Ok(self.coef.select_columns(&idx)?)
    }

    /// One-step prediction.
    ///
    /// `t_prev` is required (and used) only for second-order models.
    ///
    /// # Errors
    ///
    /// Returns [`SysidError::DimensionMismatch`] on mis-sized inputs
    /// or a missing `t_prev` for a second-order model.
    pub fn predict_next(&self, t: &[f64], t_prev: Option<&[f64]>, u: &[f64]) -> Result<Vector> {
        let mut regressor = Vec::with_capacity(self.spec.regressor_width());
        let mut out = Vec::with_capacity(self.spec.output_count());
        self.predict_next_into(t, t_prev, u, &mut regressor, &mut out)?;
        Ok(Vector::from(out))
    }

    /// One-step prediction into caller-owned buffers, so steady-state
    /// callers (the live prediction service) avoid heap allocation.
    ///
    /// `regressor` and `out` are cleared and refilled; their capacity
    /// is retained across calls. Arithmetic is identical to
    /// [`ThermalModel::predict_next`].
    ///
    /// # Errors
    ///
    /// Returns [`SysidError::DimensionMismatch`] on mis-sized inputs
    /// or a missing `t_prev` for a second-order model.
    pub fn predict_next_into(
        &self,
        t: &[f64],
        t_prev: Option<&[f64]>,
        u: &[f64],
        regressor: &mut Vec<f64>,
        out: &mut Vec<f64>,
    ) -> Result<()> {
        let p = self.spec.output_count();
        let m = self.spec.input_count();
        if t.len() != p {
            return Err(SysidError::DimensionMismatch {
                what: "state vector",
                expected: p,
                actual: t.len(),
            });
        }
        if u.len() != m {
            return Err(SysidError::DimensionMismatch {
                what: "input vector",
                expected: m,
                actual: u.len(),
            });
        }
        regressor.clear();
        regressor.extend_from_slice(t);
        if self.spec.order == ModelOrder::Second {
            let prev = t_prev.ok_or(SysidError::DimensionMismatch {
                what: "previous state (second-order model)",
                expected: p,
                actual: 0,
            })?;
            if prev.len() != p {
                return Err(SysidError::DimensionMismatch {
                    what: "previous state",
                    expected: p,
                    actual: prev.len(),
                });
            }
            for (a, b) in t.iter().zip(prev) {
                regressor.push(a - b);
            }
        }
        regressor.extend_from_slice(u);
        out.clear();
        for r in 0..p {
            // Same ascending zip-sum as `Matrix::matvec`, so both
            // prediction entry points stay bitwise identical.
            out.push(
                self.coef
                    .row(r)
                    .iter()
                    .zip(regressor.iter())
                    .map(|(a, b)| a * b)
                    .sum(),
            );
        }
        Ok(())
    }

    /// Open-loop simulation: starting from the measured initial
    /// condition(s), roll the model forward under a sequence of
    /// measured inputs.
    ///
    /// `initial` must contain `order.warmup()` rows of initial
    /// temperatures (oldest first); `inputs` holds one row per
    /// predicted step. The result has `inputs.rows()` rows: prediction
    /// for times `k = warmup .. warmup + inputs.rows()`.
    ///
    /// # Errors
    ///
    /// Returns [`SysidError::DimensionMismatch`] on shape problems.
    pub fn simulate(&self, initial: &Matrix, inputs: &Matrix) -> Result<Matrix> {
        let p = self.spec.output_count();
        let m = self.spec.input_count();
        if initial.rows() != self.spec.order.warmup() || initial.cols() != p {
            return Err(SysidError::DimensionMismatch {
                what: "initial condition rows",
                expected: self.spec.order.warmup() * p,
                actual: initial.rows() * initial.cols(),
            });
        }
        if inputs.cols() != m {
            return Err(SysidError::DimensionMismatch {
                what: "input columns",
                expected: m,
                actual: inputs.cols(),
            });
        }
        let mut out = Matrix::zeros(inputs.rows(), p);
        let mut prev: Vec<f64> = if self.spec.order == ModelOrder::Second {
            initial.row(0).to_vec()
        } else {
            vec![0.0; p]
        };
        let mut cur: Vec<f64> = initial.row(initial.rows() - 1).to_vec();
        for k in 0..inputs.rows() {
            let u = inputs.row(k);
            let next = self.predict_next(
                &cur,
                if self.spec.order == ModelOrder::Second {
                    Some(&prev)
                } else {
                    None
                },
                u,
            )?;
            out.row_mut(k).copy_from_slice(next.as_slice());
            prev = std::mem::take(&mut cur);
            cur = next.into_inner();
        }
        Ok(out)
    }

    /// Spectral radius proxy: the largest absolute eigenvalue of the
    /// symmetric part of `A` — a cheap stability indicator used by
    /// diagnostics (a healthy room model has `A` close to, but inside,
    /// the unit circle).
    pub fn a_symmetric_spectral_bound(&self) -> f64 {
        let Ok(a) = self.a_matrix() else {
            return f64::NAN;
        };
        let sym = thermal_linalg::SymmetricEigen::new_symmetrized(&a);
        match sym {
            Ok(e) => e
                .eigenvalues()
                .iter()
                .fold(0.0_f64, |acc, v| acc.max(v.abs())),
            Err(_) => f64::NAN,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec1() -> ModelSpec {
        ModelSpec::new(
            vec!["a".into(), "b".into()],
            vec!["u".into()],
            ModelOrder::First,
        )
        .unwrap()
    }

    fn spec2() -> ModelSpec {
        ModelSpec::new(
            vec!["a".into(), "b".into()],
            vec!["u".into()],
            ModelOrder::Second,
        )
        .unwrap()
    }

    #[test]
    fn spec_validation() {
        assert!(ModelSpec::new(vec![], vec![], ModelOrder::First).is_err());
        assert!(ModelSpec::new(vec!["a".into(), "a".into()], vec![], ModelOrder::First).is_err());
        assert!(ModelSpec::new(vec!["a".into()], vec!["a".into()], ModelOrder::First).is_err());
        let s = spec2();
        assert_eq!(s.output_count(), 2);
        assert_eq!(s.input_count(), 1);
        assert_eq!(s.regressor_width(), 5);
        assert_eq!(spec1().regressor_width(), 3);
    }

    #[test]
    fn order_properties() {
        assert_eq!(ModelOrder::First.state_blocks(), 1);
        assert_eq!(ModelOrder::Second.state_blocks(), 2);
        assert_eq!(ModelOrder::First.warmup(), 1);
        assert_eq!(ModelOrder::Second.warmup(), 2);
        assert_eq!(ModelOrder::First.to_string(), "first-order");
        assert_eq!(ModelOrder::Second.to_string(), "second-order");
    }

    #[test]
    fn model_construction_checks_shape() {
        assert!(ThermalModel::new(spec1(), Matrix::zeros(2, 3)).is_ok());
        assert!(ThermalModel::new(spec1(), Matrix::zeros(2, 4)).is_err());
        assert!(ThermalModel::new(spec2(), Matrix::zeros(2, 5)).is_ok());
    }

    #[test]
    fn blocks_are_extracted_correctly() {
        // coef = [A | B] with recognisable entries.
        let coef = Matrix::from_rows(&[&[0.9, 0.1, 5.0][..], &[0.2, 0.8, -3.0][..]]).unwrap();
        let model = ThermalModel::new(spec1(), coef).unwrap();
        let a = model.a_matrix().unwrap();
        assert_eq!(a[(0, 0)], 0.9);
        assert_eq!(a[(1, 1)], 0.8);
        let b = model.b_matrix().unwrap();
        assert_eq!(b.shape(), (2, 1));
        assert_eq!(b[(0, 0)], 5.0);
        assert_eq!(b[(1, 0)], -3.0);
    }

    #[test]
    fn first_order_one_step_prediction() {
        let coef = Matrix::from_rows(&[&[0.5, 0.0, 1.0][..], &[0.0, 0.5, 0.0][..]]).unwrap();
        let model = ThermalModel::new(spec1(), coef).unwrap();
        let next = model.predict_next(&[2.0, 4.0], None, &[3.0]).unwrap();
        assert_eq!(next.as_slice(), &[4.0, 2.0]);
        assert!(model.predict_next(&[1.0], None, &[0.0]).is_err());
        assert!(model.predict_next(&[1.0, 2.0], None, &[]).is_err());
    }

    #[test]
    fn second_order_uses_increment() {
        // T(k+1) = T(k) + 0.5 ΔT(k): pure momentum, no inputs used.
        let coef = Matrix::from_rows(&[
            &[1.0, 0.0, 0.5, 0.0, 0.0][..],
            &[0.0, 1.0, 0.0, 0.5, 0.0][..],
        ])
        .unwrap();
        let model = ThermalModel::new(spec2(), coef).unwrap();
        let next = model
            .predict_next(&[10.0, 20.0], Some(&[8.0, 21.0]), &[0.0])
            .unwrap();
        assert_eq!(next.as_slice(), &[11.0, 19.5]);
        // Missing previous state is rejected.
        assert!(model.predict_next(&[10.0, 20.0], None, &[0.0]).is_err());
        assert!(model
            .predict_next(&[10.0, 20.0], Some(&[1.0]), &[0.0])
            .is_err());
    }

    #[test]
    fn simulation_rolls_forward() {
        // Scalar-ish check with two decoupled outputs: T' = 0.5 T + u.
        let coef = Matrix::from_rows(&[&[0.5, 0.0, 1.0][..], &[0.0, 0.5, 0.0][..]]).unwrap();
        let model = ThermalModel::new(spec1(), coef).unwrap();
        let init = Matrix::from_rows(&[&[4.0, 8.0][..]]).unwrap();
        let inputs = Matrix::from_rows(&[&[1.0][..], &[1.0][..], &[1.0][..]]).unwrap();
        let traj = model.simulate(&init, &inputs).unwrap();
        // 4 -> 3 -> 2.5 -> 2.25 ; 8 -> 4 -> 2 -> 1
        assert_eq!(traj.column(0).as_slice(), &[3.0, 2.5, 2.25]);
        assert_eq!(traj.column(1).as_slice(), &[4.0, 2.0, 1.0]);
        // Bad shapes rejected.
        assert!(model.simulate(&Matrix::zeros(2, 2), &inputs).is_err());
        assert!(model.simulate(&init, &Matrix::zeros(3, 2)).is_err());
    }

    #[test]
    fn second_order_simulation_tracks_momentum() {
        // T(k+1) = T(k) + ΔT(k): constant-velocity extrapolation.
        let coef = Matrix::from_rows(&[&[1.0, 1.0, 0.0][..]]).unwrap();
        let spec = ModelSpec::new(vec!["a".into()], vec!["u".into()], ModelOrder::Second).unwrap();
        let model = ThermalModel::new(spec, coef).unwrap();
        let init = Matrix::from_rows(&[&[1.0][..], &[2.0][..]]).unwrap(); // T(-1)=1, T(0)=2
        let inputs = Matrix::from_rows(&[&[0.0][..], &[0.0][..]]).unwrap();
        let traj = model.simulate(&init, &inputs).unwrap();
        assert_eq!(traj.column(0).as_slice(), &[3.0, 4.0]);
    }

    #[test]
    fn stability_bound_of_contraction() {
        let coef = Matrix::from_rows(&[&[0.5, 0.1, 0.0][..], &[0.1, 0.5, 0.0][..]]).unwrap();
        let model = ThermalModel::new(spec1(), coef).unwrap();
        let bound = model.a_symmetric_spectral_bound();
        assert!((bound - 0.6).abs() < 1e-12);
    }
}
