//! Typed errors for model identification and evaluation.

use std::fmt;

use thermal_linalg::LinalgError;
use thermal_timeseries::TimeSeriesError;

/// Errors produced by model identification and evaluation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SysidError {
    /// The model specification is inconsistent (no outputs, unknown
    /// channels, …).
    InvalidSpec {
        /// Explanation of the problem.
        reason: String,
    },
    /// Not enough usable transitions to fit the requested model.
    InsufficientData {
        /// Transitions available.
        available: usize,
        /// Transitions required.
        required: usize,
    },
    /// A numerical kernel failed.
    Linalg(LinalgError),
    /// A dataset operation failed.
    TimeSeries(TimeSeriesError),
    /// A simulation was asked to run with mismatched dimensions.
    DimensionMismatch {
        /// Human-readable name of the offending quantity.
        what: &'static str,
        /// Expected size.
        expected: usize,
        /// Actual size.
        actual: usize,
    },
    /// An internal invariant was violated — a bug in this crate, not
    /// bad input. Reported as an error instead of panicking so library
    /// callers stay in control.
    Internal {
        /// Which invariant failed.
        context: &'static str,
    },
}

impl fmt::Display for SysidError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SysidError::InvalidSpec { reason } => write!(f, "invalid model spec: {reason}"),
            SysidError::InsufficientData {
                available,
                required,
            } => write!(
                f,
                "insufficient training data: {available} transitions available, {required} required"
            ),
            SysidError::Linalg(e) => write!(f, "numerical failure: {e}"),
            SysidError::TimeSeries(e) => write!(f, "dataset failure: {e}"),
            SysidError::DimensionMismatch {
                what,
                expected,
                actual,
            } => write!(
                f,
                "dimension mismatch for {what}: expected {expected}, got {actual}"
            ),
            SysidError::Internal { context } => {
                write!(f, "internal identification invariant violated: {context}")
            }
        }
    }
}

impl std::error::Error for SysidError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SysidError::Linalg(e) => Some(e),
            SysidError::TimeSeries(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<LinalgError> for SysidError {
    fn from(e: LinalgError) -> Self {
        SysidError::Linalg(e)
    }
}

#[doc(hidden)]
impl From<TimeSeriesError> for SysidError {
    fn from(e: TimeSeriesError) -> Self {
        SysidError::TimeSeries(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SysidError::InsufficientData {
            available: 3,
            required: 40,
        };
        let msg = e.to_string();
        assert!(msg.contains('3') && msg.contains("40"));
        assert!(SysidError::from(LinalgError::Empty { op: "x" })
            .to_string()
            .contains("numerical"));
    }

    #[test]
    fn error_is_send_sync_with_source() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<SysidError>();
        let e = SysidError::from(TimeSeriesError::GridMismatch);
        assert!(std::error::Error::source(&e).is_some());
    }
}
