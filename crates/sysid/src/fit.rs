//! Model fitting: the least-squares solve behind the paper's Eq. (4).
//!
//! The original work solved the convex objective with CVX + SeDuMi;
//! here the (identical) global optimum is reached directly with a
//! Householder-QR least-squares solve, optionally ridge-regularised
//! for the short-training-horizon regimes of the Fig. 5 sweep.

use serde::{Deserialize, Serialize};

use thermal_linalg::lstsq;
use thermal_timeseries::{Dataset, Mask};

use crate::regressors::{assemble, RegressionData};
use crate::{ModelSpec, Result, ThermalModel};

/// Fitting configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FitConfig {
    /// Tikhonov regularisation weight `λ` on the coefficients. Zero
    /// means plain least squares.
    pub ridge: f64,
}

impl Default for FitConfig {
    fn default() -> Self {
        // A whisper of regularisation keeps near-collinear VAV
        // channels from blowing up coefficients without visibly
        // biasing the fit.
        FitConfig { ridge: 1e-6 }
    }
}

impl FitConfig {
    /// Plain (unregularised) least squares.
    pub fn plain() -> Self {
        FitConfig { ridge: 0.0 }
    }

    /// Ridge regression with the given weight.
    pub fn with_ridge(ridge: f64) -> Self {
        FitConfig { ridge }
    }
}

/// Identifies a thermal model on the masked portion of a dataset.
///
/// This is the paper's three-ingredient recipe in one call: segment
/// the trace (Eq. 4's intervals), stack the regressors, solve the
/// least squares.
///
/// # Errors
///
/// * [`crate::SysidError::InvalidSpec`] for unknown channels,
/// * [`crate::SysidError::InsufficientData`] when too few transitions
///   exist,
/// * [`crate::SysidError::Linalg`] when the solve fails (e.g. an
///   exactly collinear regressor with `ridge == 0`).
///
/// # Example
///
/// ```
/// use thermal_sysid::{identify, FitConfig, ModelOrder, ModelSpec};
/// use thermal_timeseries::{Channel, Dataset, Mask, TimeGrid, Timestamp};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // A scalar system T(k+1) = 0.5 T(k) + 2 u(k).
/// let n = 40;
/// let mut t = vec![10.0_f64];
/// let u: Vec<f64> = (0..n).map(|k| ((k % 7) as f64) / 7.0).collect();
/// for k in 0..n - 1 {
///     t.push(0.5 * t[k] + 2.0 * u[k]);
/// }
/// let grid = TimeGrid::new(Timestamp::from_minutes(0), 5, n)?;
/// let ds = Dataset::new(
///     grid,
///     vec![
///         Channel::from_values("t", t)?,
///         Channel::from_values("u", u)?,
///     ],
/// )?;
/// let spec = ModelSpec::new(vec!["t".into()], vec!["u".into()], ModelOrder::First)?;
/// let model = identify(&ds, &spec, &Mask::all(ds.grid()), &FitConfig::plain())?;
/// assert!((model.coefficients()[(0, 0)] - 0.5).abs() < 1e-8);
/// assert!((model.coefficients()[(0, 1)] - 2.0).abs() < 1e-8);
/// # Ok(())
/// # }
/// ```
pub fn identify(
    dataset: &Dataset,
    spec: &ModelSpec,
    mask: &Mask,
    config: &FitConfig,
) -> Result<ThermalModel> {
    let data = assemble(dataset, spec, mask)?;
    identify_from_data(spec, &data, config)
}

/// Fits a model from an already-assembled regression problem (useful
/// when the same `(X, Y)` feeds several solver configurations).
///
/// # Errors
///
/// Same numerical conditions as [`identify`].
pub fn identify_from_data(
    spec: &ModelSpec,
    data: &RegressionData,
    config: &FitConfig,
) -> Result<ThermalModel> {
    // Solve min ||X Θᵀ − Y||: coefficient layout is Θ (p × width), the
    // solver returns width × p.
    let theta_t = lstsq::solve_ridge_matrix(&data.x, &data.y, config.ridge)?;
    ThermalModel::new(spec.clone(), theta_t.transpose())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelOrder;
    use thermal_timeseries::{Channel, TimeGrid, Timestamp};

    /// Builds a dataset from a known 2-output, 1-input first-order
    /// system, optionally with a gap in the middle.
    fn synth_first_order(n: usize, gap_at: Option<usize>) -> (Dataset, [[f64; 3]; 2]) {
        // T(k+1) = A T(k) + B u(k)
        let a = [[0.85, 0.1], [0.05, 0.9]];
        let b = [0.8, -0.4];
        let mut t0 = vec![20.0_f64];
        let mut t1 = vec![22.0_f64];
        let u: Vec<f64> = (0..n)
            .map(|k| 0.5 + 0.5 * ((k as f64) * 0.7).sin())
            .collect();
        for k in 0..n - 1 {
            t0.push(a[0][0] * t0[k] + a[0][1] * t1[k] + b[0] * u[k]);
            t1.push(a[1][0] * t0[k] + a[1][1] * t1[k] + b[1] * u[k]);
        }
        let wrap = |v: Vec<f64>| -> Vec<Option<f64>> {
            v.into_iter()
                .enumerate()
                .map(|(i, x)| if Some(i) == gap_at { None } else { Some(x) })
                .collect()
        };
        let grid = TimeGrid::new(Timestamp::from_minutes(0), 5, n).unwrap();
        let ds = Dataset::new(
            grid,
            vec![
                Channel::new("t0", wrap(t0)).unwrap(),
                Channel::new("t1", wrap(t1)).unwrap(),
                Channel::new("u", wrap(u)).unwrap(),
            ],
        )
        .unwrap();
        let truth = [[a[0][0], a[0][1], b[0]], [a[1][0], a[1][1], b[1]]];
        (ds, truth)
    }

    #[test]
    fn recovers_true_first_order_system() {
        let (ds, truth) = synth_first_order(120, None);
        let spec = ModelSpec::new(
            vec!["t0".into(), "t1".into()],
            vec!["u".into()],
            ModelOrder::First,
        )
        .unwrap();
        let model = identify(&ds, &spec, &Mask::all(ds.grid()), &FitConfig::plain()).unwrap();
        for r in 0..2 {
            for c in 0..3 {
                assert!(
                    (model.coefficients()[(r, c)] - truth[r][c]).abs() < 1e-7,
                    "coef ({r},{c})"
                );
            }
        }
    }

    #[test]
    fn gaps_do_not_bias_the_fit() {
        let (ds, truth) = synth_first_order(120, Some(60));
        let spec = ModelSpec::new(
            vec!["t0".into(), "t1".into()],
            vec!["u".into()],
            ModelOrder::First,
        )
        .unwrap();
        let model = identify(&ds, &spec, &Mask::all(ds.grid()), &FitConfig::plain()).unwrap();
        for r in 0..2 {
            for c in 0..3 {
                assert!((model.coefficients()[(r, c)] - truth[r][c]).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn second_order_fit_on_second_order_data() {
        // T(k+1) = 0.9 T(k) + 0.3 ΔT(k) + u(k).
        let n = 150;
        let u: Vec<f64> = (0..n).map(|k| ((k as f64) * 0.31).cos()).collect();
        let mut t = vec![1.0_f64, 1.1];
        for k in 1..n - 1 {
            let dt = t[k] - t[k - 1];
            t.push(0.9 * t[k] + 0.3 * dt + u[k]);
        }
        let grid = TimeGrid::new(Timestamp::from_minutes(0), 5, n).unwrap();
        let ds = Dataset::new(
            grid,
            vec![
                Channel::from_values("t", t).unwrap(),
                Channel::from_values("u", u).unwrap(),
            ],
        )
        .unwrap();
        let spec = ModelSpec::new(vec!["t".into()], vec!["u".into()], ModelOrder::Second).unwrap();
        let model = identify(&ds, &spec, &Mask::all(ds.grid()), &FitConfig::plain()).unwrap();
        let c = model.coefficients();
        assert!((c[(0, 0)] - 0.9).abs() < 1e-7);
        assert!((c[(0, 1)] - 0.3).abs() < 1e-7);
        assert!((c[(0, 2)] - 1.0).abs() < 1e-7);
    }

    #[test]
    fn ridge_tames_collinear_inputs() {
        // Two identical input channels make plain LS singular.
        let n = 60;
        let u: Vec<f64> = (0..n).map(|k| (k as f64 * 0.3).sin()).collect();
        let mut t = vec![5.0_f64];
        for k in 0..n - 1 {
            t.push(0.9 * t[k] + u[k]);
        }
        let grid = TimeGrid::new(Timestamp::from_minutes(0), 5, n).unwrap();
        let ds = Dataset::new(
            grid,
            vec![
                Channel::from_values("t", t).unwrap(),
                Channel::from_values("u1", u.clone()).unwrap(),
                Channel::from_values("u2", u).unwrap(),
            ],
        )
        .unwrap();
        let spec = ModelSpec::new(
            vec!["t".into()],
            vec!["u1".into(), "u2".into()],
            ModelOrder::First,
        )
        .unwrap();
        assert!(identify(&ds, &spec, &Mask::all(ds.grid()), &FitConfig::plain()).is_err());
        let model = identify(
            &ds,
            &spec,
            &Mask::all(ds.grid()),
            &FitConfig::with_ridge(1e-8),
        )
        .unwrap();
        // The two collinear coefficients share the true effect.
        let c = model.coefficients();
        assert!((c[(0, 1)] + c[(0, 2)] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn default_config_has_small_ridge() {
        assert!(FitConfig::default().ridge > 0.0);
        assert!(FitConfig::default().ridge < 1e-3);
        assert_eq!(FitConfig::plain().ridge, 0.0);
        assert_eq!(FitConfig::with_ridge(0.5).ridge, 0.5);
    }
}
