//! Forgetting-factor recursive least squares over the batch
//! regressor layout.
//!
//! The batch fit ([`crate::identify`]) answers "what model explains
//! this recorded trace?" once. A served model needs the continuous
//! version: every accepted reading should refine the coefficients a
//! little, and readings from a previous operating regime should fade
//! so a physics change (a stuck damper, a shifted occupancy schedule)
//! is *learnable* instead of averaged away. This module keeps the
//! ridge-regularised normal equations in factored form —
//!
//! ```text
//! P(t) = λᵗ·ρI + Σᵢ λ^(t-i) x(i) x(i)ᵀ      (information matrix)
//! B(t) =        Σᵢ λ^(t-i) x(i) y(i)ᵀ      (cross moments)
//! Θ(t)ᵀ = P(t)⁻¹ B(t)
//! ```
//!
//! — where each new row costs one `O(n²)` Cholesky
//! [`rank_one_update`](thermal_linalg::CholeskyDecomposition::rank_one_update)
//! instead of an `O(n³)` refactorisation, and the forgetting factor
//! `λ` is applied by rescaling the factor
//! ([`scale`](thermal_linalg::CholeskyDecomposition::scale)). At
//! `λ = 1` the estimate reproduces the batch
//! [`identify_from_data`](crate::identify_from_data) solution for the
//! same ridge, which is what the property suite pins.

use thermal_ckpt::codec::Record;
use thermal_ckpt::{CkptError, Snapshot};
use thermal_linalg::{CholeskyDecomposition, LinalgError, Matrix};

use crate::regressors::RegressionData;
use crate::{ModelSpec, Result, SysidError, ThermalModel};

/// Configuration of a [`RlsEstimator`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RlsConfig {
    /// Forgetting factor `λ ∈ (0, 1]`: the weight of an observation
    /// decays as `λ^age`. `1.0` means never forget (batch-equivalent);
    /// the default `0.995` gives an effective memory of about 200
    /// slots (~17 hours at 5-minute slots).
    pub forgetting: f64,
    /// Ridge weight `ρ > 0` seeding the information matrix at `ρ I`.
    /// Matches the batch [`crate::FitConfig::ridge`] semantics; the
    /// seed itself decays as `λᵗ ρ`, so it only matters early on.
    pub ridge: f64,
}

impl Default for RlsConfig {
    fn default() -> Self {
        RlsConfig {
            forgetting: 0.995,
            ridge: 1e-6,
        }
    }
}

impl RlsConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SysidError::InvalidSpec`] when the forgetting factor
    /// is outside `(0, 1]` or the ridge is not finite and positive.
    pub fn validate(&self) -> Result<()> {
        if !self.forgetting.is_finite() || self.forgetting <= 0.0 || self.forgetting > 1.0 {
            return Err(SysidError::InvalidSpec {
                reason: "rls forgetting factor must lie in (0, 1]".to_owned(),
            });
        }
        if !self.ridge.is_finite() || self.ridge <= 0.0 {
            return Err(SysidError::InvalidSpec {
                reason: "rls ridge must be finite and positive".to_owned(),
            });
        }
        Ok(())
    }
}

/// Recursive least-squares estimator of a [`ThermalModel`].
///
/// Holds the Cholesky factor of the exponentially-weighted
/// information matrix plus the matching cross moments; each
/// [`ingest`](RlsEstimator::ingest) costs `O(width²)`, each
/// [`solve`](RlsEstimator::solve) one pair of triangular sweeps per
/// output.
#[derive(Debug, Clone)]
pub struct RlsEstimator {
    spec: ModelSpec,
    config: RlsConfig,
    /// Cholesky factor of the information matrix `P`.
    chol: CholeskyDecomposition,
    /// Cross moments `B` (`width × outputs`).
    cross: Matrix,
    /// Rows folded in so far.
    observations: u64,
    /// Scratch for the rank-1 Givens sweep (capacity retained so the
    /// per-slot ingest stays allocation-free after warmup).
    workspace: Vec<f64>,
}

impl RlsEstimator {
    /// Creates an estimator with no observations: `P = ρ I`, `B = 0`.
    ///
    /// # Errors
    ///
    /// Returns [`SysidError::InvalidSpec`] for an invalid `config`,
    /// and propagates the (unreachable for valid ridge) factorisation
    /// error of the seed matrix.
    pub fn new(spec: ModelSpec, config: RlsConfig) -> Result<Self> {
        config.validate()?;
        let width = spec.regressor_width();
        let mut seed = Matrix::identity(width);
        for i in 0..width {
            seed[(i, i)] = config.ridge;
        }
        let chol = CholeskyDecomposition::new(&seed)?;
        let cross = Matrix::zeros(width, spec.output_count());
        Ok(RlsEstimator {
            spec,
            config,
            chol,
            cross,
            observations: 0,
            workspace: Vec::with_capacity(width),
        })
    }

    /// Creates an estimator warm-started from a batch regression
    /// problem: every row of `data` is ingested in order, so at
    /// `λ < 1` the oldest batch rows are already partially forgotten
    /// — exactly as if the estimator had been running all along.
    ///
    /// # Errors
    ///
    /// Propagates [`RlsEstimator::new`] and
    /// [`RlsEstimator::ingest`] failures.
    pub fn warm_start(spec: ModelSpec, data: &RegressionData, config: RlsConfig) -> Result<Self> {
        let mut est = RlsEstimator::new(spec, config)?;
        let mut xrow = vec![0.0; est.spec.regressor_width()];
        let mut yrow = vec![0.0; est.spec.output_count()];
        for r in 0..data.x.rows() {
            for (c, slot) in xrow.iter_mut().enumerate() {
                *slot = data.x[(r, c)];
            }
            for (c, slot) in yrow.iter_mut().enumerate() {
                *slot = data.y[(r, c)];
            }
            est.ingest(&xrow, &yrow)?;
        }
        Ok(est)
    }

    /// The model specification being estimated.
    pub fn spec(&self) -> &ModelSpec {
        &self.spec
    }

    /// The configuration in force.
    pub fn config(&self) -> RlsConfig {
        self.config
    }

    /// Rows folded in so far.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// `true` once enough rows arrived for the normal equations to be
    /// data- rather than ridge-dominated (one full regressor width).
    pub fn is_warmed_up(&self) -> bool {
        self.observations >= self.spec.regressor_width() as u64
    }

    /// Folds one transition into the estimate: decays every previous
    /// observation by `λ`, then adds the row `x → y` at full weight.
    ///
    /// # Errors
    ///
    /// * [`SysidError::DimensionMismatch`] when `x` is not one
    ///   regressor row or `y` not one output row,
    /// * [`SysidError::Linalg`] with
    ///   [`LinalgError::NonFinite`] for NaN/∞ entries (the estimator
    ///   state is left untouched).
    pub fn ingest(&mut self, x: &[f64], y: &[f64]) -> Result<()> {
        let width = self.spec.regressor_width();
        let outputs = self.spec.output_count();
        if x.len() != width {
            return Err(SysidError::DimensionMismatch {
                what: "rls regressor row",
                expected: width,
                actual: x.len(),
            });
        }
        if y.len() != outputs {
            return Err(SysidError::DimensionMismatch {
                what: "rls target row",
                expected: outputs,
                actual: y.len(),
            });
        }
        if !x.iter().chain(y.iter()).all(|v| v.is_finite()) {
            return Err(SysidError::Linalg(LinalgError::NonFinite {
                op: "rls ingest",
            }));
        }
        let lambda = self.config.forgetting;
        if lambda < 1.0 {
            self.chol.scale(lambda)?;
            for i in 0..width {
                for j in 0..outputs {
                    self.cross[(i, j)] *= lambda;
                }
            }
        }
        self.chol.rank_one_update_with(x, &mut self.workspace)?;
        for (i, &xi) in x.iter().enumerate() {
            for (j, &yj) in y.iter().enumerate() {
                self.cross[(i, j)] += xi * yj;
            }
        }
        self.observations += 1;
        Ok(())
    }

    /// Solves the current normal equations into a served model.
    ///
    /// # Errors
    ///
    /// Propagates the triangular-solve error (unreachable while the
    /// factor stays positive-definite, which ingest maintains) and
    /// [`ThermalModel::new`] validation.
    pub fn solve(&self) -> Result<ThermalModel> {
        let theta_t = self.chol.solve_matrix(&self.cross)?;
        ThermalModel::new(self.spec.clone(), theta_t.transpose())
    }
}

/// Crash-safe capture/restore of the factored estimator state: the
/// Cholesky factor `L`, the cross moments `B`, and the observation
/// count. The spec and config are construction context (the restoring
/// process rebuilds the estimator from the same deterministic inputs)
/// and are only *verified*, via the factor/cross dimensions, not
/// serialised.
impl Snapshot for RlsEstimator {
    const TAG: &'static str = "sysid-rls";
    const VERSION: u32 = 1;

    fn capture(&self, rec: &mut Record) {
        rec.put_usize("width", self.chol.dim())
            .put_usize("outputs", self.cross.cols())
            .put_f64_slice("chol_l", self.chol.l().as_slice())
            .put_f64_slice("cross", self.cross.as_slice())
            .put_u64("observations", self.observations);
    }

    fn restore(&mut self, rec: &Record) -> std::result::Result<(), CkptError> {
        let width = rec.get_usize("width")?;
        let outputs = rec.get_usize("outputs")?;
        if width != self.spec.regressor_width() || outputs != self.spec.output_count() {
            return Err(CkptError::decode(
                "rls snapshot",
                format!(
                    "shape {}x{} does not match spec {}x{}",
                    width,
                    outputs,
                    self.spec.regressor_width(),
                    self.spec.output_count()
                ),
            ));
        }
        let l = Matrix::from_vec(width, width, rec.get_f64_slice("chol_l")?)
            .map_err(|e| CkptError::decode("rls snapshot", e))?;
        let chol = CholeskyDecomposition::from_factor(l)
            .map_err(|e| CkptError::decode("rls snapshot", e))?;
        let cross = Matrix::from_vec(width, outputs, rec.get_f64_slice("cross")?)
            .map_err(|e| CkptError::decode("rls snapshot", e))?;
        let observations = rec.get_u64("observations")?;
        self.chol = chol;
        self.cross = cross;
        self.observations = observations;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regressors::assemble;
    use crate::{identify_from_data, FitConfig, ModelOrder};
    use thermal_timeseries::{Channel, Dataset, Mask, TimeGrid, Timestamp};

    fn dataset(n: usize, gain: f64) -> Dataset {
        let u: Vec<f64> = (0..n)
            .map(|k| 0.5 + 0.5 * (k as f64 * 0.23).sin())
            .collect();
        let mut t = vec![20.0_f64];
        for k in 0..n - 1 {
            t.push(0.9 * t[k] + 2.0 + gain * u[k]);
        }
        let grid = TimeGrid::new(Timestamp::from_minutes(0), 5, n).unwrap();
        Dataset::new(
            grid,
            vec![
                Channel::from_values("room", t).unwrap(),
                Channel::from_values("vav", u).unwrap(),
            ],
        )
        .unwrap()
    }

    fn spec() -> ModelSpec {
        ModelSpec::new(vec!["room".into()], vec!["vav".into()], ModelOrder::First).unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(RlsConfig::default().validate().is_ok());
        for forgetting in [0.0, -0.5, 1.5, f64::NAN] {
            let c = RlsConfig {
                forgetting,
                ..RlsConfig::default()
            };
            assert!(c.validate().is_err(), "accepted forgetting {forgetting}");
        }
        for ridge in [0.0, -1.0, f64::INFINITY] {
            let c = RlsConfig {
                ridge,
                ..RlsConfig::default()
            };
            assert!(c.validate().is_err(), "accepted ridge {ridge}");
        }
    }

    #[test]
    fn matches_batch_fit_at_unit_forgetting() {
        let ds = dataset(120, 0.7);
        let spec = spec();
        let data = assemble(&ds, &spec, &Mask::all(ds.grid())).unwrap();
        let ridge = 1e-6;
        let batch = identify_from_data(&spec, &data, &FitConfig::with_ridge(ridge)).unwrap();
        let rls = RlsEstimator::warm_start(
            spec,
            &data,
            RlsConfig {
                forgetting: 1.0,
                ridge,
            },
        )
        .unwrap();
        let online = rls.solve().unwrap();
        let b = batch.coefficients();
        let o = online.coefficients();
        for i in 0..b.rows() {
            for j in 0..b.cols() {
                assert!(
                    (b[(i, j)] - o[(i, j)]).abs() < 1e-8,
                    "coef ({i},{j}): batch {} vs rls {}",
                    b[(i, j)],
                    o[(i, j)]
                );
            }
        }
    }

    #[test]
    fn forgetting_tracks_a_regime_change() {
        let spec = spec();
        let config = RlsConfig {
            forgetting: 0.94,
            ridge: 1e-4,
        };
        let mut est = RlsEstimator::new(spec.clone(), config).unwrap();
        // Regime 1: gain 0.5; regime 2: gain 2.0.
        let feed = |est: &mut RlsEstimator, gain: f64, slots: usize, t0: f64| {
            let mut t = t0;
            for k in 0..slots {
                let u = 0.5 + 0.5 * ((k as f64) * 0.31).sin();
                let next = 0.9 * t + 2.0 + gain * u;
                est.ingest(&[t, u], &[next]).unwrap();
                t = next;
            }
        };
        feed(&mut est, 0.5, 150, 20.0);
        let before = est.solve().unwrap();
        feed(&mut est, 2.0, 150, 24.0);
        let after = est.solve().unwrap();
        let gain_of = |m: &ThermalModel| m.coefficients()[(0, 1)];
        assert!(
            (gain_of(&before) - 0.5).abs() < 0.05,
            "pre-shift gain {}",
            gain_of(&before)
        );
        assert!(
            (gain_of(&after) - 2.0).abs() < 0.1,
            "post-shift gain {} should have converged to the new regime",
            gain_of(&after)
        );
    }

    #[test]
    fn ingest_rejects_bad_rows_without_corrupting_state() {
        let mut est = RlsEstimator::new(spec(), RlsConfig::default()).unwrap();
        est.ingest(&[20.0, 0.5], &[20.4]).unwrap();
        let snapshot = est.clone();
        assert!(matches!(
            est.ingest(&[20.0], &[20.4]),
            Err(SysidError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            est.ingest(&[20.0, 0.5], &[]),
            Err(SysidError::DimensionMismatch { .. })
        ));
        assert!(est.ingest(&[f64::NAN, 0.5], &[20.4]).is_err());
        assert_eq!(est.observations(), snapshot.observations());
        let a = est.solve().unwrap();
        let b = snapshot.solve().unwrap();
        assert_eq!(
            a.coefficients(),
            b.coefficients(),
            "rejected rows must not alter the estimate"
        );
    }

    #[test]
    fn warmup_threshold() {
        let mut est = RlsEstimator::new(spec(), RlsConfig::default()).unwrap();
        assert!(!est.is_warmed_up());
        est.ingest(&[20.0, 0.5], &[20.4]).unwrap();
        assert!(!est.is_warmed_up());
        est.ingest(&[20.4, 0.6], &[20.8]).unwrap();
        assert!(est.is_warmed_up(), "width-2 spec warms up after 2 rows");
    }

    #[test]
    fn estimator_is_deterministic() {
        let run = || {
            let ds = dataset(80, 1.1);
            let spec = spec();
            let data = assemble(&ds, &spec, &Mask::all(ds.grid())).unwrap();
            let est = RlsEstimator::warm_start(spec, &data, RlsConfig::default()).unwrap();
            est.solve().unwrap().coefficients().clone()
        };
        assert_eq!(run(), run());
    }
}
