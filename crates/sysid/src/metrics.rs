//! Open-loop evaluation of identified models: per-sensor RMS errors,
//! percentiles and CDFs — the quantities behind Table I and
//! Figures 3–5 of the paper.

use serde::{Deserialize, Serialize};

use thermal_linalg::stats::{self, EmpiricalCdf};
use thermal_linalg::Matrix;
use thermal_timeseries::{Dataset, Mask, Segment};

use crate::regressors::{resolve_spec, usable_segments};
use crate::{Result, SysidError, ThermalModel};

/// Evaluation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalConfig {
    /// Maximum open-loop prediction length per segment, in samples
    /// (`None` = predict to the end of each segment). The paper's
    /// headline evaluation uses 13.5 hours.
    pub horizon: Option<usize>,
    /// Segments shorter than this many samples are skipped.
    pub min_segment_len: usize,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            horizon: None,
            min_segment_len: 6,
        }
    }
}

impl EvalConfig {
    /// Evaluation with a fixed prediction horizon in samples.
    pub fn with_horizon(horizon: usize) -> Self {
        EvalConfig {
            horizon: Some(horizon),
            ..EvalConfig::default()
        }
    }
}

/// One segment's open-loop prediction against measurements.
#[derive(Debug, Clone)]
pub struct TracePrediction {
    /// Grid indices of the predicted samples.
    pub indices: Vec<usize>,
    /// Measured outputs, one row per predicted sample.
    pub measured: Matrix,
    /// Model predictions, aligned with `measured`.
    pub predicted: Matrix,
}

impl TracePrediction {
    /// Per-sensor RMS error of this prediction.
    pub fn per_sensor_rms(&self) -> Vec<f64> {
        let p = self.measured.cols();
        (0..p)
            .map(|j| {
                let errs: Vec<f64> = (0..self.measured.rows())
                    .map(|i| self.measured[(i, j)] - self.predicted[(i, j)])
                    .collect();
                stats::rms(&errs).unwrap_or(f64::NAN)
            })
            .collect()
    }
}

/// Rolls `model` open-loop over one segment: the first `warmup`
/// samples seed the state, measured inputs drive the rest.
///
/// # Errors
///
/// * [`SysidError::InvalidSpec`] for channels missing from `dataset`,
/// * [`SysidError::InsufficientData`] when the segment is shorter than
///   the warmup plus one step,
/// * propagated extraction failures when the segment contains gaps.
pub fn predict_segment(
    model: &ThermalModel,
    dataset: &Dataset,
    segment: Segment,
    horizon: Option<usize>,
) -> Result<TracePrediction> {
    let spec = model.spec();
    let (outputs, inputs) = resolve_spec(dataset, spec)?;
    let warmup = spec.order.warmup();
    if segment.len() < warmup + 1 {
        return Err(SysidError::InsufficientData {
            available: segment.len(),
            required: warmup + 1,
        });
    }
    let steps = (segment.len() - warmup).min(horizon.unwrap_or(usize::MAX));
    let init = dataset.matrix(
        Segment::new(segment.start, segment.start + warmup),
        &outputs,
    )?;
    let input_rows = dataset.matrix(
        Segment::new(
            segment.start + warmup - 1,
            segment.start + warmup - 1 + steps,
        ),
        &inputs,
    )?;
    let predicted = model.simulate(&init, &input_rows)?;
    let measured = dataset.matrix(
        Segment::new(segment.start + warmup, segment.start + warmup + steps),
        &outputs,
    )?;
    Ok(TracePrediction {
        indices: (segment.start + warmup..segment.start + warmup + steps).collect(),
        measured,
        predicted,
    })
}

/// Aggregate evaluation results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvalReport {
    sensor_names: Vec<String>,
    per_sensor_rms: Vec<f64>,
    n_predictions: usize,
    n_segments: usize,
}

impl EvalReport {
    /// Sensor names, aligned with [`EvalReport::per_sensor_rms`].
    pub fn sensor_names(&self) -> &[String] {
        &self.sensor_names
    }

    /// RMS prediction error of each sensor over all evaluated
    /// segments.
    pub fn per_sensor_rms(&self) -> &[f64] {
        &self.per_sensor_rms
    }

    /// Total number of predicted samples.
    pub fn prediction_count(&self) -> usize {
        self.n_predictions
    }

    /// Number of segments evaluated.
    pub fn segment_count(&self) -> usize {
        self.n_segments
    }

    /// RMS over all sensors (root of the mean of per-sensor mean
    /// squared errors).
    pub fn overall_rms(&self) -> f64 {
        let n = self.per_sensor_rms.len() as f64;
        (self.per_sensor_rms.iter().map(|r| r * r).sum::<f64>() / n).sqrt()
    }

    /// Percentile of the per-sensor RMS distribution — the paper's
    /// "RMS at the 90th percentile".
    ///
    /// # Errors
    ///
    /// Propagates percentile-argument failures.
    pub fn rms_percentile(&self, p: f64) -> Result<f64> {
        Ok(stats::percentile(&self.per_sensor_rms, p)?)
    }

    /// ECDF over per-sensor RMS (Fig. 3's curves).
    ///
    /// # Errors
    ///
    /// Propagates ECDF construction failures (empty report).
    pub fn cdf(&self) -> Result<EmpiricalCdf> {
        Ok(EmpiricalCdf::new(&self.per_sensor_rms)?)
    }

    /// Iterates over `(sensor name, rms)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> + '_ {
        self.sensor_names
            .iter()
            .map(String::as_str)
            .zip(self.per_sensor_rms.iter().copied())
    }
}

/// Evaluates a model open-loop over every usable segment of `mask`.
///
/// # Errors
///
/// * [`SysidError::InvalidSpec`] for channels missing from the
///   dataset,
/// * [`SysidError::InsufficientData`] when no segment is long enough.
pub fn evaluate(
    model: &ThermalModel,
    dataset: &Dataset,
    mask: &Mask,
    config: &EvalConfig,
) -> Result<EvalReport> {
    let spec = model.spec();
    let segments = usable_segments(dataset, spec, mask)?;
    let warmup = spec.order.warmup();
    let p = spec.output_count();

    let mut sq_sum = vec![0.0_f64; p];
    let mut count = 0usize;
    let mut n_segments = 0usize;
    for seg in segments {
        if seg.len() < config.min_segment_len.max(warmup + 1) {
            continue;
        }
        let pred = predict_segment(model, dataset, seg, config.horizon)?;
        for i in 0..pred.measured.rows() {
            for j in 0..p {
                let e = pred.measured[(i, j)] - pred.predicted[(i, j)];
                sq_sum[j] += e * e;
            }
        }
        count += pred.measured.rows();
        n_segments += 1;
    }
    if count == 0 {
        return Err(SysidError::InsufficientData {
            available: 0,
            required: config.min_segment_len,
        });
    }
    let per_sensor_rms: Vec<f64> = sq_sum
        .into_iter()
        .map(|s| (s / count as f64).sqrt())
        .collect();
    Ok(EvalReport {
        sensor_names: spec.outputs.clone(),
        per_sensor_rms,
        n_predictions: count,
        n_segments,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{identify, FitConfig, ModelOrder, ModelSpec};
    use thermal_timeseries::{Channel, TimeGrid, Timestamp};

    /// Dataset generated by a known first-order system, split into two
    /// halves by a gap.
    fn synth() -> Dataset {
        let n = 200;
        let u: Vec<f64> = (0..n)
            .map(|k| (k as f64 * 0.17).sin() * 0.5 + 0.5)
            .collect();
        let mut t = vec![18.0_f64];
        for k in 0..n - 1 {
            t.push(0.92 * t[k] + 1.2 * u[k]);
        }
        let grid = TimeGrid::new(Timestamp::from_minutes(0), 5, n).unwrap();
        Dataset::new(
            grid,
            vec![
                Channel::from_values("t", t).unwrap(),
                Channel::from_values("u", u).unwrap(),
            ],
        )
        .unwrap()
    }

    fn fitted(ds: &Dataset) -> ThermalModel {
        let spec = ModelSpec::new(vec!["t".into()], vec!["u".into()], ModelOrder::First).unwrap();
        identify(ds, &spec, &Mask::all(ds.grid()), &FitConfig::plain()).unwrap()
    }

    #[test]
    fn perfect_model_has_zero_error() {
        let ds = synth();
        let model = fitted(&ds);
        let report = evaluate(&model, &ds, &Mask::all(ds.grid()), &EvalConfig::default()).unwrap();
        assert!(report.per_sensor_rms()[0] < 1e-9);
        assert_eq!(report.sensor_names(), &["t".to_owned()]);
        assert!(report.prediction_count() > 100);
        assert_eq!(report.segment_count(), 1);
        assert!(report.overall_rms() < 1e-9);
    }

    #[test]
    fn horizon_limits_prediction_length() {
        let ds = synth();
        let model = fitted(&ds);
        let seg = Segment::new(0, 50);
        let full = predict_segment(&model, &ds, seg, None).unwrap();
        assert_eq!(full.predicted.rows(), 49);
        let short = predict_segment(&model, &ds, seg, Some(10)).unwrap();
        assert_eq!(short.predicted.rows(), 10);
        assert_eq!(short.indices, (1..11).collect::<Vec<_>>());
    }

    #[test]
    fn wrong_model_has_positive_error() {
        let ds = synth();
        let spec = ModelSpec::new(vec!["t".into()], vec!["u".into()], ModelOrder::First).unwrap();
        // Deliberately wrong coefficients.
        let bad = ThermalModel::new(
            spec,
            thermal_linalg::Matrix::from_rows(&[&[0.5, 0.0][..]]).unwrap(),
        )
        .unwrap();
        let report = evaluate(&bad, &ds, &Mask::all(ds.grid()), &EvalConfig::default()).unwrap();
        assert!(report.per_sensor_rms()[0] > 1.0);
        assert!(report.rms_percentile(90.0).unwrap() > 1.0);
        assert!(report.cdf().is_ok());
    }

    #[test]
    fn too_short_segment_is_rejected() {
        let ds = synth();
        let model = fitted(&ds);
        assert!(matches!(
            predict_segment(&model, &ds, Segment::new(0, 1), None),
            Err(SysidError::InsufficientData { .. })
        ));
    }

    #[test]
    fn empty_mask_reports_insufficient_data() {
        let ds = synth();
        let model = fitted(&ds);
        let none = Mask::none(ds.grid());
        assert!(matches!(
            evaluate(&model, &ds, &none, &EvalConfig::default()),
            Err(SysidError::InsufficientData { .. })
        ));
    }

    #[test]
    fn min_segment_len_filters_short_runs() {
        let ds = synth();
        let model = fitted(&ds);
        // Mask with one long run and one short run.
        let mut mask = Mask::none(ds.grid());
        for i in 0..40 {
            mask.set(i, true).unwrap();
        }
        for i in 50..54 {
            mask.set(i, true).unwrap();
        }
        let cfg = EvalConfig {
            min_segment_len: 10,
            ..EvalConfig::default()
        };
        let report = evaluate(&model, &ds, &mask, &cfg).unwrap();
        assert_eq!(report.segment_count(), 1);
    }

    #[test]
    fn trace_prediction_rms_matches_report() {
        let ds = synth();
        let model = fitted(&ds);
        let pred = predict_segment(&model, &ds, Segment::new(0, 30), None).unwrap();
        let rms = pred.per_sensor_rms();
        assert_eq!(rms.len(), 1);
        assert!(rms[0] < 1e-9);
    }
}
