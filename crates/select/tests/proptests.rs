//! Property-based tests for sensor selection.

// Test fixtures: panicking on a broken fixture is the right failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use proptest::prelude::*;
use thermal_cluster::Clustering;
use thermal_linalg::Matrix;
use thermal_select::{
    cluster_mean_errors, FixedSelector, GpSelector, NearMeanSelector, RandomSelector, Selection,
    SelectionInput, Selector, StratifiedRandomSelector,
};

/// Strategy: trajectories with a clustering of 2–3 groups of 3–5
/// sensors each.
fn fixture_strategy() -> impl Strategy<Value = (Matrix, Clustering)> {
    (2usize..4, 3usize..6, 15usize..30).prop_flat_map(|(groups, per, samples)| {
        let n = groups * per;
        prop::collection::vec(-0.2_f64..0.2, n * samples).prop_map(move |noise| {
            let mut rows = Vec::with_capacity(n);
            let mut labels = Vec::with_capacity(n);
            for g in 0..groups {
                for s in 0..per {
                    let row: Vec<f64> = (0..samples)
                        .map(|k| {
                            20.0 + 2.5 * g as f64
                                + (k as f64 * (0.3 + 0.4 * g as f64)).sin()
                                + noise[(g * per + s) * samples + k]
                        })
                        .collect();
                    rows.push(row);
                    labels.push(g);
                }
            }
            let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
            (
                Matrix::from_rows(&refs).unwrap(),
                Clustering::from_assignments(labels, groups).unwrap(),
            )
        })
    })
}

fn all_selectors() -> Vec<Box<dyn Selector>> {
    vec![
        Box::new(NearMeanSelector),
        Box::new(StratifiedRandomSelector),
        Box::new(RandomSelector),
        Box::new(GpSelector),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every selector covers every cluster with the requested number
    /// of representatives drawn from valid sensor indices.
    #[test]
    fn selections_are_structurally_valid(
        (traj, clustering) in fixture_strategy(),
        seed in 0u64..100,
    ) {
        let input = SelectionInput {
            trajectories: &traj,
            clustering: &clustering,
            per_cluster: 1,
            seed,
        };
        for s in all_selectors() {
            let sel = s.select(&input).unwrap();
            prop_assert_eq!(sel.cluster_count(), clustering.k(), "{}", s.name());
            for c in 0..clustering.k() {
                prop_assert!(!sel.representatives(c).is_empty());
            }
            for &i in &sel.sensors() {
                prop_assert!(i < traj.rows());
            }
        }
    }

    /// Stratified selectors always pick members of the cluster they
    /// represent.
    #[test]
    fn stratified_selectors_respect_clusters(
        (traj, clustering) in fixture_strategy(),
        seed in 0u64..100,
        per_cluster in 1usize..3,
    ) {
        let input = SelectionInput {
            trajectories: &traj,
            clustering: &clustering,
            per_cluster,
            seed,
        };
        for s in [&NearMeanSelector as &dyn Selector, &StratifiedRandomSelector] {
            let sel = s.select(&input).unwrap();
            for (c, members) in clustering.clusters().iter().enumerate() {
                for rep in sel.representatives(c) {
                    prop_assert!(
                        members.contains(rep),
                        "{} put sensor {rep} in foreign cluster {c}", s.name()
                    );
                }
            }
        }
    }

    /// SMS is optimal among single-sensor in-cluster choices for the
    /// *training* data it saw.
    #[test]
    fn near_mean_is_optimal_in_sample((traj, clustering) in fixture_strategy()) {
        let input = SelectionInput {
            trajectories: &traj,
            clustering: &clustering,
            per_cluster: 1,
            seed: 0,
        };
        let sms = NearMeanSelector.select(&input).unwrap();
        let sms_rms = cluster_mean_errors(&traj, &clustering, &sms)
            .unwrap()
            .rms()
            .unwrap();
        // Compare against every alternative single-representative
        // in-cluster selection.
        for (c, members) in clustering.clusters().iter().enumerate() {
            for &alt in members {
                let mut per_cluster: Vec<Vec<usize>> = sms.per_cluster().to_vec();
                per_cluster[c] = vec![alt];
                let alt_sel = Selection::new(per_cluster).unwrap();
                let alt_rms = cluster_mean_errors(&traj, &clustering, &alt_sel)
                    .unwrap()
                    .rms()
                    .unwrap();
                prop_assert!(
                    sms_rms <= alt_rms + 1e-9,
                    "sensor {alt} in cluster {c} beats the near-mean pick: {alt_rms} < {sms_rms}"
                );
            }
        }
    }

    /// Cluster-mean errors are non-negative, and a selection equal to
    /// the full cluster has zero error.
    #[test]
    fn full_cluster_selection_is_exact((traj, clustering) in fixture_strategy()) {
        let full = Selection::new(clustering.clusters()).unwrap();
        let report = cluster_mean_errors(&traj, &clustering, &full).unwrap();
        for e in report.errors() {
            prop_assert!(*e >= 0.0);
            prop_assert!(*e < 1e-9, "full-cluster mean must be exact, got {e}");
        }
    }

    /// The GP selector never repeats a sensor.
    #[test]
    fn gp_selects_distinct_sensors((traj, clustering) in fixture_strategy()) {
        let input = SelectionInput {
            trajectories: &traj,
            clustering: &clustering,
            per_cluster: 1,
            seed: 0,
        };
        let sel = GpSelector.select(&input).unwrap();
        let mut sensors: Vec<usize> = sel.per_cluster().iter().flatten().copied().collect();
        let before = sensors.len();
        sensors.sort_unstable();
        sensors.dedup();
        prop_assert_eq!(sensors.len(), before, "gp repeated a sensor");
    }

    /// Fixed selections are deterministic and use only the given
    /// sensors.
    #[test]
    fn fixed_selection_uses_only_fixed_sensors(
        (traj, clustering) in fixture_strategy(),
        pick in 0usize..3,
    ) {
        let fixed = vec![pick % traj.rows(), (pick + 1) % traj.rows()];
        let selector = FixedSelector::new("fixed", fixed.clone());
        let input = SelectionInput {
            trajectories: &traj,
            clustering: &clustering,
            per_cluster: 1,
            seed: 3,
        };
        let sel = selector.select(&input).unwrap();
        for s in sel.sensors() {
            prop_assert!(fixed.contains(&s));
        }
        let again = selector.select(&input).unwrap();
        prop_assert_eq!(sel, again);
    }
}
