//! The five selection strategies compared by the paper's Table II.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use thermal_linalg::stats;

use crate::selection::{Selection, SelectionInput, Selector};
use crate::{Result, SelectError};

/// Stratified Near-Mean Selection (**SMS**): from every cluster, pick
/// the sensors whose trajectories lie closest (in RMS) to the cluster
/// mean trajectory — the paper's best performer.
#[derive(Debug, Clone, Copy, Default)]
pub struct NearMeanSelector;

impl Selector for NearMeanSelector {
    fn name(&self) -> &'static str {
        "sms"
    }

    fn select(&self, input: &SelectionInput<'_>) -> Result<Selection> {
        input.validate()?;
        let traj = input.trajectories;
        let samples = traj.cols();
        let mut out = Vec::with_capacity(input.clustering.k());
        for members in input.clustering.clusters() {
            if members.len() < input.per_cluster {
                return Err(SelectError::InvalidRequest {
                    reason: format!(
                        "cluster of {} sensors cannot supply {} representatives",
                        members.len(),
                        input.per_cluster
                    ),
                });
            }
            // Cluster-mean trajectory.
            let mut mean = vec![0.0; samples];
            for &i in &members {
                for (m, v) in mean.iter_mut().zip(traj.row(i)) {
                    *m += v;
                }
            }
            for m in mean.iter_mut() {
                *m /= members.len() as f64;
            }
            // Distance of each member to the mean.
            let mut scored: Vec<(f64, usize)> = Vec::with_capacity(members.len());
            for &i in &members {
                let d = stats::euclidean_distance(traj.row(i), &mean)?;
                scored.push((d, i));
            }
            scored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            out.push(
                scored[..input.per_cluster]
                    .iter()
                    .map(|&(_, i)| i)
                    .collect(),
            );
        }
        Selection::new(out)
    }
}

/// Stratified Random Selection (**SRS**): uniformly random members
/// from each cluster.
#[derive(Debug, Clone, Copy, Default)]
pub struct StratifiedRandomSelector;

impl Selector for StratifiedRandomSelector {
    fn name(&self) -> &'static str {
        "srs"
    }

    fn select(&self, input: &SelectionInput<'_>) -> Result<Selection> {
        input.validate()?;
        let mut rng = StdRng::seed_from_u64(input.seed);
        let mut out = Vec::with_capacity(input.clustering.k());
        for members in input.clustering.clusters() {
            if members.len() < input.per_cluster {
                return Err(SelectError::InvalidRequest {
                    reason: format!(
                        "cluster of {} sensors cannot supply {} representatives",
                        members.len(),
                        input.per_cluster
                    ),
                });
            }
            let mut pool = members.clone();
            pool.shuffle(&mut rng);
            pool.truncate(input.per_cluster);
            out.push(pool);
        }
        Selection::new(out)
    }
}

/// Simple Random Selection (**RS**): the clustering-blind baseline —
/// draws the same *total* number of sensors uniformly from the whole
/// network and assigns them to clusters round-robin, so several may
/// land in (and be charged against) the wrong zone.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomSelector;

impl Selector for RandomSelector {
    fn name(&self) -> &'static str {
        "rs"
    }

    fn select(&self, input: &SelectionInput<'_>) -> Result<Selection> {
        input.validate()?;
        let n = input.trajectories.rows();
        let total = input.total_requested();
        if total > n {
            return Err(SelectError::InvalidRequest {
                reason: format!("cannot draw {total} distinct sensors from {n}"),
            });
        }
        let mut rng = StdRng::seed_from_u64(input.seed);
        let mut pool: Vec<usize> = (0..n).collect();
        pool.shuffle(&mut rng);
        pool.truncate(total);
        let k = input.clustering.k();
        let mut out = vec![Vec::with_capacity(input.per_cluster); k];
        for (slot, sensor) in pool.into_iter().enumerate() {
            out[slot % k].push(sensor);
        }
        Selection::new(out)
    }
}

/// Fixed-sensor baseline: a predetermined set of sensors (the paper
/// uses the two HVAC **thermostats**), assigned one per cluster in
/// the most favourable way (each cluster gets the fixed sensor whose
/// trajectory correlates best with the cluster mean).
#[derive(Debug, Clone)]
pub struct FixedSelector {
    /// Short name reported in comparison tables.
    name: &'static str,
    /// Sensor indices to use.
    sensors: Vec<usize>,
}

impl FixedSelector {
    /// Creates a fixed selector.
    pub fn new(name: &'static str, sensors: Vec<usize>) -> Self {
        FixedSelector { name, sensors }
    }

    /// The thermostat baseline of the paper, given the thermostat
    /// indices within the clustered sensor list.
    pub fn thermostats(indices: Vec<usize>) -> Self {
        FixedSelector::new("thermostats", indices)
    }
}

impl Selector for FixedSelector {
    fn name(&self) -> &'static str {
        self.name
    }

    fn select(&self, input: &SelectionInput<'_>) -> Result<Selection> {
        input.validate()?;
        let n = input.trajectories.rows();
        if self.sensors.is_empty() {
            return Err(SelectError::InvalidRequest {
                reason: "fixed selector has no sensors".to_owned(),
            });
        }
        for &s in &self.sensors {
            if s >= n {
                return Err(SelectError::InvalidRequest {
                    reason: format!("fixed sensor {s} out of range ({n} sensors)"),
                });
            }
        }
        assign_to_clusters(input, &self.sensors)
    }
}

/// Gaussian-process mutual-information placement (**GP**), after
/// Krause, Singh & Guestrin (JMLR 2008): greedily picks the sensors
/// that maximise the mutual information between selected and
/// unselected locations under the empirical covariance — then assigns
/// them to clusters like the other cluster-blind baselines.
#[derive(Debug, Clone, Copy, Default)]
pub struct GpSelector;

impl Selector for GpSelector {
    fn name(&self) -> &'static str {
        "gp"
    }

    fn select(&self, input: &SelectionInput<'_>) -> Result<Selection> {
        input.validate()?;
        let chosen = greedy_mutual_information(input, input.total_requested())?;
        assign_to_clusters(input, &chosen)
    }
}

/// Greedy MI selection on the empirical sensor covariance.
fn greedy_mutual_information(input: &SelectionInput<'_>, m: usize) -> Result<Vec<usize>> {
    let n = input.trajectories.rows();
    if m > n {
        return Err(SelectError::InvalidRequest {
            reason: format!("cannot place {m} sensors among {n} candidates"),
        });
    }
    // Empirical covariance over sensors (observations are time
    // samples → transpose) with a jitter for conditioning.
    let mut cov = stats::covariance_matrix(&input.trajectories.transpose())?;
    let jitter = 1e-6 * (0..n).map(|i| cov[(i, i)]).sum::<f64>().max(1e-12) / n as f64;
    for i in 0..n {
        cov[(i, i)] += jitter;
    }

    let mut chosen: Vec<usize> = Vec::with_capacity(m);
    let mut remaining: Vec<usize> = (0..n).collect();
    for _ in 0..m {
        let mut best: Option<(f64, usize)> = None;
        for (pos, &y) in remaining.iter().enumerate() {
            // Ā = all sensors except chosen and y.
            let complement: Vec<usize> =
                (0..n).filter(|i| *i != y && !chosen.contains(i)).collect();
            let num = conditional_variance(&cov, y, &chosen)?;
            let den = conditional_variance(&cov, y, &complement)?;
            let gain = num / den.max(1e-12);
            if best.as_ref().is_none_or(|&(g, _)| gain > g) {
                best = Some((gain, pos));
            }
        }
        let (_, pos) = best.ok_or(SelectError::Internal {
            context: "GP-MI greedy step found no candidate",
        })?;
        chosen.push(remaining.remove(pos));
    }
    Ok(chosen)
}

/// `σ²_{y|S} = Σ_yy − Σ_yS Σ_SS⁻¹ Σ_Sy`.
fn conditional_variance(
    cov: &thermal_linalg::Matrix,
    y: usize,
    conditioning: &[usize],
) -> Result<f64> {
    if conditioning.is_empty() {
        return Ok(cov[(y, y)]);
    }
    let sigma_ss = cov.submatrix(conditioning, conditioning)?;
    let sigma_sy: Vec<f64> = conditioning.iter().map(|&s| cov[(s, y)]).collect();
    let chol = thermal_linalg::CholeskyDecomposition::new(&sigma_ss)?;
    let x = chol.solve(&thermal_linalg::Vector::from_slice(&sigma_sy))?;
    let quad: f64 = sigma_sy.iter().zip(x.as_slice()).map(|(a, b)| a * b).sum();
    Ok((cov[(y, y)] - quad).max(0.0))
}

/// Ranks every cluster's non-selected members as fallback sensors for
/// its representatives, best substitute first (closest in RMS to the
/// cluster-mean trajectory — the same criterion [`NearMeanSelector`]
/// uses to pick representatives in the first place).
///
/// Works for any strategy's output: cluster-blind selections simply
/// get all cluster members not chosen anywhere ranked as backups.
/// Returns the selection with the backup lists attached.
///
/// # Errors
///
/// Returns [`SelectError::InvalidRequest`] when `selection` does not
/// cover the clustering, and propagates numerical failures.
pub fn rank_backups(input: &SelectionInput<'_>, selection: &Selection) -> Result<Selection> {
    input.validate()?;
    if selection.cluster_count() != input.clustering.k() {
        return Err(SelectError::InvalidRequest {
            reason: format!(
                "selection covers {} clusters but clustering has {}",
                selection.cluster_count(),
                input.clustering.k()
            ),
        });
    }
    let traj = input.trajectories;
    let samples = traj.cols();
    let taken = selection.sensors();
    let mut backups = Vec::with_capacity(input.clustering.k());
    for members in input.clustering.clusters() {
        let mut mean = vec![0.0; samples];
        for &i in &members {
            for (m, v) in mean.iter_mut().zip(traj.row(i)) {
                *m += v;
            }
        }
        for m in mean.iter_mut() {
            *m /= members.len() as f64;
        }
        let mut scored: Vec<(f64, usize)> = Vec::new();
        for &i in &members {
            if taken.binary_search(&i).is_ok() {
                continue;
            }
            let d = stats::euclidean_distance(traj.row(i), &mean)?;
            scored.push((d, i));
        }
        scored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        backups.push(scored.into_iter().map(|(_, i)| i).collect());
    }
    selection.clone().with_backups(backups)
}

/// Assigns an arbitrary chosen sensor set to clusters: each cluster
/// receives the not-yet-taken sensor whose trajectory best correlates
/// with the cluster-mean trajectory; leftovers go to the cluster they
/// correlate with best.
fn assign_to_clusters(input: &SelectionInput<'_>, chosen: &[usize]) -> Result<Selection> {
    let traj = input.trajectories;
    let k = input.clustering.k();
    let samples = traj.cols();

    // Cluster mean trajectories.
    let clusters = input.clustering.clusters();
    let mut means: Vec<Vec<f64>> = Vec::with_capacity(k);
    for members in &clusters {
        let mut mean = vec![0.0; samples];
        for &i in members {
            for (m, v) in mean.iter_mut().zip(traj.row(i)) {
                *m += v;
            }
        }
        for m in mean.iter_mut() {
            *m /= members.len() as f64;
        }
        means.push(mean);
    }

    // Correlation of each chosen sensor with each cluster mean.
    let corr = |sensor: usize, cluster: usize| -> f64 {
        stats::pearson(traj.row(sensor), &means[cluster]).unwrap_or(0.0)
    };

    // Greedy best-match: repeatedly take the (sensor, empty cluster)
    // pair with the highest correlation.
    let mut per_cluster: Vec<Vec<usize>> = vec![Vec::new(); k];
    let mut unassigned: Vec<usize> = chosen.to_vec();
    while per_cluster.iter().any(|c| c.is_empty()) && !unassigned.is_empty() {
        let mut best: Option<(f64, usize, usize)> = None; // (corr, sensor pos, cluster)
        for (pos, &s) in unassigned.iter().enumerate() {
            for c in 0..k {
                if per_cluster[c].is_empty() {
                    let r = corr(s, c);
                    if best.as_ref().is_none_or(|&(b, _, _)| r > b) {
                        best = Some((r, pos, c));
                    }
                }
            }
        }
        let (_, pos, c) = best.ok_or(SelectError::Internal {
            context: "cluster assignment found no (sensor, cluster) pair",
        })?;
        per_cluster[c].push(unassigned.remove(pos));
    }
    // Distribute leftovers to their best cluster.
    for s in unassigned {
        let mut best_c = 0;
        let mut best_r = f64::NEG_INFINITY;
        for (c, _) in per_cluster.iter().enumerate() {
            let r = corr(s, c);
            if r > best_r {
                best_r = r;
                best_c = c;
            }
        }
        per_cluster[best_c].push(s);
    }
    // If any cluster is still empty (fewer chosen sensors than
    // clusters), reuse the globally best-correlated sensor — a sensor
    // may stand in for several zones, as the thermostats do in the
    // paper.
    for c in 0..k {
        if per_cluster[c].is_empty() {
            let mut best_s = chosen[0];
            let mut best_r = f64::NEG_INFINITY;
            for &s in chosen {
                let r = corr(s, c);
                if r > best_r {
                    best_r = r;
                    best_s = s;
                }
            }
            per_cluster[c].push(best_s);
        }
    }
    Selection::new(per_cluster)
}

#[cfg(test)]
mod tests {
    use super::*;
    use thermal_cluster::Clustering;
    use thermal_linalg::Matrix;

    /// Six sensors in two families: 0–2 trend up (with 1 the middle
    /// one), 3–5 trend down (4 in the middle).
    fn fixture() -> (Matrix, Clustering) {
        let rows: Vec<Vec<f64>> = vec![
            (0..20).map(|k| 20.0 + 0.10 * k as f64).collect(),
            (0..20).map(|k| 20.1 + 0.11 * k as f64).collect(),
            (0..20).map(|k| 20.2 + 0.12 * k as f64).collect(),
            (0..20).map(|k| 23.0 - 0.10 * k as f64).collect(),
            (0..20).map(|k| 23.1 - 0.11 * k as f64).collect(),
            (0..20).map(|k| 23.2 - 0.12 * k as f64).collect(),
        ];
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let m = Matrix::from_rows(&refs).unwrap();
        let c = Clustering::from_assignments(vec![0, 0, 0, 1, 1, 1], 2).unwrap();
        (m, c)
    }

    fn input<'a>(m: &'a Matrix, c: &'a Clustering, per: usize, seed: u64) -> SelectionInput<'a> {
        SelectionInput {
            trajectories: m,
            clustering: c,
            per_cluster: per,
            seed,
        }
    }

    #[test]
    fn sms_picks_the_middle_sensor() {
        let (m, c) = fixture();
        let sel = NearMeanSelector.select(&input(&m, &c, 1, 0)).unwrap();
        assert_eq!(sel.representatives(0), &[1]);
        assert_eq!(sel.representatives(1), &[4]);
        assert_eq!(NearMeanSelector.name(), "sms");
    }

    #[test]
    fn sms_multiple_per_cluster_ranked_by_distance() {
        let (m, c) = fixture();
        let sel = NearMeanSelector.select(&input(&m, &c, 2, 0)).unwrap();
        assert_eq!(sel.representatives(0).len(), 2);
        assert!(sel.representatives(0).contains(&1));
        // Requesting more than a cluster holds fails.
        assert!(NearMeanSelector.select(&input(&m, &c, 4, 0)).is_err());
    }

    #[test]
    fn rank_backups_breaks_exact_ties_by_ascending_sensor_id() {
        // One cluster whose four non-selected members sit at *exactly*
        // the same RMS distance from the cluster mean: every deviation
        // has magnitude 1.0, so the squared sums are bit-identical and
        // only the deterministic id tie-break orders them. This pins
        // the ordering contract the streaming substitution ladder
        // relies on (same trace ⇒ same backup every run).
        let rows: Vec<Vec<f64>> = vec![
            vec![20.0; 20], // the mean itself → representative
            vec![21.0; 20],
            vec![19.0; 20],
            (0..20)
                .map(|k| if k % 2 == 0 { 21.0 } else { 19.0 })
                .collect(),
            (0..20)
                .map(|k| if k % 2 == 0 { 19.0 } else { 21.0 })
                .collect(),
        ];
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let m = Matrix::from_rows(&refs).unwrap();
        let c = Clustering::from_assignments(vec![0; 5], 1).unwrap();
        let sel = NearMeanSelector.select(&input(&m, &c, 1, 0)).unwrap();
        assert_eq!(sel.representatives(0), &[0]);
        let ranked = rank_backups(&input(&m, &c, 1, 0), &sel).unwrap();
        assert_eq!(
            ranked.backups(0),
            &[1, 2, 3, 4],
            "equal-distance backups must rank by ascending sensor id"
        );
    }

    #[test]
    fn srs_picks_within_clusters() {
        let (m, c) = fixture();
        for seed in 0..5 {
            let sel = StratifiedRandomSelector
                .select(&input(&m, &c, 1, seed))
                .unwrap();
            assert!(sel.representatives(0)[0] < 3);
            assert!(sel.representatives(1)[0] >= 3);
        }
        // Deterministic per seed.
        let a = StratifiedRandomSelector
            .select(&input(&m, &c, 1, 9))
            .unwrap();
        let b = StratifiedRandomSelector
            .select(&input(&m, &c, 1, 9))
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rs_ignores_clusters_but_covers_them() {
        let (m, c) = fixture();
        let sel = RandomSelector.select(&input(&m, &c, 1, 3)).unwrap();
        assert_eq!(sel.cluster_count(), 2);
        assert_eq!(sel.sensors().len(), 2);
        assert!(RandomSelector.select(&input(&m, &c, 4, 0)).is_err());
    }

    #[test]
    fn fixed_selector_assigns_by_correlation() {
        let (m, c) = fixture();
        // Sensors 2 (uptrend) and 5 (downtrend) as "thermostats".
        let sel = FixedSelector::thermostats(vec![2, 5])
            .select(&input(&m, &c, 1, 0))
            .unwrap();
        assert_eq!(sel.representatives(0), &[2]);
        assert_eq!(sel.representatives(1), &[5]);
        // Both fixed sensors in the same family: one covers both
        // clusters.
        let sel = FixedSelector::new("both-up", vec![0, 2])
            .select(&input(&m, &c, 1, 0))
            .unwrap();
        assert_eq!(sel.cluster_count(), 2);
        assert!(!sel.representatives(1).is_empty());
        assert!(FixedSelector::new("bad", vec![99])
            .select(&input(&m, &c, 1, 0))
            .is_err());
        assert!(FixedSelector::new("empty", vec![])
            .select(&input(&m, &c, 1, 0))
            .is_err());
    }

    #[test]
    fn gp_selects_distinct_informative_sensors() {
        let (m, c) = fixture();
        let sel = GpSelector.select(&input(&m, &c, 1, 0)).unwrap();
        let sensors = sel.sensors();
        assert_eq!(sensors.len(), 2);
        assert_eq!(GpSelector.name(), "gp");
        // Deterministic (no randomness in the greedy).
        let again = GpSelector.select(&input(&m, &c, 1, 0)).unwrap();
        assert_eq!(sel, again);
    }

    #[test]
    fn gp_cannot_place_more_than_available() {
        let (m, c) = fixture();
        assert!(GpSelector.select(&input(&m, &c, 4, 0)).is_err());
    }

    #[test]
    fn backups_are_cluster_mates_ranked_near_mean_first() {
        let (m, c) = fixture();
        let inp = input(&m, &c, 1, 0);
        let sel = NearMeanSelector.select(&inp).unwrap();
        let with = rank_backups(&inp, &sel).unwrap();
        assert!(with.has_backups());
        // Cluster 0 keeps sensor 1; backups are 0 and 2, and neither
        // is the representative.
        assert_eq!(with.representatives(0), &[1]);
        let b0 = with.backups(0);
        assert_eq!(b0.len(), 2);
        assert!(b0.contains(&0) && b0.contains(&2));
        assert!(!b0.contains(&1));
        // Same for cluster 1 (rep 4, backups 3/5).
        let b1 = with.backups(1);
        assert!(b1.contains(&3) && b1.contains(&5) && !b1.contains(&4));
        // Ranking is deterministic.
        let again = rank_backups(&inp, &sel).unwrap();
        assert_eq!(with, again);
    }

    #[test]
    fn backups_for_cluster_blind_selections_exclude_taken_sensors() {
        let (m, c) = fixture();
        let inp = input(&m, &c, 1, 3);
        let sel = RandomSelector.select(&inp).unwrap();
        let with = rank_backups(&inp, &sel).unwrap();
        let taken = with.sensors();
        for cluster in 0..with.cluster_count() {
            for b in with.backups(cluster) {
                assert!(!taken.contains(b), "backup {b} is already selected");
            }
        }
    }

    #[test]
    fn rank_backups_rejects_mismatched_clustering() {
        let (m, c) = fixture();
        let inp = input(&m, &c, 1, 0);
        let wrong = Selection::new(vec![vec![0]]).unwrap();
        assert!(rank_backups(&inp, &wrong).is_err());
    }

    #[test]
    fn selectors_are_object_safe() {
        let selectors: Vec<Box<dyn Selector>> = vec![
            Box::new(NearMeanSelector),
            Box::new(StratifiedRandomSelector),
            Box::new(RandomSelector),
            Box::new(GpSelector),
            Box::new(FixedSelector::thermostats(vec![0, 3])),
        ];
        let (m, c) = fixture();
        for s in &selectors {
            let sel = s.select(&input(&m, &c, 1, 1)).unwrap();
            assert_eq!(sel.cluster_count(), 2, "{} failed", s.name());
        }
    }
}
