//! Evaluation of selections: how well do the chosen sensors predict
//! the *cluster thermal means* on held-out data? This is the metric
//! of Table II and Figures 9–10 (99th percentile of the absolute
//! prediction error).

use serde::{Deserialize, Serialize};

use thermal_cluster::Clustering;
use thermal_linalg::stats::{self, EmpiricalCdf};
use thermal_linalg::Matrix;

use crate::selection::Selection;
use crate::{Result, SelectError};

/// Pooled absolute errors of cluster-mean prediction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterMeanReport {
    errors: Vec<f64>,
    per_cluster_mean_abs: Vec<f64>,
}

impl ClusterMeanReport {
    /// All pooled absolute errors (cluster × validation samples).
    pub fn errors(&self) -> &[f64] {
        &self.errors
    }

    /// Mean absolute error per cluster.
    pub fn per_cluster_mean_abs(&self) -> &[f64] {
        &self.per_cluster_mean_abs
    }

    /// Percentile of the pooled absolute error (the paper reports the
    /// 99th).
    ///
    /// # Errors
    ///
    /// Propagates percentile-argument failures.
    pub fn percentile(&self, p: f64) -> Result<f64> {
        Ok(stats::percentile(&self.errors, p)?)
    }

    /// ECDF of the pooled absolute errors.
    ///
    /// # Errors
    ///
    /// Propagates ECDF construction failures.
    pub fn cdf(&self) -> Result<EmpiricalCdf> {
        Ok(EmpiricalCdf::new(&self.errors)?)
    }

    /// RMS of the pooled errors.
    ///
    /// # Errors
    ///
    /// Propagates RMS failures (empty report).
    pub fn rms(&self) -> Result<f64> {
        Ok(stats::rms(&self.errors)?)
    }
}

/// Evaluates a selection against validation trajectories
/// (`sensors × samples`, same sensor order as the clustering): the
/// mean of each cluster's chosen sensors predicts the mean of *all*
/// the cluster's sensors, sample by sample.
///
/// # Errors
///
/// Returns [`SelectError::InvalidRequest`] when shapes disagree or a
/// selected sensor is out of range.
pub fn cluster_mean_errors(
    validation: &Matrix,
    clustering: &Clustering,
    selection: &Selection,
) -> Result<ClusterMeanReport> {
    let n = validation.rows();
    if clustering.sensor_count() != n {
        return Err(SelectError::InvalidRequest {
            reason: format!(
                "clustering covers {} sensors but {} validation trajectories supplied",
                clustering.sensor_count(),
                n
            ),
        });
    }
    if selection.cluster_count() != clustering.k() {
        return Err(SelectError::InvalidRequest {
            reason: format!(
                "selection covers {} clusters, clustering has {}",
                selection.cluster_count(),
                clustering.k()
            ),
        });
    }
    for &s in &selection.sensors() {
        if s >= n {
            return Err(SelectError::InvalidRequest {
                reason: format!("selected sensor {s} out of range ({n} sensors)"),
            });
        }
    }

    let samples = validation.cols();
    let clusters = clustering.clusters();
    let mut errors = Vec::with_capacity(clusters.len() * samples);
    let mut per_cluster_mean_abs = Vec::with_capacity(clusters.len());
    for (c, members) in clusters.iter().enumerate() {
        let reps = selection.representatives(c);
        let mut abs_sum = 0.0;
        for t in 0..samples {
            let truth: f64 =
                members.iter().map(|&i| validation[(i, t)]).sum::<f64>() / members.len() as f64;
            let pred: f64 =
                reps.iter().map(|&i| validation[(i, t)]).sum::<f64>() / reps.len() as f64;
            let e = (pred - truth).abs();
            abs_sum += e;
            errors.push(e);
        }
        per_cluster_mean_abs.push(abs_sum / samples as f64);
    }
    Ok(ClusterMeanReport {
        errors,
        per_cluster_mean_abs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selection::Selection;

    fn fixture() -> (Matrix, Clustering) {
        // Cluster 0 = rows 0..3 with values v, v+0.3, v+0.6; cluster 1
        // = rows 3..5.
        let m = Matrix::from_rows(&[
            &[20.0, 21.0][..],
            &[20.3, 21.3][..],
            &[20.6, 21.6][..],
            &[25.0, 24.0][..],
            &[26.0, 25.0][..],
        ])
        .unwrap();
        let c = Clustering::from_assignments(vec![0, 0, 0, 1, 1], 2).unwrap();
        (m, c)
    }

    #[test]
    fn perfect_representative_has_small_error() {
        let (m, c) = fixture();
        // Row 1 is exactly the mean of cluster 0; row 3 is 0.5 below
        // cluster 1's mean.
        let sel = Selection::new(vec![vec![1], vec![3]]).unwrap();
        let report = cluster_mean_errors(&m, &c, &sel).unwrap();
        assert_eq!(report.errors().len(), 4);
        assert!(report.per_cluster_mean_abs()[0] < 1e-12);
        assert!((report.per_cluster_mean_abs()[1] - 0.5).abs() < 1e-12);
        assert!((report.percentile(99.0).unwrap() - 0.5).abs() < 1e-9);
        assert!(report.rms().unwrap() > 0.0);
        assert!(report.cdf().is_ok());
    }

    #[test]
    fn wrong_zone_representative_has_large_error() {
        let (m, c) = fixture();
        // Predict cluster 1 with a cluster-0 sensor: ~5 °C off.
        let sel = Selection::new(vec![vec![1], vec![0]]).unwrap();
        let report = cluster_mean_errors(&m, &c, &sel).unwrap();
        assert!(report.per_cluster_mean_abs()[1] > 4.0);
    }

    #[test]
    fn multiple_representatives_average() {
        let (m, c) = fixture();
        // Rows 0 and 2 average to the cluster-0 mean exactly.
        let sel = Selection::new(vec![vec![0, 2], vec![4]]).unwrap();
        let report = cluster_mean_errors(&m, &c, &sel).unwrap();
        assert!(report.per_cluster_mean_abs()[0] < 1e-12);
    }

    #[test]
    fn shape_mismatches_rejected() {
        let (m, c) = fixture();
        let wrong_clusters = Selection::new(vec![vec![0]]).unwrap();
        assert!(cluster_mean_errors(&m, &c, &wrong_clusters).is_err());
        let bad_sensor = Selection::new(vec![vec![0], vec![99]]).unwrap();
        assert!(cluster_mean_errors(&m, &c, &bad_sensor).is_err());
        let short = Matrix::from_rows(&[&[1.0][..], &[2.0][..]]).unwrap();
        let sel = Selection::new(vec![vec![0], vec![1]]).unwrap();
        assert!(cluster_mean_errors(&short, &c, &sel).is_err());
    }
}
