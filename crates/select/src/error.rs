//! Typed errors for the sensor-selection stage.

use std::fmt;

use thermal_cluster::ClusterError;
use thermal_linalg::LinalgError;

/// Errors produced by sensor selection.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SelectError {
    /// The selection request is inconsistent (zero sensors per
    /// cluster, more sensors than a cluster holds, …).
    InvalidRequest {
        /// Explanation of the problem.
        reason: String,
    },
    /// A numerical kernel failed (GP conditioning, statistics).
    Linalg(LinalgError),
    /// A clustering operation failed.
    Cluster(ClusterError),
    /// An internal invariant was violated — a bug in this crate, not
    /// bad input. Reported as an error instead of panicking so library
    /// callers stay in control.
    Internal {
        /// Which invariant failed.
        context: &'static str,
    },
}

impl fmt::Display for SelectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectError::InvalidRequest { reason } => {
                write!(f, "invalid selection request: {reason}")
            }
            SelectError::Linalg(e) => write!(f, "numerical failure: {e}"),
            SelectError::Cluster(e) => write!(f, "clustering failure: {e}"),
            SelectError::Internal { context } => {
                write!(f, "internal selection invariant violated: {context}")
            }
        }
    }
}

impl std::error::Error for SelectError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SelectError::Linalg(e) => Some(e),
            SelectError::Cluster(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<LinalgError> for SelectError {
    fn from(e: LinalgError) -> Self {
        SelectError::Linalg(e)
    }
}

#[doc(hidden)]
impl From<ClusterError> for SelectError {
    fn from(e: ClusterError) -> Self {
        SelectError::Cluster(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_traits() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<SelectError>();
        let e = SelectError::InvalidRequest {
            reason: "zero sensors".into(),
        };
        assert!(e.to_string().contains("zero sensors"));
        let e = SelectError::from(LinalgError::Empty { op: "cov" });
        assert!(std::error::Error::source(&e).is_some());
    }
}
