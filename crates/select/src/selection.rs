//! The selection abstraction: inputs, outputs and the [`Selector`]
//! trait implemented by every strategy.

use serde::{Deserialize, Serialize};

use thermal_cluster::Clustering;
use thermal_linalg::Matrix;

use crate::{Result, SelectError};

/// Everything a selector needs: training trajectories
/// (`sensors × samples`), the sensor clustering, how many
/// representatives to pick per cluster, and a seed for the stochastic
/// strategies.
#[derive(Debug, Clone, Copy)]
pub struct SelectionInput<'a> {
    /// Training-period trajectories, one row per sensor.
    pub trajectories: &'a Matrix,
    /// Clustering of the same sensors.
    pub clustering: &'a Clustering,
    /// Representatives per cluster.
    pub per_cluster: usize,
    /// Seed for stochastic selectors.
    pub seed: u64,
}

impl<'a> SelectionInput<'a> {
    /// Validates shared invariants (non-zero request, matching
    /// dimensions).
    ///
    /// # Errors
    ///
    /// Returns [`SelectError::InvalidRequest`] describing the
    /// problem.
    pub fn validate(&self) -> Result<()> {
        if self.per_cluster == 0 {
            return Err(SelectError::InvalidRequest {
                reason: "must select at least one sensor per cluster".to_owned(),
            });
        }
        if self.trajectories.rows() != self.clustering.sensor_count() {
            return Err(SelectError::InvalidRequest {
                reason: format!(
                    "clustering covers {} sensors but {} trajectories supplied",
                    self.clustering.sensor_count(),
                    self.trajectories.rows()
                ),
            });
        }
        if self.trajectories.cols() < 2 {
            return Err(SelectError::InvalidRequest {
                reason: "need at least two training samples".to_owned(),
            });
        }
        Ok(())
    }

    /// Total number of sensors a selector should return.
    pub fn total_requested(&self) -> usize {
        self.per_cluster * self.clustering.k()
    }
}

/// A completed selection: the representative sensors assigned to each
/// cluster (indices into the clustered sensor list).
///
/// Strategies that ignore clusters (plain random, thermostats, GP
/// placement) still *assign* their chosen sensors to clusters so that
/// cluster-mean prediction can be evaluated uniformly — exactly how
/// the paper compares them in Table II.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Selection {
    per_cluster: Vec<Vec<usize>>,
    /// Ranked fallback sensors per cluster (best substitute first),
    /// used when a representative goes dark in operation. Empty for
    /// selections that never ranked backups (older serialised data).
    #[serde(default)]
    backups: Vec<Vec<usize>>,
}

impl Selection {
    /// Creates a selection from per-cluster sensor lists.
    ///
    /// # Errors
    ///
    /// Returns [`SelectError::InvalidRequest`] when any cluster has no
    /// representative.
    pub fn new(per_cluster: Vec<Vec<usize>>) -> Result<Self> {
        if per_cluster.is_empty() || per_cluster.iter().any(|c| c.is_empty()) {
            return Err(SelectError::InvalidRequest {
                reason: "every cluster needs at least one representative".to_owned(),
            });
        }
        Ok(Selection {
            per_cluster,
            backups: Vec::new(),
        })
    }

    /// Attaches ranked per-cluster backup lists (best substitute
    /// first); see [`crate::rank_backups`] for the standard ranking.
    ///
    /// # Errors
    ///
    /// Returns [`SelectError::InvalidRequest`] when the backup list
    /// count differs from the cluster count or a backup duplicates a
    /// representative of its own cluster.
    pub fn with_backups(mut self, backups: Vec<Vec<usize>>) -> Result<Self> {
        if backups.len() != self.per_cluster.len() {
            return Err(SelectError::InvalidRequest {
                reason: format!(
                    "{} backup lists supplied for {} clusters",
                    backups.len(),
                    self.per_cluster.len()
                ),
            });
        }
        for (c, (reps, bs)) in self.per_cluster.iter().zip(&backups).enumerate() {
            if bs.iter().any(|b| reps.contains(b)) {
                return Err(SelectError::InvalidRequest {
                    reason: format!("cluster {c} lists a representative among its backups"),
                });
            }
        }
        self.backups = backups;
        Ok(self)
    }

    /// Ranked backups of cluster `c` (best substitute first); empty
    /// when no backups were ranked.
    pub fn backups(&self, c: usize) -> &[usize] {
        self.backups.get(c).map_or(&[], Vec::as_slice)
    }

    /// Per-cluster ranked backup lists (empty when none were ranked).
    pub fn backup_lists(&self) -> &[Vec<usize>] {
        &self.backups
    }

    /// `true` when ranked backups are attached.
    pub fn has_backups(&self) -> bool {
        !self.backups.is_empty()
    }

    /// Representatives of cluster `c`.
    ///
    /// # Panics
    ///
    /// Panics when `c` is out of range.
    pub fn representatives(&self, c: usize) -> &[usize] {
        &self.per_cluster[c]
    }

    /// Per-cluster representative lists.
    pub fn per_cluster(&self) -> &[Vec<usize>] {
        &self.per_cluster
    }

    /// Number of clusters covered.
    pub fn cluster_count(&self) -> usize {
        self.per_cluster.len()
    }

    /// All selected sensors, flattened and deduplicated, in ascending
    /// order.
    pub fn sensors(&self) -> Vec<usize> {
        let mut all: Vec<usize> = self.per_cluster.iter().flatten().copied().collect();
        all.sort_unstable();
        all.dedup();
        all
    }
}

/// A sensor-selection strategy.
///
/// The trait is object-safe so strategy sets can be iterated for
/// comparison tables (Table II, Figs. 10–11).
pub trait Selector {
    /// Short machine-friendly name (`"sms"`, `"srs"`, …).
    fn name(&self) -> &'static str;

    /// Chooses representatives for every cluster.
    ///
    /// # Errors
    ///
    /// Implementations return [`SelectError::InvalidRequest`] for
    /// impossible requests and propagate numerical failures.
    fn select(&self, input: &SelectionInput<'_>) -> Result<Selection>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_validation() {
        assert!(Selection::new(vec![]).is_err());
        assert!(Selection::new(vec![vec![1], vec![]]).is_err());
        let s = Selection::new(vec![vec![2, 1], vec![0]]).unwrap();
        assert_eq!(s.cluster_count(), 2);
        assert_eq!(s.representatives(0), &[2, 1]);
        assert_eq!(s.sensors(), vec![0, 1, 2]);
    }

    #[test]
    fn input_validation() {
        let traj = Matrix::from_rows(&[&[1.0, 2.0][..], &[3.0, 4.0][..]]).unwrap();
        let clustering = Clustering::from_assignments(vec![0, 1], 2).unwrap();
        let ok = SelectionInput {
            trajectories: &traj,
            clustering: &clustering,
            per_cluster: 1,
            seed: 0,
        };
        assert!(ok.validate().is_ok());
        assert_eq!(ok.total_requested(), 2);

        let zero = SelectionInput {
            per_cluster: 0,
            ..ok
        };
        assert!(zero.validate().is_err());

        let wrong_cluster = Clustering::from_assignments(vec![0], 1).unwrap();
        let mismatched = SelectionInput {
            clustering: &wrong_cluster,
            ..ok
        };
        assert!(mismatched.validate().is_err());

        let thin = Matrix::from_rows(&[&[1.0][..], &[2.0][..]]).unwrap();
        let too_thin = SelectionInput {
            trajectories: &thin,
            ..ok
        };
        assert!(too_thin.validate().is_err());
    }
}
