//! Representative-sensor selection — the "which sensors stay after
//! the study" half of the ICDCS'14 paper (Section VI.A–B).
//!
//! Given a clustering of the dense deployment, a selector chooses a
//! few sensors to keep for long-term operation. The crate implements
//! the paper's full comparison set:
//!
//! * [`NearMeanSelector`] — **SMS**, stratified near-mean selection
//!   (pick the sensor closest to each cluster's mean trajectory),
//! * [`StratifiedRandomSelector`] — **SRS**, random within clusters,
//! * [`RandomSelector`] — **RS**, clustering-blind random baseline,
//! * [`FixedSelector`] — a predetermined set (the two HVAC
//!   thermostats in Table II),
//! * [`GpSelector`] — **GP**, greedy mutual-information placement
//!   after Krause et al. (JMLR 2008),
//!
//! plus the paper's evaluation metric: [`cluster_mean_errors`], the
//! absolute error with which the chosen sensors reproduce each
//! cluster's thermal mean on held-out data (Table II reports its 99th
//! percentile), and [`rank_backups`], which ranks every cluster's
//! remaining members as fallback sensors for degradation-aware
//! operation (a representative dying in the reduced deployment).
//!
//! # Example
//!
//! ```
//! use thermal_cluster::Clustering;
//! use thermal_linalg::Matrix;
//! use thermal_select::{cluster_mean_errors, NearMeanSelector, SelectionInput, Selector};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let trajectories = Matrix::from_rows(&[
//!     &[20.0, 20.5][..],
//!     &[20.2, 20.7][..],
//!     &[22.0, 21.5][..],
//!     &[22.2, 21.7][..],
//! ])?;
//! let clustering = Clustering::from_assignments(vec![0, 0, 1, 1], 2)?;
//! let selection = NearMeanSelector.select(&SelectionInput {
//!     trajectories: &trajectories,
//!     clustering: &clustering,
//!     per_cluster: 1,
//!     seed: 7,
//! })?;
//! let report = cluster_mean_errors(&trajectories, &clustering, &selection)?;
//! assert!(report.percentile(99.0)? < 0.2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod eval;
mod selection;
mod strategies;

pub use error::SelectError;
pub use eval::{cluster_mean_errors, ClusterMeanReport};
pub use selection::{Selection, SelectionInput, Selector};
pub use strategies::{
    rank_backups, FixedSelector, GpSelector, NearMeanSelector, RandomSelector,
    StratifiedRandomSelector,
};

/// Convenient crate-wide result alias.
pub type Result<T> = std::result::Result<T, SelectError>;
