//! Data-driven thermal modeling of large open spaces: the end-to-end
//! method of *“Thermal Modeling for a HVAC Controlled Real-life
//! Auditorium”* (ICDCS 2014) as a reusable Rust library.
//!
//! The paper's three-step recipe for turning a dense temporary sensor
//! deployment into a small permanent one with a control-ready model:
//!
//! 1. **Cluster** the dense deployment's sensors by the similarity of
//!    their temperature trajectories (spectral clustering; cluster
//!    count by the largest log-eigengap) — [`thermal_cluster`],
//! 2. **Select** one (or a few) representative sensors per cluster
//!    (near-mean selection beats random, thermostats and GP
//!    placement) — [`thermal_select`],
//! 3. **Identify** a first- or second-order linear thermal model of
//!    the selected sensors from HVAC flows, occupancy, lighting and
//!    ambient temperature by piece-wise least squares —
//!    [`thermal_sysid`].
//!
//! [`ThermalPipeline`] wires the three stages together;
//! [`ReducedModel`] is the product. Every stage is also usable on its
//! own through the re-exported building blocks, and the [`control`]
//! module closes the loop the paper motivates: a receding-horizon
//! flow planner that trades supply-fan energy against a comfort band
//! on top of any identified model.
//!
//! # Example
//!
//! ```
//! use thermal_core::{ClusterCount, ModelOrder, SelectorKind, Similarity, ThermalPipeline};
//! use thermal_core::timeseries::{Channel, Dataset, Mask, TimeGrid, Timestamp};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Toy dataset: two sensor families driven by one input channel.
//! let n = 200;
//! let u: Vec<f64> = (0..n).map(|k| 0.5 + 0.5 * (k as f64 * 0.17).sin()).collect();
//! let mut channels = vec![Channel::from_values("vav", u.clone())?];
//! for (i, gain) in [0.2_f64, 0.22, -0.2, -0.22].into_iter().enumerate() {
//!     let mut t = vec![21.0];
//!     for k in 0..n - 1 {
//!         t.push(0.9 * t[k] + 2.1 + gain * u[k]);
//!     }
//!     channels.push(Channel::from_values(format!("s{i}"), t)?);
//! }
//! let grid = TimeGrid::new(Timestamp::from_minutes(0), 5, n)?;
//! let dataset = Dataset::new(grid, channels)?;
//!
//! let pipeline = ThermalPipeline::builder()
//!     .similarity(Similarity::correlation())
//!     .cluster_count(ClusterCount::Fixed(2))
//!     .selector(SelectorKind::NearMean)
//!     .model_order(ModelOrder::First)
//!     .build()?;
//! let reduced = pipeline.fit(
//!     &dataset,
//!     &["s0", "s1", "s2", "s3"],
//!     &["vav"],
//!     &Mask::all(dataset.grid()),
//! )?;
//! assert_eq!(reduced.selected_channels().len(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod degradation;
mod error;
mod pipeline;
mod reduced;

pub mod checkpoint;
pub mod control;

pub use checkpoint::{dataset_fingerprint, FitResume};
pub use degradation::{
    DegradationEvent, DegradationPolicy, DegradationReport, DegradedEvaluation, FallbackAction,
    ModelHealth,
};
pub use error::CoreError;
pub use pipeline::{SelectorKind, ThermalPipeline, ThermalPipelineBuilder};
pub use reduced::{ClusterMeanModelReport, ReducedModel};

// Re-export the stage vocabulary so `thermal_core` is a one-stop
// dependency for downstream users.
pub use thermal_cluster::{ClusterCount, Clustering, Similarity, SpectralConfig};
pub use thermal_select::{Selection, Selector};
pub use thermal_sysid::{
    CacheStats, EvalConfig, EvalReport, FitConfig, GramCache, ModelOrder, ModelSpec, ThermalModel,
};

/// Re-export of the time-series containers.
pub mod timeseries {
    pub use thermal_timeseries::*;
}

/// Convenient crate-wide result alias.
pub type Result<T> = std::result::Result<T, CoreError>;
