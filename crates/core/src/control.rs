//! Model-based HVAC flow planning — the application the paper builds
//! toward ("a practical foundation for HVAC control and optimization
//! for large open spaces").
//!
//! Given an identified [`ThermalModel`] (dense or reduced), the
//! [`FlowPlanner`] runs a receding-horizon policy: at every step it
//! scales the VAV flow inputs to the *smallest* candidate level whose
//! predicted temperatures stay inside a comfort band over a lookahead
//! window, holding the exogenous inputs (occupancy, lighting, ambient)
//! at their forecast values. Cold-air flow is the energy carrier, so
//! minimising flow subject to comfort is the standard economic
//! objective.

use serde::{Deserialize, Serialize};

use thermal_linalg::Matrix;
use thermal_sysid::{ModelOrder, ThermalModel};

use crate::{CoreError, Result};

/// The comfort band predicted temperatures must stay inside.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComfortBand {
    /// Lower bound, °C.
    pub min: f64,
    /// Upper bound, °C.
    pub max: f64,
}

impl ComfortBand {
    /// Creates a band after validating `min < max`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an empty or reversed
    /// band.
    pub fn new(min: f64, max: f64) -> Result<Self> {
        if !(min.is_finite() && max.is_finite() && min < max) {
            return Err(CoreError::InvalidConfig {
                reason: format!("comfort band [{min}, {max}] is not a valid interval"),
            });
        }
        Ok(ComfortBand { min, max })
    }

    /// The ASHRAE-ish occupied band used by the examples
    /// (20.0–23.0 °C).
    pub fn occupied() -> Self {
        ComfortBand {
            min: 20.0,
            max: 23.0,
        }
    }

    /// `true` when `t` lies inside the band.
    pub fn contains(&self, t: f64) -> bool {
        (self.min..=self.max).contains(&t)
    }

    /// Distance of `t` outside the band (zero inside).
    pub fn violation(&self, t: f64) -> f64 {
        if t < self.min {
            self.min - t
        } else if t > self.max {
            t - self.max
        } else {
            0.0
        }
    }
}

/// Configuration of the receding-horizon planner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControlConfig {
    /// Comfort band to enforce.
    pub band: ComfortBand,
    /// Lookahead length in samples when vetting a flow level.
    pub lookahead: usize,
    /// Candidate flow scalings (fractions of the baseline flow
    /// columns), ascending. The planner picks the smallest feasible
    /// one.
    pub flow_levels: Vec<f64>,
}

impl Default for ControlConfig {
    fn default() -> Self {
        ControlConfig {
            band: ComfortBand::occupied(),
            lookahead: 6,
            flow_levels: vec![0.2, 0.4, 0.6, 0.8, 1.0],
        }
    }
}

impl ControlConfig {
    fn validate(&self) -> Result<()> {
        if self.lookahead == 0 {
            return Err(CoreError::InvalidConfig {
                reason: "lookahead must be at least one step".to_owned(),
            });
        }
        if self.flow_levels.is_empty() {
            return Err(CoreError::InvalidConfig {
                reason: "at least one flow level is required".to_owned(),
            });
        }
        let mut last = f64::NEG_INFINITY;
        for &l in &self.flow_levels {
            if !(l.is_finite() && l >= 0.0 && l > last) {
                return Err(CoreError::InvalidConfig {
                    reason: "flow levels must be non-negative, finite and strictly ascending"
                        .to_owned(),
                });
            }
            last = l;
        }
        Ok(())
    }
}

/// The planner's product: per-step flow scalings and the trajectory
/// they are predicted to produce.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlowPlan {
    /// Chosen flow scaling per step.
    pub scale: Vec<f64>,
    /// Predicted sensor temperatures under the plan (steps × sensors).
    pub predicted: Matrix,
    /// Steps at which no candidate level kept the band (the largest
    /// level was used as best effort).
    pub infeasible_steps: Vec<usize>,
}

impl FlowPlan {
    /// Mean flow scaling over the plan — the relative energy proxy
    /// (supply-fan energy grows with flow).
    pub fn mean_scale(&self) -> f64 {
        if self.scale.is_empty() {
            return 0.0;
        }
        self.scale.iter().sum::<f64>() / self.scale.len() as f64
    }

    /// Worst predicted band violation, °C.
    pub fn worst_violation(&self, band: &ComfortBand) -> f64 {
        let mut worst = 0.0_f64;
        for r in 0..self.predicted.rows() {
            for v in self.predicted.row(r) {
                worst = worst.max(band.violation(*v));
            }
        }
        worst
    }
}

/// A receding-horizon flow planner over an identified thermal model.
#[derive(Debug, Clone)]
pub struct FlowPlanner<'a> {
    model: &'a ThermalModel,
    config: ControlConfig,
    /// Input-column indices that carry VAV flows (scaled by the
    /// planner); the rest are exogenous.
    flow_columns: Vec<usize>,
}

impl<'a> FlowPlanner<'a> {
    /// Creates a planner; `flow_inputs` names the model input channels
    /// the planner is allowed to scale (the VAV flows).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for invalid configs, an
    /// empty `flow_inputs`, or names that are not model inputs.
    pub fn new(
        model: &'a ThermalModel,
        config: ControlConfig,
        flow_inputs: &[&str],
    ) -> Result<Self> {
        config.validate()?;
        if flow_inputs.is_empty() {
            return Err(CoreError::InvalidConfig {
                reason: "the planner needs at least one controllable flow input".to_owned(),
            });
        }
        let inputs = &model.spec().inputs;
        let mut flow_columns = Vec::with_capacity(flow_inputs.len());
        for name in flow_inputs {
            let col =
                inputs
                    .iter()
                    .position(|i| i == name)
                    .ok_or_else(|| CoreError::InvalidConfig {
                        reason: format!("flow input {name:?} is not a model input"),
                    })?;
            flow_columns.push(col);
        }
        Ok(FlowPlanner {
            model,
            config,
            flow_columns,
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &ControlConfig {
        &self.config
    }

    /// Predicts `steps` ahead from `(prev, cur)` under a constant flow
    /// scale, returning the trajectory.
    fn rollout(
        &self,
        prev: &[f64],
        cur: &[f64],
        baseline: &Matrix,
        start: usize,
        steps: usize,
        scale: f64,
    ) -> Result<Matrix> {
        let p = self.model.spec().output_count();
        let mut out = Matrix::zeros(steps, p);
        let mut prev_v = prev.to_vec();
        let mut cur_v = cur.to_vec();
        for s in 0..steps {
            let row_idx = (start + s).min(baseline.rows() - 1);
            let mut u = baseline.row(row_idx).to_vec();
            for &c in &self.flow_columns {
                u[c] *= scale;
            }
            let next = self.model.predict_next(
                &cur_v,
                if self.model.spec().order == ModelOrder::Second {
                    Some(&prev_v)
                } else {
                    None
                },
                &u,
            )?;
            out.row_mut(s).copy_from_slice(next.as_slice());
            prev_v = std::mem::take(&mut cur_v);
            cur_v = next.into_inner();
        }
        Ok(out)
    }

    /// Plans flow scalings over `baseline.rows()` steps.
    ///
    /// `initial` holds the measured initial temperatures
    /// (`order.warmup()` rows × sensors); `baseline` holds one input
    /// row per step with the flow columns at their *maximum* values
    /// (the planner scales them down) and the exogenous columns at
    /// their forecast values.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] on shape mismatches and
    /// propagates model-evaluation failures.
    pub fn plan(&self, initial: &Matrix, baseline: &Matrix) -> Result<FlowPlan> {
        let spec = self.model.spec();
        let p = spec.output_count();
        if initial.rows() != spec.order.warmup() || initial.cols() != p {
            return Err(CoreError::InvalidConfig {
                reason: format!(
                    "initial condition must be {} x {p}, got {} x {}",
                    spec.order.warmup(),
                    initial.rows(),
                    initial.cols()
                ),
            });
        }
        if baseline.cols() != spec.input_count() || baseline.rows() == 0 {
            return Err(CoreError::InvalidConfig {
                reason: format!(
                    "baseline inputs must be n x {}, got {} x {}",
                    spec.input_count(),
                    baseline.rows(),
                    baseline.cols()
                ),
            });
        }

        let steps = baseline.rows();
        let band = self.config.band;
        let mut scale = Vec::with_capacity(steps);
        let mut predicted = Matrix::zeros(steps, p);
        let mut infeasible_steps = Vec::new();

        let mut prev = initial.row(0).to_vec();
        let mut cur = initial.row(initial.rows() - 1).to_vec();
        for k in 0..steps {
            let lookahead = self.config.lookahead.min(steps - k);
            // Smallest feasible level; fall back to the one with the
            // least violation.
            let mut chosen = *self.config.flow_levels.last().ok_or(CoreError::Internal {
                context: "flow_levels emptied after validation",
            })?;
            let mut chosen_violation = f64::INFINITY;
            let mut feasible = false;
            for &level in &self.config.flow_levels {
                let traj = self.rollout(&prev, &cur, baseline, k, lookahead, level)?;
                let mut worst = 0.0_f64;
                for r in 0..traj.rows() {
                    for v in traj.row(r) {
                        worst = worst.max(band.violation(*v));
                    }
                }
                if worst == 0.0 {
                    chosen = level;
                    feasible = true;
                    break;
                }
                if worst < chosen_violation {
                    chosen_violation = worst;
                    chosen = level;
                }
            }
            if !feasible {
                infeasible_steps.push(k);
            }
            // Commit one step at the chosen level.
            let step_traj = self.rollout(&prev, &cur, baseline, k, 1, chosen)?;
            predicted.row_mut(k).copy_from_slice(step_traj.row(0));
            scale.push(chosen);
            prev = std::mem::take(&mut cur);
            cur = step_traj.row(0).to_vec();
        }

        Ok(FlowPlan {
            scale,
            predicted,
            infeasible_steps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thermal_sysid::ModelSpec;

    /// A scalar cooling model: T' = 0.9 T + 2.0 q + 0.5 flow·(-1)
    /// where flow input carries chilled air (negative gain) and q is
    /// an exogenous heat input.
    fn cooling_model() -> ThermalModel {
        let spec = ModelSpec::new(
            vec!["room".into()],
            vec!["flow".into(), "heat".into()],
            ModelOrder::First,
        )
        .unwrap();
        // T(k+1) = 0.9 T(k) - 1.0 flow + 2.4 heat
        // -> steady state T* = 24 heat - 10 flow: the default flow
        // levels 0.2..1.0 span T* = 22.8 down to 14 at heat = 1.
        let coef = Matrix::from_rows(&[&[0.9, -1.0, 2.4][..]]).unwrap();
        ThermalModel::new(spec, coef).unwrap()
    }

    fn baseline(steps: usize, heat: f64) -> Matrix {
        Matrix::from_fn(steps, 2, |_, c| if c == 0 { 1.0 } else { heat })
    }

    #[test]
    fn band_validation() {
        assert!(ComfortBand::new(20.0, 23.0).is_ok());
        assert!(ComfortBand::new(23.0, 20.0).is_err());
        assert!(ComfortBand::new(20.0, 20.0).is_err());
        assert!(ComfortBand::new(f64::NAN, 22.0).is_err());
        let band = ComfortBand::occupied();
        assert!(band.contains(21.0));
        assert!(!band.contains(25.0));
        assert_eq!(band.violation(21.0), 0.0);
        assert!((band.violation(24.0) - 1.0).abs() < 1e-12);
        assert!((band.violation(19.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn config_validation() {
        let model = cooling_model();
        let cfg = ControlConfig {
            lookahead: 0,
            ..ControlConfig::default()
        };
        assert!(FlowPlanner::new(&model, cfg, &["flow"]).is_err());
        let cfg = ControlConfig {
            flow_levels: vec![],
            ..ControlConfig::default()
        };
        assert!(FlowPlanner::new(&model, cfg, &["flow"]).is_err());
        let cfg = ControlConfig {
            flow_levels: vec![0.5, 0.5],
            ..ControlConfig::default()
        };
        assert!(FlowPlanner::new(&model, cfg, &["flow"]).is_err());
        assert!(FlowPlanner::new(&model, ControlConfig::default(), &[]).is_err());
        assert!(FlowPlanner::new(&model, ControlConfig::default(), &["zz"]).is_err());
        assert!(FlowPlanner::new(&model, ControlConfig::default(), &["flow"]).is_ok());
    }

    #[test]
    fn hot_room_gets_high_flow_cool_room_gets_low() {
        let model = cooling_model();
        let planner = FlowPlanner::new(&model, ControlConfig::default(), &["flow"]).unwrap();
        // Strong heat load: at min flow T* = 24*1.2 - 2 = 26.8, far
        // above the band, so the planner must ramp to ~0.6.
        let hot_plan = planner
            .plan(
                &Matrix::from_rows(&[&[22.9][..]]).unwrap(),
                &baseline(30, 1.2),
            )
            .unwrap();
        // Light heat load: min flow holds T* = 24*0.95 - 2 = 20.8.
        let cool_plan = planner
            .plan(
                &Matrix::from_rows(&[&[20.5][..]]).unwrap(),
                &baseline(30, 0.95),
            )
            .unwrap();
        assert!(
            hot_plan.mean_scale() > cool_plan.mean_scale(),
            "hot {} vs cool {}",
            hot_plan.mean_scale(),
            cool_plan.mean_scale()
        );
    }

    #[test]
    fn feasible_plans_respect_the_band() {
        let model = cooling_model();
        let planner = FlowPlanner::new(&model, ControlConfig::default(), &["flow"]).unwrap();
        let plan = planner
            .plan(
                &Matrix::from_rows(&[&[21.5][..]]).unwrap(),
                &baseline(50, 1.0),
            )
            .unwrap();
        assert!(plan.infeasible_steps.is_empty());
        assert_eq!(plan.scale.len(), 50);
        assert_eq!(plan.predicted.rows(), 50);
        assert_eq!(
            plan.worst_violation(&planner.config().band),
            0.0,
            "feasible plan must stay inside the band"
        );
    }

    #[test]
    fn impossible_band_reports_infeasibility() {
        let model = cooling_model();
        // A band no flow level can reach given the heat load.
        let cfg = ControlConfig {
            band: ComfortBand::new(10.0, 12.0).unwrap(),
            ..ControlConfig::default()
        };
        let planner = FlowPlanner::new(&model, cfg, &["flow"]).unwrap();
        let plan = planner
            .plan(
                &Matrix::from_rows(&[&[22.0][..]]).unwrap(),
                &baseline(10, 1.0),
            )
            .unwrap();
        assert!(!plan.infeasible_steps.is_empty());
        // Best effort = the level with the least violation (max cooling).
        assert!(plan.scale.iter().all(|&s| (s - 1.0).abs() < 1e-12));
    }

    #[test]
    fn shape_mismatches_rejected() {
        let model = cooling_model();
        let planner = FlowPlanner::new(&model, ControlConfig::default(), &["flow"]).unwrap();
        assert!(planner
            .plan(&Matrix::zeros(2, 1), &baseline(5, 1.0))
            .is_err());
        assert!(planner
            .plan(
                &Matrix::from_rows(&[&[21.0][..]]).unwrap(),
                &Matrix::zeros(5, 3)
            )
            .is_err());
    }

    #[test]
    fn second_order_models_are_supported() {
        let spec =
            ModelSpec::new(vec!["room".into()], vec!["flow".into()], ModelOrder::Second).unwrap();
        // T(k+1) = 0.8 T(k) + 0.1 ΔT(k) - 2 flow + const-ish via T.
        let coef = Matrix::from_rows(&[&[0.8, 0.1, -2.0][..]]).unwrap();
        let model = ThermalModel::new(spec, coef).unwrap();
        let planner = FlowPlanner::new(&model, ControlConfig::default(), &["flow"]).unwrap();
        let init = Matrix::from_rows(&[&[21.0][..], &[21.2][..]]).unwrap();
        let base = Matrix::from_fn(20, 1, |_, _| 1.0);
        let plan = planner.plan(&init, &base).unwrap();
        assert_eq!(plan.scale.len(), 20);
        assert!(plan.predicted.is_finite());
    }
}
