//! Degradation-aware operation: what the reduced deployment does when
//! a kept sensor goes dark.
//!
//! The paper's endgame is removing most sensors and running the
//! auditorium on a handful of representatives — which makes each
//! representative a single point of failure. This module gives the
//! failure a *structured* outcome instead of an error: when a
//! representative's channel loses coverage, [`crate::ReducedModel`]
//! falls back to the ranked cluster-mate backups chosen at selection
//! time (see [`thermal_select::rank_backups`]), then to the per-slot
//! mean of whatever cluster members are still reporting, and records
//! every substitution in a [`DegradationReport`].

use serde::{Deserialize, Serialize};

use crate::reduced::ClusterMeanModelReport;
use crate::{CoreError, Result};

/// When a representative counts as dark, and how eagerly to fall
/// back.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegradationPolicy {
    /// Minimum fraction of evaluation-mask slots a representative (or
    /// a backup standing in for it) must have present to count as
    /// alive.
    pub min_rep_coverage: f64,
}

impl Default for DegradationPolicy {
    /// A representative reporting on fewer than a quarter of the
    /// evaluation slots is treated as dead: below that, the piece-wise
    /// segments it anchors are too short to validate against anyway.
    fn default() -> Self {
        DegradationPolicy {
            min_rep_coverage: 0.25,
        }
    }
}

impl DegradationPolicy {
    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when the coverage
    /// threshold is not a fraction in `(0, 1]`.
    pub fn validate(&self) -> Result<()> {
        if !self.min_rep_coverage.is_finite()
            || self.min_rep_coverage <= 0.0
            || self.min_rep_coverage > 1.0
        {
            return Err(CoreError::InvalidConfig {
                reason: "min_rep_coverage must be a fraction in (0, 1]".to_owned(),
            });
        }
        Ok(())
    }
}

/// Lifecycle of the *served model* under regime change — the
/// model-level counterpart of the per-sensor fallback ladder.
///
/// The streaming layer's drift detector (Page–Hinkley on one-step
/// residuals, per cluster) escalates through these states:
/// `Stable → Drifting → Refitting → Recovered → Stable`. `Drifting`
/// and `Refitting` flag served outputs as degraded and widen the
/// published uncertainty band; `Recovered` is the hysteresis hold
/// after a refit lands, before the detector is trusted again.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelHealth {
    /// Residuals look like the identification regime; serve normally.
    Stable,
    /// The drift detector fired: the physics no longer match the
    /// coefficients. Outputs are served but flagged degraded with a
    /// widened uncertainty band.
    Drifting,
    /// A supervised re-identification is in flight; the old model
    /// keeps serving (still degraded) until the refit lands.
    Refitting,
    /// A refit was installed; residuals must stay quiet for a
    /// hysteresis hold before the cluster is called stable again.
    Recovered,
}

impl Default for ModelHealth {
    /// A fresh supervisor starts out trusting its coefficients.
    fn default() -> Self {
        ModelHealth::Stable
    }
}

impl ModelHealth {
    /// Canonical lower-case label (report vocabulary).
    pub fn name(self) -> &'static str {
        match self {
            ModelHealth::Stable => "stable",
            ModelHealth::Drifting => "drifting",
            ModelHealth::Refitting => "refitting",
            ModelHealth::Recovered => "recovered",
        }
    }

    /// Inverse of [`ModelHealth::name`] (snapshot restore path).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "stable" => Some(ModelHealth::Stable),
            "drifting" => Some(ModelHealth::Drifting),
            "refitting" => Some(ModelHealth::Refitting),
            "recovered" => Some(ModelHealth::Recovered),
            _ => None,
        }
    }

    /// `true` while served outputs should be flagged degraded (the
    /// coefficients are suspect: drift confirmed, refit not yet
    /// installed).
    pub fn is_degraded(self) -> bool {
        matches!(self, ModelHealth::Drifting | ModelHealth::Refitting)
    }
}

/// How one representative's channel was handled.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum FallbackAction {
    /// The representative reported normally; nothing substituted.
    Healthy,
    /// A ranked cluster-mate backup stood in for the dead
    /// representative.
    Backup {
        /// Channel name of the substitute sensor.
        substitute: String,
    },
    /// No ranked backup was alive; the per-slot mean of the cluster's
    /// still-reporting members stood in.
    ClusterMean {
        /// How many cluster members the mean draws from.
        members: usize,
    },
    /// The whole cluster was dark; the channel was frozen at a
    /// constant so the rest of the model stays evaluable, and the
    /// cluster is excluded from pooled errors.
    Unavailable,
}

/// One representative's degradation record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradationEvent {
    /// Cluster the representative serves.
    pub cluster: usize,
    /// Channel name of the representative.
    pub representative: String,
    /// Fraction of evaluation-mask slots the representative had
    /// present.
    pub coverage: f64,
    /// What was done about it.
    pub action: FallbackAction,
}

/// Structured account of every fallback taken during a degraded
/// evaluation — the pipeline's answer instead of an error when
/// sensors die.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradationReport {
    events: Vec<DegradationEvent>,
}

impl DegradationReport {
    /// Builds a report from per-representative events (normally done
    /// by [`crate::ReducedModel::evaluate_degraded`]).
    pub fn new(events: Vec<DegradationEvent>) -> Self {
        DegradationReport { events }
    }

    /// All per-representative records, cluster order.
    pub fn events(&self) -> &[DegradationEvent] {
        &self.events
    }

    /// `true` when at least one representative needed a fallback.
    pub fn is_degraded(&self) -> bool {
        self.events
            .iter()
            .any(|e| e.action != FallbackAction::Healthy)
    }

    /// Number of representatives that needed any fallback.
    pub fn degraded_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| e.action != FallbackAction::Healthy)
            .count()
    }

    /// Clusters excluded from pooled errors because every fallback
    /// failed.
    pub fn unavailable_clusters(&self) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .events
            .iter()
            .filter(|e| e.action == FallbackAction::Unavailable)
            .map(|e| e.cluster)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Records for representatives that were substituted, in cluster
    /// order.
    pub fn substitutions(&self) -> impl Iterator<Item = &DegradationEvent> {
        self.events
            .iter()
            .filter(|e| e.action != FallbackAction::Healthy)
    }
}

/// Outcome of a degradation-aware evaluation: the fallbacks taken,
/// plus the usual pooled-error report when any cluster remained
/// evaluable. `report` is `None` only under total blackout (no
/// usable prediction segment, or no ground truth anywhere) — the
/// pipeline still completes and says *why* through `degradation`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DegradedEvaluation {
    /// Every fallback taken (one event per representative).
    pub degradation: DegradationReport,
    /// Pooled cluster-mean errors over the evaluable clusters, when
    /// any exist.
    pub report: Option<ClusterMeanModelReport>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(cluster: usize, action: FallbackAction) -> DegradationEvent {
        DegradationEvent {
            cluster,
            representative: format!("s{cluster}"),
            coverage: 0.0,
            action,
        }
    }

    #[test]
    fn policy_validation() {
        assert!(DegradationPolicy::default().validate().is_ok());
        for bad in [0.0, -0.5, 1.5, f64::NAN] {
            let p = DegradationPolicy {
                min_rep_coverage: bad,
            };
            assert!(p.validate().is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn model_health_vocabulary() {
        use ModelHealth::*;
        for (state, name, degraded) in [
            (Stable, "stable", false),
            (Drifting, "drifting", true),
            (Refitting, "refitting", true),
            (Recovered, "recovered", false),
        ] {
            assert_eq!(state.name(), name);
            assert_eq!(state.is_degraded(), degraded);
        }
    }

    #[test]
    fn report_accounting() {
        let report = DegradationReport::new(vec![
            event(0, FallbackAction::Healthy),
            event(
                1,
                FallbackAction::Backup {
                    substitute: "s9".to_owned(),
                },
            ),
            event(2, FallbackAction::Unavailable),
        ]);
        assert!(report.is_degraded());
        assert_eq!(report.degraded_count(), 2);
        assert_eq!(report.unavailable_clusters(), vec![2]);
        assert_eq!(report.substitutions().count(), 2);
        let clean = DegradationReport::new(vec![event(0, FallbackAction::Healthy)]);
        assert!(!clean.is_degraded());
        assert!(clean.unavailable_clusters().is_empty());
    }
}
