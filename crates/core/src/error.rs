//! Typed errors for the end-to-end modeling pipeline.

use std::fmt;

use thermal_cluster::ClusterError;
use thermal_select::SelectError;
use thermal_sysid::SysidError;
use thermal_timeseries::TimeSeriesError;

/// Errors produced by the end-to-end modeling pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// The pipeline configuration is inconsistent.
    InvalidConfig {
        /// Explanation of the problem.
        reason: String,
    },
    /// Sensor clustering failed.
    Cluster(ClusterError),
    /// Sensor selection failed.
    Select(SelectError),
    /// Model identification or evaluation failed.
    Sysid(SysidError),
    /// A dataset operation failed.
    TimeSeries(TimeSeriesError),
    /// Checkpoint persistence failed (store I/O, not corruption —
    /// corrupt checkpoints are quarantined and recomputed, never
    /// surfaced as errors).
    Checkpoint {
        /// Rendered description of the underlying failure.
        detail: String,
    },
    /// An internal invariant was violated — a bug in this crate, not
    /// bad input. Reported as an error instead of panicking so library
    /// callers stay in control.
    Internal {
        /// Which invariant failed.
        context: &'static str,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConfig { reason } => write!(f, "invalid pipeline config: {reason}"),
            CoreError::Cluster(e) => write!(f, "clustering stage failed: {e}"),
            CoreError::Select(e) => write!(f, "selection stage failed: {e}"),
            CoreError::Sysid(e) => write!(f, "identification stage failed: {e}"),
            CoreError::TimeSeries(e) => write!(f, "dataset operation failed: {e}"),
            CoreError::Checkpoint { detail } => {
                write!(f, "checkpoint persistence failed: {detail}")
            }
            CoreError::Internal { context } => {
                write!(f, "internal pipeline invariant violated: {context}")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Cluster(e) => Some(e),
            CoreError::Select(e) => Some(e),
            CoreError::Sysid(e) => Some(e),
            CoreError::TimeSeries(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<ClusterError> for CoreError {
    fn from(e: ClusterError) -> Self {
        CoreError::Cluster(e)
    }
}

#[doc(hidden)]
impl From<SelectError> for CoreError {
    fn from(e: SelectError) -> Self {
        CoreError::Select(e)
    }
}

#[doc(hidden)]
impl From<SysidError> for CoreError {
    fn from(e: SysidError) -> Self {
        CoreError::Sysid(e)
    }
}

#[doc(hidden)]
impl From<TimeSeriesError> for CoreError {
    fn from(e: TimeSeriesError) -> Self {
        CoreError::TimeSeries(e)
    }
}

// Rendered to a string so `CoreError` keeps its `Clone + PartialEq`
// derives (`CkptError` carries a non-clonable `std::io::Error`).
#[doc(hidden)]
impl From<thermal_ckpt::CkptError> for CoreError {
    fn from(e: thermal_ckpt::CkptError) -> Self {
        CoreError::Checkpoint {
            detail: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<CoreError>();
        let e = CoreError::InvalidConfig {
            reason: "no sensors".into(),
        };
        assert!(e.to_string().contains("no sensors"));
        let e = CoreError::from(TimeSeriesError::GridMismatch);
        assert!(std::error::Error::source(&e).is_some());
    }
}
