//! Checkpoint codecs and input fingerprints for the resumable
//! pipeline ([`crate::ThermalPipeline::fit_checkpointed`]).
//!
//! Each pipeline stage persists its result as a bit-exact
//! [`thermal_ckpt::codec::Record`] stamped with a *fingerprint* of
//! everything the stage's output depends on: the dataset contents,
//! the channel lists, the training mask, and the full pipeline
//! configuration. On resume a checkpoint is only honoured when its
//! fingerprint matches the current inputs — edit the config or the
//! data and every stale stage silently recomputes. Decoding failures
//! are likewise treated as a cache miss, never an abort:
//! recomputation is always safe.

use thermal_ckpt::codec::Record;
use thermal_ckpt::Fnv64;
use thermal_cluster::Clustering;
use thermal_linalg::Matrix;
use thermal_select::Selection;
use thermal_sysid::{ModelOrder, ModelSpec, ThermalModel};
use thermal_timeseries::{Dataset, Mask};

use crate::pipeline::ThermalPipeline;

/// What [`crate::ThermalPipeline::fit_checkpointed`] restored versus
/// recomputed, for reporting and tests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FitResume {
    /// Stage labels restored from verified checkpoints.
    pub restored: Vec<&'static str>,
    /// Stage labels that were (re)computed and committed.
    pub computed: Vec<&'static str>,
}

/// Fingerprint of the data a fit depends on: grid geometry, the
/// named channels' exact sample bits, the mask, and the channel
/// lists themselves. Shared with `thermal-bench`'s grid runners.
pub fn dataset_fingerprint(
    dataset: &Dataset,
    sensor_channels: &[&str],
    input_channels: &[&str],
    mask: &Mask,
) -> u64 {
    let mut h = Fnv64::new();
    let grid = dataset.grid();
    h.update(&grid.start().as_minutes().to_le_bytes());
    h.update(&u64::from(grid.step_minutes()).to_le_bytes());
    h.update(&(grid.len() as u64).to_le_bytes());
    for name in sensor_channels.iter().chain(input_channels.iter()) {
        h.update(name.as_bytes());
        h.update(&[0]);
        if let Some(channel) = dataset.channel(name) {
            for v in channel.values() {
                match v {
                    Some(x) => {
                        h.update(&[1]);
                        h.update(&x.to_bits().to_le_bytes());
                    }
                    None => h.update(&[2]),
                }
            }
        } else {
            h.update(&[3]);
        }
    }
    for &b in mask.bits() {
        h.update(&[u8::from(b)]);
    }
    h.finish()
}

/// Fingerprint of everything a checkpointed fit depends on: the
/// dataset fingerprint plus the pipeline's full configuration (via
/// its `Debug` form, which covers every field).
pub(crate) fn fit_fingerprint(
    pipeline: &ThermalPipeline,
    dataset: &Dataset,
    sensor_channels: &[&str],
    input_channels: &[&str],
    mask: &Mask,
) -> u64 {
    let mut h = Fnv64::new();
    h.update(&dataset_fingerprint(dataset, sensor_channels, input_channels, mask).to_le_bytes());
    h.update(format!("{pipeline:?}").as_bytes());
    h.finish()
}

const CLUSTER_TAG: &str = "core-cluster-v1";
const SELECT_TAG: &str = "core-select-v1";
const MODEL_TAG: &str = "core-model-v1";

/// Encodes a clustering stage result.
pub(crate) fn encode_clustering(c: &Clustering, fingerprint: u64) -> Vec<u8> {
    let mut r = Record::new(CLUSTER_TAG);
    r.put_u64("fp", fingerprint)
        .put_usize("k", c.k())
        .put_usize_slice("assignments", c.assignments())
        .put_f64_slice("eigenvalues", c.eigenvalues());
    r.encode()
}

/// Decodes a clustering checkpoint; `None` on fingerprint mismatch
/// or any malformation (cache miss → recompute).
pub(crate) fn decode_clustering(bytes: &[u8], fingerprint: u64) -> Option<Clustering> {
    let r = Record::decode(bytes, CLUSTER_TAG).ok()?;
    if r.get_u64("fp").ok()? != fingerprint {
        return None;
    }
    let k = r.get_usize("k").ok()?;
    let assignments = r.get_usize_slice("assignments").ok()?;
    let eigenvalues = r.get_f64_slice("eigenvalues").ok()?;
    Some(
        Clustering::from_assignments(assignments, k)
            .ok()?
            .with_eigenvalues(eigenvalues),
    )
}

/// Encodes a selection stage result (representatives + backups).
pub(crate) fn encode_selection(s: &Selection, fingerprint: u64) -> Vec<u8> {
    let mut r = Record::new(SELECT_TAG);
    r.put_u64("fp", fingerprint)
        .put_usize("clusters", s.per_cluster().len());
    for (i, reps) in s.per_cluster().iter().enumerate() {
        r.put_usize_slice(&format!("pc{i}"), reps);
    }
    r.put_usize("backup_lists", s.backup_lists().len());
    for (i, backups) in s.backup_lists().iter().enumerate() {
        r.put_usize_slice(&format!("bk{i}"), backups);
    }
    r.encode()
}

/// Decodes a selection checkpoint; `None` on mismatch/malformation.
pub(crate) fn decode_selection(bytes: &[u8], fingerprint: u64) -> Option<Selection> {
    let r = Record::decode(bytes, SELECT_TAG).ok()?;
    if r.get_u64("fp").ok()? != fingerprint {
        return None;
    }
    let clusters = r.get_usize("clusters").ok()?;
    let mut per_cluster = Vec::with_capacity(clusters);
    for i in 0..clusters {
        per_cluster.push(r.get_usize_slice(&format!("pc{i}")).ok()?);
    }
    let selection = Selection::new(per_cluster).ok()?;
    let backup_lists = r.get_usize("backup_lists").ok()?;
    if backup_lists == 0 {
        return Some(selection);
    }
    let mut backups = Vec::with_capacity(backup_lists);
    for i in 0..backup_lists {
        backups.push(r.get_usize_slice(&format!("bk{i}")).ok()?);
    }
    selection.with_backups(backups).ok()
}

/// Encodes the identification stage result: the selected channel
/// names plus the identified model (spec + coefficient bits).
pub(crate) fn encode_model(selected: &[String], model: &ThermalModel, fingerprint: u64) -> Vec<u8> {
    let spec = model.spec();
    let mut r = Record::new(MODEL_TAG);
    r.put_u64("fp", fingerprint)
        .put_str_list("selected", selected)
        .put_str_list("outputs", &spec.outputs)
        .put_str_list("inputs", &spec.inputs)
        .put(
            "order",
            match spec.order {
                ModelOrder::First => "first",
                ModelOrder::Second => "second",
            },
        )
        .put_usize("rows", model.coefficients().rows())
        .put_usize("cols", model.coefficients().cols())
        .put_f64_slice("coef", model.coefficients().as_slice());
    r.encode()
}

/// Decodes an identification checkpoint; `None` on
/// mismatch/malformation.
pub(crate) fn decode_model(bytes: &[u8], fingerprint: u64) -> Option<(Vec<String>, ThermalModel)> {
    let r = Record::decode(bytes, MODEL_TAG).ok()?;
    if r.get_u64("fp").ok()? != fingerprint {
        return None;
    }
    let selected = r.get_str_list("selected").ok()?;
    let outputs = r.get_str_list("outputs").ok()?;
    let inputs = r.get_str_list("inputs").ok()?;
    let order = match r.get("order").ok()?.as_str() {
        "first" => ModelOrder::First,
        "second" => ModelOrder::Second,
        _ => return None,
    };
    let spec = ModelSpec::new(outputs, inputs, order).ok()?;
    let rows = r.get_usize("rows").ok()?;
    let cols = r.get_usize("cols").ok()?;
    let coef = r.get_f64_slice("coef").ok()?;
    let coef = Matrix::from_vec(rows, cols, coef).ok()?;
    let model = ThermalModel::new(spec, coef).ok()?;
    Some((selected, model))
}

#[cfg(test)]
mod tests {
    use super::*;
    use thermal_timeseries::{Channel, TimeGrid, Timestamp};

    fn tiny_dataset() -> Dataset {
        let grid = TimeGrid::new(Timestamp::from_minutes(0), 5, 4).unwrap();
        let a = Channel::new("a", vec![Some(1.0), None, Some(3.0), Some(4.0)]).unwrap();
        let u = Channel::from_values("u", vec![0.0, 0.5, 1.0, 0.5]).unwrap();
        Dataset::new(grid, vec![a, u]).unwrap()
    }

    #[test]
    fn dataset_fingerprint_tracks_inputs() {
        let ds = tiny_dataset();
        let mask = Mask::all(ds.grid());
        let base = dataset_fingerprint(&ds, &["a"], &["u"], &mask);
        assert_eq!(base, dataset_fingerprint(&ds, &["a"], &["u"], &mask));
        // Channel list order and content both matter.
        assert_ne!(base, dataset_fingerprint(&ds, &["u"], &["a"], &mask));
        let mut other = Mask::all(ds.grid());
        other.set(0, false).unwrap();
        assert_ne!(base, dataset_fingerprint(&ds, &["a"], &["u"], &other));
    }

    #[test]
    fn clustering_roundtrip_is_exact() {
        let c = Clustering::from_assignments(vec![0, 1, 0, 1], 2)
            .unwrap()
            .with_eigenvalues(vec![1.0, 0.8, 0.05]);
        let bytes = encode_clustering(&c, 99);
        assert_eq!(decode_clustering(&bytes, 99), Some(c.clone()));
        // Fingerprint mismatch is a cache miss, not an error.
        assert_eq!(decode_clustering(&bytes, 100), None);
        assert_eq!(decode_clustering(b"garbage", 99), None);
    }

    #[test]
    fn selection_roundtrip_preserves_backups() {
        let s = Selection::new(vec![vec![0], vec![3]])
            .unwrap()
            .with_backups(vec![vec![1, 2], vec![4]])
            .unwrap();
        let bytes = encode_selection(&s, 7);
        assert_eq!(decode_selection(&bytes, 7), Some(s.clone()));
        assert_eq!(decode_selection(&bytes, 8), None);
        // No backups round-trips too.
        let bare = Selection::new(vec![vec![2]]).unwrap();
        let bytes = encode_selection(&bare, 7);
        assert_eq!(decode_selection(&bytes, 7), Some(bare));
    }

    #[test]
    fn model_roundtrip_is_bit_exact() {
        let spec = ModelSpec::new(
            vec!["s0".into(), "s1".into()],
            vec!["u".into()],
            ModelOrder::Second,
        )
        .unwrap();
        let coef = Matrix::from_vec(
            2,
            5,
            vec![
                0.1,
                -0.2,
                0.3,
                1e-17,
                5.0,
                -0.5,
                0.25,
                f64::MIN_POSITIVE,
                2.0,
                0.0,
            ],
        )
        .unwrap();
        let model = ThermalModel::new(spec, coef).unwrap();
        let selected = vec!["s0".to_string(), "s1".into()];
        let bytes = encode_model(&selected, &model, 1234);
        let (sel, back) = decode_model(&bytes, 1234).unwrap();
        assert_eq!(sel, selected);
        assert_eq!(back, model);
        assert!(decode_model(&bytes, 0).is_none());
    }
}
