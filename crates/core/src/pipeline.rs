//! The paper's three-step method as one configurable pipeline:
//! cluster the dense deployment, select representative sensors, and
//! identify a simplified thermal model on them.

use serde::{Deserialize, Serialize};

use thermal_ckpt::CheckpointStore;
use thermal_cluster::{
    cluster_trajectories, trajectory_matrix, ClusterCount, Clustering, Similarity, SpectralConfig,
};
use thermal_linalg::Matrix;
use thermal_select::{
    rank_backups, FixedSelector, GpSelector, NearMeanSelector, RandomSelector, Selection,
    SelectionInput, Selector, StratifiedRandomSelector,
};
use thermal_sysid::{
    identify, identify_with_cache, FitConfig, GramCache, ModelOrder, ModelSpec, ThermalModel,
};
use thermal_timeseries::{Dataset, Mask};

use crate::checkpoint::{self, FitResume};
use crate::reduced::ReducedModel;
use crate::{CoreError, Result};

/// Which selection strategy the pipeline uses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SelectorKind {
    /// Stratified near-mean selection (the paper's SMS — its best).
    NearMean,
    /// Stratified random selection (SRS).
    StratifiedRandom,
    /// Clustering-blind random baseline (RS).
    Random,
    /// A fixed set of channel names (e.g. the installed thermostats).
    Fixed(Vec<String>),
    /// Greedy Gaussian-process mutual-information placement (GP).
    GpMutualInformation,
}

impl SelectorKind {
    fn build(&self, dataset_channels: &[String]) -> Result<Box<dyn Selector>> {
        Ok(match self {
            SelectorKind::NearMean => Box::new(NearMeanSelector),
            SelectorKind::StratifiedRandom => Box::new(StratifiedRandomSelector),
            SelectorKind::Random => Box::new(RandomSelector),
            SelectorKind::GpMutualInformation => Box::new(GpSelector),
            SelectorKind::Fixed(names) => {
                let mut indices = Vec::with_capacity(names.len());
                for n in names {
                    let idx = dataset_channels
                        .iter()
                        .position(|c| c == n)
                        .ok_or_else(|| CoreError::InvalidConfig {
                            reason: format!("fixed sensor {n:?} is not a modelled channel"),
                        })?;
                    indices.push(idx);
                }
                Box::new(FixedSelector::new("fixed", indices))
            }
        })
    }
}

/// Complete pipeline configuration. Construct with
/// [`ThermalPipeline::builder`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThermalPipeline {
    similarity: Similarity,
    count: ClusterCount,
    selector: SelectorKind,
    per_cluster: usize,
    order: ModelOrder,
    fit: FitConfig,
    seed: u64,
    restarts: usize,
}

impl ThermalPipeline {
    /// Starts building a pipeline with the paper's defaults
    /// (correlation similarity, eigengap cluster count up to 8,
    /// near-mean selection of one sensor per cluster, second-order
    /// model).
    pub fn builder() -> ThermalPipelineBuilder {
        ThermalPipelineBuilder::default()
    }

    /// The clustering similarity in use.
    pub fn similarity(&self) -> Similarity {
        self.similarity
    }

    /// The cluster-count policy in use.
    pub fn cluster_count(&self) -> ClusterCount {
        self.count
    }

    /// The selection strategy in use.
    pub fn selector(&self) -> &SelectorKind {
        &self.selector
    }

    /// The model order in use.
    pub fn model_order(&self) -> ModelOrder {
        self.order
    }

    /// Runs the three steps on `dataset`: cluster `sensor_channels`
    /// over `train_mask`, select representatives, and identify a
    /// reduced model of the selected sensors driven by
    /// `input_channels`.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidConfig`] for empty channel lists,
    /// * stage errors from clustering, selection or identification.
    pub fn fit(
        &self,
        dataset: &Dataset,
        sensor_channels: &[&str],
        input_channels: &[&str],
        train_mask: &Mask,
    ) -> Result<ReducedModel> {
        if sensor_channels.is_empty() {
            return Err(CoreError::InvalidConfig {
                reason: "pipeline needs at least one sensor channel".to_owned(),
            });
        }
        let owned_names: Vec<String> = sensor_channels.iter().map(|s| (*s).to_owned()).collect();

        // Step 1: cluster the dense deployment.
        let trajectories = trajectory_matrix(dataset, sensor_channels, train_mask)?;
        let clustering = self.cluster_stage(&trajectories)?;

        // Step 2: select representative sensors (with ranked backups).
        let selection = self.select_stage(&trajectories, &clustering, &owned_names)?;

        // Step 3: identify the simplified model on the selected
        // sensors.
        let (selected, model) = self.identify_stage(
            dataset,
            &selection,
            &owned_names,
            input_channels,
            train_mask,
        )?;

        Ok(ReducedModel::new(
            owned_names,
            clustering,
            selection,
            selected,
            model,
        ))
    }

    /// Runs [`ThermalPipeline::fit`] with the identification stage
    /// routed through a caller-owned [`GramCache`], so repeated fits
    /// over the same dataset and spec (sweeps, refits, fleet warm
    /// restarts) reuse memoized normal-equation blocks.
    ///
    /// Callers sharing one cache across tenants (e.g. buildings of a
    /// fleet) must set a distinct [`GramCache::set_namespace`] per
    /// tenant before each fit; the namespace partitions keys
    /// structurally so tenants can never observe each other's blocks.
    /// Results are bit-identical to [`ThermalPipeline::fit`] whenever
    /// `fit.ridge > 0` holds — with `ridge == 0` the cache is
    /// bypassed for the QR path (see `thermal_sysid::cache`).
    ///
    /// # Errors
    ///
    /// As [`ThermalPipeline::fit`].
    pub fn fit_with_cache(
        &self,
        dataset: &Dataset,
        sensor_channels: &[&str],
        input_channels: &[&str],
        train_mask: &Mask,
        cache: &mut GramCache,
    ) -> Result<ReducedModel> {
        if sensor_channels.is_empty() {
            return Err(CoreError::InvalidConfig {
                reason: "pipeline needs at least one sensor channel".to_owned(),
            });
        }
        let owned_names: Vec<String> = sensor_channels.iter().map(|s| (*s).to_owned()).collect();
        let trajectories = trajectory_matrix(dataset, sensor_channels, train_mask)?;
        let clustering = self.cluster_stage(&trajectories)?;
        let selection = self.select_stage(&trajectories, &clustering, &owned_names)?;
        let selected: Vec<String> = selection
            .sensors()
            .into_iter()
            .map(|i| owned_names[i].clone())
            .collect();
        let spec = ModelSpec::new(
            selected.clone(),
            input_channels.iter().map(|s| (*s).to_owned()).collect(),
            self.order,
        )?;
        let model = identify_with_cache(dataset, &spec, train_mask, &self.fit, cache)?;
        Ok(ReducedModel::new(
            owned_names,
            clustering,
            selection,
            selected,
            model,
        ))
    }

    /// Runs [`ThermalPipeline::fit`] with each of the three stages
    /// checkpointed in `store` under `{prefix}-{stage}.ck` names.
    ///
    /// A stage whose verified checkpoint matches the *fingerprint* of
    /// the current inputs (dataset bits, channel lists, mask, and the
    /// full pipeline configuration) is restored instead of
    /// recomputed; everything downstream of the first miss runs
    /// fresh and is committed atomically. Because every stage is
    /// bitwise deterministic, a resumed fit returns a model equal to
    /// an uninterrupted one — the returned [`FitResume`] says which
    /// path each stage took.
    ///
    /// # Errors
    ///
    /// As [`ThermalPipeline::fit`], plus [`CoreError::Checkpoint`]
    /// for store I/O failures. Corrupt or stale checkpoints are *not*
    /// errors — they are recomputed.
    pub fn fit_checkpointed(
        &self,
        dataset: &Dataset,
        sensor_channels: &[&str],
        input_channels: &[&str],
        train_mask: &Mask,
        store: &mut CheckpointStore,
        prefix: &str,
    ) -> Result<(ReducedModel, FitResume)> {
        if sensor_channels.is_empty() {
            return Err(CoreError::InvalidConfig {
                reason: "pipeline needs at least one sensor channel".to_owned(),
            });
        }
        let owned_names: Vec<String> = sensor_channels.iter().map(|s| (*s).to_owned()).collect();
        let fp =
            checkpoint::fit_fingerprint(self, dataset, sensor_channels, input_channels, train_mask);
        let mut resume = FitResume::default();
        let trajectories = trajectory_matrix(dataset, sensor_channels, train_mask)?;

        let cluster_name = format!("{prefix}-cluster.ck");
        let clustering = match store
            .get(&cluster_name)?
            .and_then(|b| checkpoint::decode_clustering(&b, fp))
        {
            Some(c) => {
                resume.restored.push("cluster");
                c
            }
            None => {
                let c = self.cluster_stage(&trajectories)?;
                store.put(&cluster_name, &checkpoint::encode_clustering(&c, fp))?;
                resume.computed.push("cluster");
                c
            }
        };

        let select_name = format!("{prefix}-select.ck");
        let selection = match store
            .get(&select_name)?
            .and_then(|b| checkpoint::decode_selection(&b, fp))
        {
            Some(s) => {
                resume.restored.push("select");
                s
            }
            None => {
                let s = self.select_stage(&trajectories, &clustering, &owned_names)?;
                store.put(&select_name, &checkpoint::encode_selection(&s, fp))?;
                resume.computed.push("select");
                s
            }
        };

        let model_name = format!("{prefix}-model.ck");
        let (selected, model) = match store
            .get(&model_name)?
            .and_then(|b| checkpoint::decode_model(&b, fp))
        {
            Some(pair) => {
                resume.restored.push("model");
                pair
            }
            None => {
                let pair = self.identify_stage(
                    dataset,
                    &selection,
                    &owned_names,
                    input_channels,
                    train_mask,
                )?;
                store.put(&model_name, &checkpoint::encode_model(&pair.0, &pair.1, fp))?;
                resume.computed.push("model");
                pair
            }
        };

        Ok((
            ReducedModel::new(owned_names, clustering, selection, selected, model),
            resume,
        ))
    }

    /// Stage 1: spectral clustering of the trajectory matrix.
    fn cluster_stage(&self, trajectories: &Matrix) -> Result<Clustering> {
        let spectral = SpectralConfig {
            similarity: self.similarity,
            count: self.count,
            seed: self.seed,
            restarts: self.restarts,
        };
        Ok(cluster_trajectories(trajectories, &spectral)?)
    }

    /// Stage 2: representative selection, with each cluster's
    /// remaining members ranked as backups so operation can degrade
    /// gracefully when a representative dies (see
    /// [`ReducedModel::evaluate_degraded`]).
    fn select_stage(
        &self,
        trajectories: &Matrix,
        clustering: &Clustering,
        owned_names: &[String],
    ) -> Result<Selection> {
        let selector = self.selector.build(owned_names)?;
        let selection_input = SelectionInput {
            trajectories,
            clustering,
            per_cluster: self.per_cluster,
            seed: self.seed,
        };
        let selection = selector.select(&selection_input)?;
        Ok(rank_backups(&selection_input, &selection)?)
    }

    /// Stage 3: least-squares identification on the selected sensors.
    fn identify_stage(
        &self,
        dataset: &Dataset,
        selection: &Selection,
        owned_names: &[String],
        input_channels: &[&str],
        train_mask: &Mask,
    ) -> Result<(Vec<String>, ThermalModel)> {
        let selected: Vec<String> = selection
            .sensors()
            .into_iter()
            .map(|i| owned_names[i].clone())
            .collect();
        let spec = ModelSpec::new(
            selected.clone(),
            input_channels.iter().map(|s| (*s).to_owned()).collect(),
            self.order,
        )?;
        let model = identify(dataset, &spec, train_mask, &self.fit)?;
        Ok((selected, model))
    }
}

/// Builder for [`ThermalPipeline`].
#[derive(Debug, Clone)]
pub struct ThermalPipelineBuilder {
    similarity: Similarity,
    count: ClusterCount,
    selector: SelectorKind,
    per_cluster: usize,
    order: ModelOrder,
    fit: FitConfig,
    seed: u64,
    restarts: usize,
}

impl Default for ThermalPipelineBuilder {
    fn default() -> Self {
        ThermalPipelineBuilder {
            similarity: Similarity::correlation(),
            count: ClusterCount::Eigengap { max: 8 },
            selector: SelectorKind::NearMean,
            per_cluster: 1,
            order: ModelOrder::Second,
            fit: FitConfig::default(),
            seed: 7,
            restarts: 8,
        }
    }
}

impl ThermalPipelineBuilder {
    /// Sets the clustering similarity.
    pub fn similarity(&mut self, similarity: Similarity) -> &mut Self {
        self.similarity = similarity;
        self
    }

    /// Sets the cluster-count policy.
    pub fn cluster_count(&mut self, count: ClusterCount) -> &mut Self {
        self.count = count;
        self
    }

    /// Sets the selection strategy.
    pub fn selector(&mut self, selector: SelectorKind) -> &mut Self {
        self.selector = selector;
        self
    }

    /// Sets how many sensors to keep per cluster.
    pub fn per_cluster(&mut self, per_cluster: usize) -> &mut Self {
        self.per_cluster = per_cluster;
        self
    }

    /// Sets the dynamic order of the identified model.
    pub fn model_order(&mut self, order: ModelOrder) -> &mut Self {
        self.order = order;
        self
    }

    /// Sets the least-squares configuration.
    pub fn fit_config(&mut self, fit: FitConfig) -> &mut Self {
        self.fit = fit;
        self
    }

    /// Sets the seed shared by the stochastic stages.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Sets the k-means restart count.
    pub fn restarts(&mut self, restarts: usize) -> &mut Self {
        self.restarts = restarts;
        self
    }

    /// Finalises the pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for a zero `per_cluster`
    /// or zero `restarts`.
    pub fn build(&self) -> Result<ThermalPipeline> {
        if self.per_cluster == 0 {
            return Err(CoreError::InvalidConfig {
                reason: "per_cluster must be at least 1".to_owned(),
            });
        }
        if self.restarts == 0 {
            return Err(CoreError::InvalidConfig {
                reason: "restarts must be at least 1".to_owned(),
            });
        }
        Ok(ThermalPipeline {
            similarity: self.similarity,
            count: self.count,
            selector: self.selector.clone(),
            per_cluster: self.per_cluster,
            order: self.order,
            fit: self.fit,
            seed: self.seed,
            restarts: self.restarts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thermal_timeseries::{Channel, TimeGrid, Timestamp};

    /// A small synthetic dataset with two sensor families driven by
    /// one input.
    fn synth_dataset() -> Dataset {
        let n = 240;
        let u: Vec<f64> = (0..n)
            .map(|k| 0.5 + 0.5 * (k as f64 * 0.13).sin())
            .collect();
        // Family A: strongly driven by u; family B: anti-driven.
        let mut families: Vec<Vec<f64>> = Vec::new();
        for (gain, base) in [
            (1.0, 20.0),
            (0.9, 20.1),
            (1.1, 19.9),
            (-1.0, 22.0),
            (-0.9, 22.1),
        ] {
            let mut t = vec![base];
            for k in 0..n - 1 {
                let drive: f64 = gain * u[k];
                let salt = thermal_linalg::cast::floor_to_index(gain * 10.0, usize::MAX - 1);
                let wiggle = 0.01 * (((k * 31 + salt) % 17) as f64 / 17.0);
                t.push(0.9 * t[k] + 0.1 * base + drive * 0.2 + wiggle);
            }
            families.push(t);
        }
        let grid = TimeGrid::new(Timestamp::from_minutes(0), 5, n).unwrap();
        let mut channels = vec![Channel::from_values("u", u).unwrap()];
        for (i, t) in families.into_iter().enumerate() {
            channels.push(Channel::from_values(format!("s{i}"), t).unwrap());
        }
        Dataset::new(grid, channels).unwrap()
    }

    #[test]
    fn builder_defaults_and_validation() {
        let p = ThermalPipeline::builder().build().unwrap();
        assert_eq!(p.model_order(), ModelOrder::Second);
        assert_eq!(p.selector(), &SelectorKind::NearMean);
        assert!(ThermalPipeline::builder().per_cluster(0).build().is_err());
        assert!(ThermalPipeline::builder().restarts(0).build().is_err());
    }

    #[test]
    fn full_pipeline_runs_end_to_end() {
        let ds = synth_dataset();
        let sensors = ["s0", "s1", "s2", "s3", "s4"];
        let pipeline = ThermalPipeline::builder()
            .cluster_count(ClusterCount::Fixed(2))
            .model_order(ModelOrder::First)
            .seed(3)
            .build()
            .unwrap();
        let reduced = pipeline
            .fit(&ds, &sensors, &["u"], &Mask::all(ds.grid()))
            .unwrap();
        assert_eq!(reduced.clustering().k(), 2);
        assert_eq!(reduced.selected_channels().len(), 2);
        // The two representatives come from the two families.
        let sel = reduced.selected_channels();
        let fam = |name: &str| {
            let idx: usize = name[1..].parse().unwrap();
            usize::from(idx >= 3)
        };
        assert_ne!(fam(&sel[0]), fam(&sel[1]));
    }

    #[test]
    fn fixed_selector_by_name() {
        let ds = synth_dataset();
        let sensors = ["s0", "s1", "s2", "s3", "s4"];
        let pipeline = ThermalPipeline::builder()
            .cluster_count(ClusterCount::Fixed(2))
            .selector(SelectorKind::Fixed(vec!["s1".into(), "s4".into()]))
            .model_order(ModelOrder::First)
            .build()
            .unwrap();
        let reduced = pipeline
            .fit(&ds, &sensors, &["u"], &Mask::all(ds.grid()))
            .unwrap();
        let mut names = reduced.selected_channels().to_vec();
        names.sort();
        assert_eq!(names, vec!["s1".to_owned(), "s4".to_owned()]);
        // Unknown fixed name is rejected.
        let bad = ThermalPipeline::builder()
            .selector(SelectorKind::Fixed(vec!["zz".into()]))
            .build()
            .unwrap();
        assert!(matches!(
            bad.fit(&ds, &sensors, &["u"], &Mask::all(ds.grid())),
            Err(CoreError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn checkpointed_fit_matches_plain_fit_cold_and_warm() {
        let ds = synth_dataset();
        let sensors = ["s0", "s1", "s2", "s3", "s4"];
        let mask = Mask::all(ds.grid());
        let pipeline = ThermalPipeline::builder()
            .cluster_count(ClusterCount::Fixed(2))
            .model_order(ModelOrder::First)
            .seed(3)
            .build()
            .unwrap();
        let plain = pipeline.fit(&ds, &sensors, &["u"], &mask).unwrap();

        let root = std::env::temp_dir().join(format!("core-fit-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let mut store = CheckpointStore::open(&root, 3, "test").unwrap();

        // Cold: every stage computed, result identical to plain fit.
        let (cold, resume) = pipeline
            .fit_checkpointed(&ds, &sensors, &["u"], &mask, &mut store, "fit")
            .unwrap();
        assert_eq!(cold, plain);
        assert_eq!(resume.computed, vec!["cluster", "select", "model"]);
        assert!(resume.restored.is_empty());

        // Warm (fresh store handle, same dir): every stage restored,
        // result still identical.
        drop(store);
        let mut store = CheckpointStore::open(&root, 3, "test").unwrap();
        assert_eq!(store.open_report().restored, 3);
        let (warm, resume) = pipeline
            .fit_checkpointed(&ds, &sensors, &["u"], &mask, &mut store, "fit")
            .unwrap();
        assert_eq!(warm, plain);
        assert_eq!(resume.restored, vec!["cluster", "select", "model"]);
        assert!(resume.computed.is_empty());

        // Changing the config invalidates the fingerprint: all
        // stages recompute rather than restoring stale state.
        let other = ThermalPipeline::builder()
            .cluster_count(ClusterCount::Fixed(2))
            .model_order(ModelOrder::Second)
            .seed(3)
            .build()
            .unwrap();
        let (_, resume) = other
            .fit_checkpointed(&ds, &sensors, &["u"], &mask, &mut store, "fit")
            .unwrap();
        assert_eq!(resume.computed, vec!["cluster", "select", "model"]);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn checkpointed_fit_recovers_from_corrupted_stage() {
        let ds = synth_dataset();
        let sensors = ["s0", "s1", "s2", "s3", "s4"];
        let mask = Mask::all(ds.grid());
        let pipeline = ThermalPipeline::builder()
            .cluster_count(ClusterCount::Fixed(2))
            .model_order(ModelOrder::First)
            .seed(3)
            .build()
            .unwrap();
        let root = std::env::temp_dir().join(format!("core-fit-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let mut store = CheckpointStore::open(&root, 3, "test").unwrap();
        let (full, _) = pipeline
            .fit_checkpointed(&ds, &sensors, &["u"], &mask, &mut store, "fit")
            .unwrap();
        drop(store);

        // Corrupt the select-stage checkpoint on disk.
        std::fs::write(root.join("fit-select.ck"), b"scrambled").unwrap();
        let mut store = CheckpointStore::open(&root, 3, "test").unwrap();
        assert_eq!(
            store.open_report().quarantined,
            vec!["fit-select.ck".to_string()]
        );
        let (recovered, resume) = pipeline
            .fit_checkpointed(&ds, &sensors, &["u"], &mask, &mut store, "fit")
            .unwrap();
        assert_eq!(recovered, full);
        assert_eq!(resume.restored, vec!["cluster", "model"]);
        assert_eq!(resume.computed, vec!["select"]);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn empty_sensor_list_rejected() {
        let ds = synth_dataset();
        let pipeline = ThermalPipeline::builder().build().unwrap();
        assert!(matches!(
            pipeline.fit(&ds, &[], &["u"], &Mask::all(ds.grid())),
            Err(CoreError::InvalidConfig { .. })
        ));
    }
}
