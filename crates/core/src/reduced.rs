//! The pipeline's product: a reduced thermal model over a handful of
//! representative sensors, evaluated against the cluster thermal
//! means it is meant to track (Fig. 11's metric).

use serde::{Deserialize, Serialize};

use thermal_cluster::Clustering;
use thermal_linalg::stats::{self, EmpiricalCdf};
use thermal_select::Selection;
use thermal_sysid::{predict_segment, regressors, ThermalModel};
use thermal_timeseries::{Dataset, Mask};

use crate::{CoreError, Result};

/// A simplified thermal model built on selected sensors, with the
/// clustering context needed to interpret its predictions as cluster
/// thermal means.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReducedModel {
    /// All modelled sensor channels (the dense deployment).
    all_channels: Vec<String>,
    /// Clustering of `all_channels`.
    clustering: Clustering,
    /// Which sensors were kept, per cluster.
    selection: Selection,
    /// Names of the kept sensors, ascending dataset order.
    selected_channels: Vec<String>,
    /// The identified state-space model over `selected_channels`.
    model: ThermalModel,
}

impl ReducedModel {
    /// Assembles a reduced model (normally done by
    /// [`crate::ThermalPipeline::fit`]).
    pub fn new(
        all_channels: Vec<String>,
        clustering: Clustering,
        selection: Selection,
        selected_channels: Vec<String>,
        model: ThermalModel,
    ) -> Self {
        ReducedModel {
            all_channels,
            clustering,
            selection,
            selected_channels,
            model,
        }
    }

    /// The dense deployment's channel names.
    pub fn all_channels(&self) -> &[String] {
        &self.all_channels
    }

    /// The sensor clustering.
    pub fn clustering(&self) -> &Clustering {
        &self.clustering
    }

    /// The selection that produced this model.
    pub fn selection(&self) -> &Selection {
        &self.selection
    }

    /// Names of the kept sensors.
    pub fn selected_channels(&self) -> &[String] {
        &self.selected_channels
    }

    /// The identified state-space model over the kept sensors.
    pub fn model(&self) -> &ThermalModel {
        &self.model
    }

    /// Evaluates how well the reduced model predicts each cluster's
    /// thermal mean, open-loop over the usable segments of `mask`:
    /// the model rolls forward from measured initial conditions, its
    /// per-cluster predictions (mean over that cluster's kept
    /// sensors) are compared with the measured mean over *all* the
    /// cluster's sensors.
    ///
    /// Returns the pooled absolute errors, the quantity whose 99th
    /// percentile Fig. 11 plots.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidConfig`] when `horizon` is zero,
    /// * identification-stage errors when no usable segment exists.
    pub fn evaluate_cluster_means(
        &self,
        dataset: &Dataset,
        mask: &Mask,
        horizon: usize,
    ) -> Result<ClusterMeanModelReport> {
        if horizon == 0 {
            return Err(CoreError::InvalidConfig {
                reason: "evaluation horizon must be at least one step".to_owned(),
            });
        }
        // Usable segments need every channel the model consumes *and*
        // every dense channel for ground truth: intersect the masks.
        let all_refs: Vec<&str> = self.all_channels.iter().map(String::as_str).collect();
        let dense_idx = dataset.resolve(&all_refs)?;
        let dense_present = dataset.presence_mask(&dense_idx)?;
        let joint = dense_present.and(mask)?;
        let segments = regressors::usable_segments(dataset, self.model.spec(), &joint)?;

        // Column index of each selected channel within the model's
        // output ordering.
        let spec_outputs = &self.model.spec().outputs;

        // Per-cluster: positions (within model outputs) of that
        // cluster's representatives, and dataset indices of all its
        // members.
        let clusters = self.clustering.clusters();
        let mut rep_cols: Vec<Vec<usize>> = Vec::with_capacity(clusters.len());
        let mut member_idx: Vec<Vec<usize>> = Vec::with_capacity(clusters.len());
        for (c, members) in clusters.iter().enumerate() {
            let reps = self.selection.representatives(c);
            let cols = reps
                .iter()
                .map(|&r| {
                    let name = &self.all_channels[r];
                    spec_outputs.iter().position(|o| o == name).ok_or_else(|| {
                        CoreError::InvalidConfig {
                            reason: format!("representative {name:?} missing from model outputs"),
                        }
                    })
                })
                .collect::<Result<Vec<usize>>>()?;
            rep_cols.push(cols);
            member_idx.push(members.iter().map(|&m| dense_idx[m]).collect());
        }

        let mut errors = Vec::new();
        let mut segments_used = 0usize;
        for seg in segments {
            let Ok(pred) = predict_segment(&self.model, dataset, seg, Some(horizon)) else {
                continue;
            };
            segments_used += 1;
            for (row, &grid_idx) in pred.indices.iter().enumerate() {
                for (c, cols) in rep_cols.iter().enumerate() {
                    let predicted: f64 =
                        cols.iter().map(|&j| pred.predicted[(row, j)]).sum::<f64>()
                            / cols.len() as f64;
                    let truth_vals =
                        dataset
                            .values_at(grid_idx, &member_idx[c])
                            .ok_or(CoreError::Internal {
                                context: "segmentation admitted a missing sample",
                            })?;
                    let truth: f64 = truth_vals.iter().sum::<f64>() / truth_vals.len() as f64;
                    errors.push((predicted - truth).abs());
                }
            }
        }
        if errors.is_empty() {
            return Err(CoreError::Sysid(
                thermal_sysid::SysidError::InsufficientData {
                    available: 0,
                    required: 1,
                },
            ));
        }
        Ok(ClusterMeanModelReport {
            errors,
            segments_used,
            cluster_count: clusters.len(),
        })
    }
}

/// Pooled cluster-mean prediction errors of a reduced model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterMeanModelReport {
    errors: Vec<f64>,
    segments_used: usize,
    cluster_count: usize,
}

impl ClusterMeanModelReport {
    /// Pooled absolute errors (clusters × predicted samples).
    pub fn errors(&self) -> &[f64] {
        &self.errors
    }

    /// Number of segments that contributed predictions.
    pub fn segments_used(&self) -> usize {
        self.segments_used
    }

    /// Number of clusters evaluated.
    pub fn cluster_count(&self) -> usize {
        self.cluster_count
    }

    /// Percentile of the pooled errors (Fig. 11 uses the 99th).
    ///
    /// # Errors
    ///
    /// Propagates percentile failures.
    pub fn percentile(&self, p: f64) -> Result<f64> {
        stats::percentile(&self.errors, p).map_err(|e| CoreError::Sysid(e.into()))
    }

    /// ECDF of the pooled errors.
    ///
    /// # Errors
    ///
    /// Propagates construction failures.
    pub fn cdf(&self) -> Result<EmpiricalCdf> {
        EmpiricalCdf::new(&self.errors).map_err(|e| CoreError::Sysid(e.into()))
    }

    /// RMS of the pooled errors.
    ///
    /// # Errors
    ///
    /// Propagates RMS failures.
    pub fn rms(&self) -> Result<f64> {
        stats::rms(&self.errors).map_err(|e| CoreError::Sysid(e.into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SelectorKind, ThermalPipeline};
    use thermal_cluster::ClusterCount;
    use thermal_sysid::ModelOrder;
    use thermal_timeseries::{Channel, TimeGrid, Timestamp};

    fn synth_dataset() -> Dataset {
        let n = 300;
        let u: Vec<f64> = (0..n)
            .map(|k| 0.5 + 0.5 * (k as f64 * 0.11).sin())
            .collect();
        let mut channels = vec![Channel::from_values("u", u.clone()).unwrap()];
        for (i, (gain, base)) in [(1.0, 20.0), (1.05, 20.1), (-1.0, 22.0), (-0.95, 22.1)]
            .into_iter()
            .enumerate()
        {
            let mut t = vec![base];
            for k in 0..n - 1 {
                t.push(0.9 * t[k] + 0.1 * base + gain * 0.2 * u[k]);
            }
            channels.push(Channel::from_values(format!("s{i}"), t).unwrap());
        }
        let grid = TimeGrid::new(Timestamp::from_minutes(0), 5, n).unwrap();
        Dataset::new(grid, channels).unwrap()
    }

    fn fit_reduced(ds: &Dataset) -> ReducedModel {
        ThermalPipeline::builder()
            .cluster_count(ClusterCount::Fixed(2))
            .selector(SelectorKind::NearMean)
            .model_order(ModelOrder::First)
            .build()
            .unwrap()
            .fit(ds, &["s0", "s1", "s2", "s3"], &["u"], &Mask::all(ds.grid()))
            .unwrap()
    }

    #[test]
    fn reduced_model_tracks_cluster_means() {
        let ds = synth_dataset();
        let reduced = fit_reduced(&ds);
        let report = reduced
            .evaluate_cluster_means(&ds, &Mask::all(ds.grid()), 50)
            .unwrap();
        assert_eq!(report.cluster_count(), 2);
        assert!(report.segments_used() >= 1);
        // Representatives sit within 0.1 of their cluster mean by
        // construction, and the model is near-exact.
        assert!(
            report.percentile(99.0).unwrap() < 0.2,
            "99th pct {}",
            report.percentile(99.0).unwrap()
        );
        assert!(report.rms().unwrap() < 0.2);
        assert!(report.cdf().is_ok());
    }

    #[test]
    fn zero_horizon_rejected() {
        let ds = synth_dataset();
        let reduced = fit_reduced(&ds);
        assert!(matches!(
            reduced.evaluate_cluster_means(&ds, &Mask::all(ds.grid()), 0),
            Err(CoreError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn empty_mask_reports_no_data() {
        let ds = synth_dataset();
        let reduced = fit_reduced(&ds);
        let none = Mask::none(ds.grid());
        assert!(reduced.evaluate_cluster_means(&ds, &none, 10).is_err());
    }

    #[test]
    fn accessors_expose_structure() {
        let ds = synth_dataset();
        let reduced = fit_reduced(&ds);
        assert_eq!(reduced.all_channels().len(), 4);
        assert_eq!(reduced.clustering().k(), 2);
        assert_eq!(reduced.selection().cluster_count(), 2);
        assert_eq!(reduced.selected_channels().len(), 2);
        assert_eq!(reduced.model().spec().outputs.len(), 2);
    }
}
