//! The pipeline's product: a reduced thermal model over a handful of
//! representative sensors, evaluated against the cluster thermal
//! means it is meant to track (Fig. 11's metric).

use serde::{Deserialize, Serialize};

use thermal_cluster::Clustering;
use thermal_linalg::stats::{self, EmpiricalCdf};
use thermal_select::Selection;
use thermal_sysid::{predict_segment, regressors, ThermalModel};
use thermal_timeseries::{Channel, Dataset, Mask};

use crate::degradation::{
    DegradationEvent, DegradationPolicy, DegradationReport, DegradedEvaluation, FallbackAction,
};
use crate::{CoreError, Result};

/// A simplified thermal model built on selected sensors, with the
/// clustering context needed to interpret its predictions as cluster
/// thermal means.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReducedModel {
    /// All modelled sensor channels (the dense deployment).
    all_channels: Vec<String>,
    /// Clustering of `all_channels`.
    clustering: Clustering,
    /// Which sensors were kept, per cluster.
    selection: Selection,
    /// Names of the kept sensors, ascending dataset order.
    selected_channels: Vec<String>,
    /// The identified state-space model over `selected_channels`.
    model: ThermalModel,
}

impl ReducedModel {
    /// Assembles a reduced model (normally done by
    /// [`crate::ThermalPipeline::fit`]).
    pub fn new(
        all_channels: Vec<String>,
        clustering: Clustering,
        selection: Selection,
        selected_channels: Vec<String>,
        model: ThermalModel,
    ) -> Self {
        ReducedModel {
            all_channels,
            clustering,
            selection,
            selected_channels,
            model,
        }
    }

    /// The dense deployment's channel names.
    pub fn all_channels(&self) -> &[String] {
        &self.all_channels
    }

    /// The sensor clustering.
    pub fn clustering(&self) -> &Clustering {
        &self.clustering
    }

    /// The selection that produced this model.
    pub fn selection(&self) -> &Selection {
        &self.selection
    }

    /// Names of the kept sensors.
    pub fn selected_channels(&self) -> &[String] {
        &self.selected_channels
    }

    /// The identified state-space model over the kept sensors.
    pub fn model(&self) -> &ThermalModel {
        &self.model
    }

    /// Swaps in a re-identified model over the *same* sensor
    /// selection — the install step of an online refit: the
    /// clustering/selection context is untouched, only the
    /// coefficients change.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when the replacement's
    /// spec (outputs, inputs, order) differs from the served model's,
    /// which would silently re-wire the deployment.
    pub fn install_model(&mut self, model: ThermalModel) -> Result<()> {
        if model.spec() != self.model.spec() {
            return Err(CoreError::InvalidConfig {
                reason: "replacement model must keep the served spec (outputs, inputs, order)"
                    .to_owned(),
            });
        }
        self.model = model;
        Ok(())
    }

    /// Evaluates how well the reduced model predicts each cluster's
    /// thermal mean, open-loop over the usable segments of `mask`:
    /// the model rolls forward from measured initial conditions, its
    /// per-cluster predictions (mean over that cluster's kept
    /// sensors) are compared with the measured mean over *all* the
    /// cluster's sensors.
    ///
    /// Returns the pooled absolute errors, the quantity whose 99th
    /// percentile Fig. 11 plots.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidConfig`] when `horizon` is zero,
    /// * identification-stage errors when no usable segment exists.
    pub fn evaluate_cluster_means(
        &self,
        dataset: &Dataset,
        mask: &Mask,
        horizon: usize,
    ) -> Result<ClusterMeanModelReport> {
        if horizon == 0 {
            return Err(CoreError::InvalidConfig {
                reason: "evaluation horizon must be at least one step".to_owned(),
            });
        }
        // Usable segments need every channel the model consumes *and*
        // every dense channel for ground truth: intersect the masks.
        let all_refs: Vec<&str> = self.all_channels.iter().map(String::as_str).collect();
        let dense_idx = dataset.resolve(&all_refs)?;
        let dense_present = dataset.presence_mask(&dense_idx)?;
        let joint = dense_present.and(mask)?;
        let segments = regressors::usable_segments(dataset, self.model.spec(), &joint)?;

        // Column index of each selected channel within the model's
        // output ordering.
        let spec_outputs = &self.model.spec().outputs;

        // Per-cluster: positions (within model outputs) of that
        // cluster's representatives, and dataset indices of all its
        // members.
        let clusters = self.clustering.clusters();
        let mut rep_cols: Vec<Vec<usize>> = Vec::with_capacity(clusters.len());
        let mut member_idx: Vec<Vec<usize>> = Vec::with_capacity(clusters.len());
        for (c, members) in clusters.iter().enumerate() {
            let reps = self.selection.representatives(c);
            let cols = reps
                .iter()
                .map(|&r| {
                    let name = &self.all_channels[r];
                    spec_outputs.iter().position(|o| o == name).ok_or_else(|| {
                        CoreError::InvalidConfig {
                            reason: format!("representative {name:?} missing from model outputs"),
                        }
                    })
                })
                .collect::<Result<Vec<usize>>>()?;
            rep_cols.push(cols);
            member_idx.push(members.iter().map(|&m| dense_idx[m]).collect());
        }

        let mut errors = Vec::new();
        let mut segments_used = 0usize;
        for seg in segments {
            let Ok(pred) = predict_segment(&self.model, dataset, seg, Some(horizon)) else {
                continue;
            };
            segments_used += 1;
            for (row, &grid_idx) in pred.indices.iter().enumerate() {
                for (c, cols) in rep_cols.iter().enumerate() {
                    let predicted: f64 =
                        cols.iter().map(|&j| pred.predicted[(row, j)]).sum::<f64>()
                            / cols.len() as f64;
                    let truth_vals =
                        dataset
                            .values_at(grid_idx, &member_idx[c])
                            .ok_or(CoreError::Internal {
                                context: "segmentation admitted a missing sample",
                            })?;
                    let truth: f64 = truth_vals.iter().sum::<f64>() / truth_vals.len() as f64;
                    errors.push((predicted - truth).abs());
                }
            }
        }
        if errors.is_empty() {
            return Err(CoreError::Sysid(
                thermal_sysid::SysidError::InsufficientData {
                    available: 0,
                    required: 1,
                },
            ));
        }
        Ok(ClusterMeanModelReport {
            errors,
            segments_used,
            cluster_count: clusters.len(),
        })
    }

    /// Degradation-aware version of [`Self::evaluate_cluster_means`]:
    /// instead of failing when sensors are dark, it substitutes each
    /// dead representative (ranked cluster-mate backup first, then the
    /// per-slot mean of still-reporting cluster members) and records
    /// every fallback in a [`DegradationReport`].
    ///
    /// Differences from the clean evaluation, by design:
    ///
    /// * ground truth per cluster is the mean over the members
    ///   *present at each slot* (the clean version requires the full
    ///   dense deployment, which dead sensors would veto outright),
    /// * a cluster whose members are all dark is frozen at a constant
    ///   (so the coupled model stays evaluable) and excluded from the
    ///   pooled errors,
    /// * total blackout returns `report: None` instead of an error —
    ///   the pipeline always completes and explains itself through
    ///   the degradation report.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidConfig`] for a zero `horizon` or an
    ///   invalid `policy`,
    /// * dataset errors when `dataset` lacks modelled channels or
    ///   `mask` lives on another grid.
    pub fn evaluate_degraded(
        &self,
        dataset: &Dataset,
        mask: &Mask,
        horizon: usize,
        policy: &DegradationPolicy,
    ) -> Result<DegradedEvaluation> {
        if horizon == 0 {
            return Err(CoreError::InvalidConfig {
                reason: "evaluation horizon must be at least one step".to_owned(),
            });
        }
        policy.validate()?;
        let n = dataset.grid().len();
        if mask.len() != n {
            return Err(CoreError::TimeSeries(
                thermal_timeseries::TimeSeriesError::GridMismatch,
            ));
        }
        let all_refs: Vec<&str> = self.all_channels.iter().map(String::as_str).collect();
        let dense_idx = dataset.resolve(&all_refs)?;

        let mask_slots: Vec<usize> = mask.iter_selected().collect();
        let denom = mask_slots.len().max(1) as f64;
        let coverage_of = |di: usize| -> f64 {
            let ch = &dataset.channels()[di];
            mask_slots
                .iter()
                .filter(|&&i| ch.value(i).is_some())
                .count() as f64
                / denom
        };

        let clusters = self.clustering.clusters();
        let mut events = Vec::new();
        let mut channels: Vec<Channel> = dataset.channels().to_vec();
        let mut cluster_evaluable = vec![true; clusters.len()];

        for (c, members) in clusters.iter().enumerate() {
            for &r in self.selection.representatives(c) {
                let rep_name = self.all_channels[r].clone();
                let rep_di = dense_idx[r];
                let cov = coverage_of(rep_di);
                if cov >= policy.min_rep_coverage {
                    events.push(DegradationEvent {
                        cluster: c,
                        representative: rep_name,
                        coverage: cov,
                        action: FallbackAction::Healthy,
                    });
                    continue;
                }
                // First choice: the ranked backups attached at
                // selection time, best substitute first.
                let mut action = None;
                for &b in self.selection.backups(c) {
                    if coverage_of(dense_idx[b]) >= policy.min_rep_coverage {
                        channels[rep_di] = Channel::new(
                            rep_name.clone(),
                            dataset.channels()[dense_idx[b]].values().to_vec(),
                        )?;
                        action = Some(FallbackAction::Backup {
                            substitute: self.all_channels[b].clone(),
                        });
                        break;
                    }
                }
                let action = if let Some(a) = action {
                    a
                } else {
                    // Second choice: per-slot mean of whatever cluster
                    // members still report.
                    let member_di: Vec<usize> = members.iter().map(|&m| dense_idx[m]).collect();
                    let mut col: Vec<Option<f64>> = vec![None; n];
                    for (i, slot) in col.iter_mut().enumerate() {
                        let mut sum = 0.0;
                        let mut k = 0usize;
                        for &mi in &member_di {
                            if let Some(v) = dataset.channels()[mi].value(i) {
                                sum += v;
                                k += 1;
                            }
                        }
                        if k > 0 {
                            *slot = Some(sum / k as f64);
                        }
                    }
                    let col_cov =
                        mask_slots.iter().filter(|&&i| col[i].is_some()).count() as f64 / denom;
                    if col_cov >= policy.min_rep_coverage {
                        channels[rep_di] = Channel::new(rep_name.clone(), col)?;
                        FallbackAction::ClusterMean {
                            members: members.len(),
                        }
                    } else {
                        // Last resort: freeze the channel at a
                        // constant so the coupled model still rolls
                        // forward for the live clusters, and exclude
                        // this cluster from the pooled errors.
                        let present: Vec<f64> = col.iter().flatten().copied().collect();
                        let fill = if present.is_empty() {
                            let mut sum = 0.0;
                            let mut k = 0usize;
                            for &di in &dense_idx {
                                for v in dataset.channels()[di].values().iter().flatten() {
                                    sum += v;
                                    k += 1;
                                }
                            }
                            if k > 0 {
                                sum / k as f64
                            } else {
                                0.0
                            }
                        } else {
                            present.iter().sum::<f64>() / present.len() as f64
                        };
                        channels[rep_di] = Channel::new(rep_name.clone(), vec![Some(fill); n])?;
                        cluster_evaluable[c] = false;
                        FallbackAction::Unavailable
                    }
                };
                events.push(DegradationEvent {
                    cluster: c,
                    representative: rep_name,
                    coverage: cov,
                    action,
                });
            }
        }

        let degradation = DegradationReport::new(events);
        let substituted = Dataset::new(*dataset.grid(), channels)?;

        // Segments need only the model's own (substituted) channels —
        // dead cluster members must not veto the live clusters the
        // way the clean evaluation's dense-presence mask would.
        let segments = regressors::usable_segments(&substituted, self.model.spec(), mask)?;
        let spec_outputs = &self.model.spec().outputs;
        let mut rep_cols: Vec<Vec<usize>> = Vec::with_capacity(clusters.len());
        let mut member_idx: Vec<Vec<usize>> = Vec::with_capacity(clusters.len());
        for (c, members) in clusters.iter().enumerate() {
            let cols = self
                .selection
                .representatives(c)
                .iter()
                .map(|&r| {
                    let name = &self.all_channels[r];
                    spec_outputs.iter().position(|o| o == name).ok_or_else(|| {
                        CoreError::InvalidConfig {
                            reason: format!("representative {name:?} missing from model outputs"),
                        }
                    })
                })
                .collect::<Result<Vec<usize>>>()?;
            rep_cols.push(cols);
            member_idx.push(members.iter().map(|&m| dense_idx[m]).collect());
        }

        let mut errors = Vec::new();
        let mut segments_used = 0usize;
        for seg in segments {
            let Ok(pred) = predict_segment(&self.model, &substituted, seg, Some(horizon)) else {
                continue;
            };
            segments_used += 1;
            for (row, &grid_idx) in pred.indices.iter().enumerate() {
                for (c, cols) in rep_cols.iter().enumerate() {
                    if !cluster_evaluable[c] {
                        continue;
                    }
                    let predicted: f64 =
                        cols.iter().map(|&j| pred.predicted[(row, j)]).sum::<f64>()
                            / cols.len() as f64;
                    // Ground truth over members present at this slot
                    // in the *original* (faulty) dataset.
                    let mut sum = 0.0;
                    let mut k = 0usize;
                    for &mi in &member_idx[c] {
                        if let Some(v) = dataset.channels()[mi].value(grid_idx) {
                            sum += v;
                            k += 1;
                        }
                    }
                    if k == 0 {
                        continue;
                    }
                    errors.push((predicted - sum / k as f64).abs());
                }
            }
        }
        let report = if errors.is_empty() {
            None
        } else {
            Some(ClusterMeanModelReport {
                errors,
                segments_used,
                cluster_count: cluster_evaluable.iter().filter(|&&e| e).count(),
            })
        };
        Ok(DegradedEvaluation {
            degradation,
            report,
        })
    }
}

/// Pooled cluster-mean prediction errors of a reduced model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterMeanModelReport {
    errors: Vec<f64>,
    segments_used: usize,
    cluster_count: usize,
}

impl ClusterMeanModelReport {
    /// Pooled absolute errors (clusters × predicted samples).
    pub fn errors(&self) -> &[f64] {
        &self.errors
    }

    /// Number of segments that contributed predictions.
    pub fn segments_used(&self) -> usize {
        self.segments_used
    }

    /// Number of clusters evaluated.
    pub fn cluster_count(&self) -> usize {
        self.cluster_count
    }

    /// Percentile of the pooled errors (Fig. 11 uses the 99th).
    ///
    /// # Errors
    ///
    /// Propagates percentile failures.
    pub fn percentile(&self, p: f64) -> Result<f64> {
        stats::percentile(&self.errors, p).map_err(|e| CoreError::Sysid(e.into()))
    }

    /// ECDF of the pooled errors.
    ///
    /// # Errors
    ///
    /// Propagates construction failures.
    pub fn cdf(&self) -> Result<EmpiricalCdf> {
        EmpiricalCdf::new(&self.errors).map_err(|e| CoreError::Sysid(e.into()))
    }

    /// RMS of the pooled errors.
    ///
    /// # Errors
    ///
    /// Propagates RMS failures.
    pub fn rms(&self) -> Result<f64> {
        stats::rms(&self.errors).map_err(|e| CoreError::Sysid(e.into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SelectorKind, ThermalPipeline};
    use thermal_cluster::ClusterCount;
    use thermal_sysid::ModelOrder;
    use thermal_timeseries::{Channel, TimeGrid, Timestamp};

    fn synth_dataset() -> Dataset {
        let n = 300;
        let u: Vec<f64> = (0..n)
            .map(|k| 0.5 + 0.5 * (k as f64 * 0.11).sin())
            .collect();
        let mut channels = vec![Channel::from_values("u", u.clone()).unwrap()];
        for (i, (gain, base)) in [(1.0, 20.0), (1.05, 20.1), (-1.0, 22.0), (-0.95, 22.1)]
            .into_iter()
            .enumerate()
        {
            let mut t = vec![base];
            for k in 0..n - 1 {
                t.push(0.9 * t[k] + 0.1 * base + gain * 0.2 * u[k]);
            }
            channels.push(Channel::from_values(format!("s{i}"), t).unwrap());
        }
        let grid = TimeGrid::new(Timestamp::from_minutes(0), 5, n).unwrap();
        Dataset::new(grid, channels).unwrap()
    }

    fn fit_reduced(ds: &Dataset) -> ReducedModel {
        ThermalPipeline::builder()
            .cluster_count(ClusterCount::Fixed(2))
            .selector(SelectorKind::NearMean)
            .model_order(ModelOrder::First)
            .build()
            .unwrap()
            .fit(ds, &["s0", "s1", "s2", "s3"], &["u"], &Mask::all(ds.grid()))
            .unwrap()
    }

    #[test]
    fn reduced_model_tracks_cluster_means() {
        let ds = synth_dataset();
        let reduced = fit_reduced(&ds);
        let report = reduced
            .evaluate_cluster_means(&ds, &Mask::all(ds.grid()), 50)
            .unwrap();
        assert_eq!(report.cluster_count(), 2);
        assert!(report.segments_used() >= 1);
        // Representatives sit within 0.1 of their cluster mean by
        // construction, and the model is near-exact.
        assert!(
            report.percentile(99.0).unwrap() < 0.2,
            "99th pct {}",
            report.percentile(99.0).unwrap()
        );
        assert!(report.rms().unwrap() < 0.2);
        assert!(report.cdf().is_ok());
    }

    #[test]
    fn install_model_swaps_coefficients_but_guards_the_spec() {
        let ds = synth_dataset();
        let mut reduced = fit_reduced(&ds);
        let spec = reduced.model().spec().clone();
        let mut coef = reduced.model().coefficients().clone();
        coef[(0, 0)] += 0.01;
        let replacement = ThermalModel::new(spec.clone(), coef.clone()).unwrap();
        reduced.install_model(replacement).unwrap();
        assert_eq!(reduced.model().coefficients(), &coef);
        // A different spec (dropped input) must be refused.
        let narrow =
            thermal_sysid::ModelSpec::new(spec.outputs.clone(), vec![], spec.order).unwrap();
        let bad = ThermalModel::new(
            narrow.clone(),
            thermal_linalg::Matrix::zeros(spec.outputs.len(), narrow.regressor_width()),
        )
        .unwrap();
        assert!(matches!(
            reduced.install_model(bad),
            Err(CoreError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn zero_horizon_rejected() {
        let ds = synth_dataset();
        let reduced = fit_reduced(&ds);
        assert!(matches!(
            reduced.evaluate_cluster_means(&ds, &Mask::all(ds.grid()), 0),
            Err(CoreError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn empty_mask_reports_no_data() {
        let ds = synth_dataset();
        let reduced = fit_reduced(&ds);
        let none = Mask::none(ds.grid());
        assert!(reduced.evaluate_cluster_means(&ds, &none, 10).is_err());
    }

    /// Returns `ds` with the named channel's samples blanked on
    /// `[start, end)`.
    fn kill_channel(ds: &Dataset, name: &str, start: usize, end: usize) -> Dataset {
        let channels: Vec<Channel> = ds
            .channels()
            .iter()
            .map(|ch| {
                if ch.name() == name {
                    let values = ch
                        .values()
                        .iter()
                        .enumerate()
                        .map(|(i, v)| if (start..end).contains(&i) { None } else { *v })
                        .collect();
                    Channel::new(ch.name(), values).unwrap()
                } else {
                    ch.clone()
                }
            })
            .collect();
        Dataset::new(*ds.grid(), channels).unwrap()
    }

    #[test]
    fn degraded_evaluation_on_clean_data_matches_healthy_path() {
        let ds = synth_dataset();
        let reduced = fit_reduced(&ds);
        let out = reduced
            .evaluate_degraded(
                &ds,
                &Mask::all(ds.grid()),
                50,
                &DegradationPolicy::default(),
            )
            .unwrap();
        assert!(!out.degradation.is_degraded());
        let report = out.report.expect("clean data must be evaluable");
        // Same segments and error count as the clean evaluation (all
        // members are present at every slot, so truth agrees too).
        let clean = reduced
            .evaluate_cluster_means(&ds, &Mask::all(ds.grid()), 50)
            .unwrap();
        assert_eq!(report.errors().len(), clean.errors().len());
        assert!((report.rms().unwrap() - clean.rms().unwrap()).abs() < 1e-12);
    }

    #[test]
    fn killing_any_single_representative_yields_a_degradation_report() {
        let ds = synth_dataset();
        let reduced = fit_reduced(&ds);
        let n = ds.grid().len();
        for rep in reduced.selected_channels().to_vec() {
            let faulty = kill_channel(&ds, &rep, 0, n);
            let out = reduced
                .evaluate_degraded(
                    &faulty,
                    &Mask::all(ds.grid()),
                    50,
                    &DegradationPolicy::default(),
                )
                .unwrap();
            assert!(out.degradation.is_degraded(), "{rep} death went unnoticed");
            assert_eq!(out.degradation.degraded_count(), 1);
            let event = out
                .degradation
                .substitutions()
                .next()
                .expect("one substitution");
            assert_eq!(event.representative, rep);
            // The cluster has live mates, so a backup stands in and
            // evaluation still succeeds with bounded error.
            assert!(
                matches!(event.action, FallbackAction::Backup { .. }),
                "expected a backup for {rep}, got {:?}",
                event.action
            );
            let report = out.report.expect("backup keeps the cluster evaluable");
            assert!(report.rms().unwrap() < 1.0, "rms {}", report.rms().unwrap());
        }
    }

    #[test]
    fn mid_validation_death_falls_back_without_panicking() {
        let ds = synth_dataset();
        let reduced = fit_reduced(&ds);
        let n = ds.grid().len();
        for rep in reduced.selected_channels().to_vec() {
            // The channel dies at 10% of the trace and never returns.
            let faulty = kill_channel(&ds, &rep, n / 10, n);
            let out = reduced
                .evaluate_degraded(
                    &faulty,
                    &Mask::all(ds.grid()),
                    50,
                    &DegradationPolicy::default(),
                )
                .unwrap();
            assert!(out.degradation.is_degraded());
            assert!(out.report.is_some());
        }
    }

    #[test]
    fn whole_cluster_dark_is_excluded_not_fatal() {
        let ds = synth_dataset();
        let reduced = fit_reduced(&ds);
        let n = ds.grid().len();
        // Kill every member of the first representative's cluster.
        let rep = reduced.selected_channels()[0].clone();
        let all = reduced.all_channels().to_vec();
        let rep_pos = all.iter().position(|c| *c == rep).unwrap();
        let cluster = reduced
            .clustering()
            .clusters()
            .into_iter()
            .find(|m| m.contains(&rep_pos))
            .unwrap();
        let mut faulty = ds.clone();
        for &m in &cluster {
            faulty = kill_channel(&faulty, &all[m], 0, n);
        }
        let out = reduced
            .evaluate_degraded(
                &faulty,
                &Mask::all(ds.grid()),
                50,
                &DegradationPolicy::default(),
            )
            .unwrap();
        assert_eq!(out.degradation.unavailable_clusters().len(), 1);
        // The other cluster is still evaluated.
        let report = out.report.expect("live cluster still evaluable");
        assert_eq!(report.cluster_count(), 1);
    }

    #[test]
    fn total_blackout_reports_none_instead_of_erroring() {
        let ds = synth_dataset();
        let reduced = fit_reduced(&ds);
        let n = ds.grid().len();
        let mut faulty = ds.clone();
        for name in reduced.all_channels().to_vec() {
            faulty = kill_channel(&faulty, &name, 0, n);
        }
        let out = reduced
            .evaluate_degraded(
                &faulty,
                &Mask::all(ds.grid()),
                50,
                &DegradationPolicy::default(),
            )
            .unwrap();
        assert!(out.report.is_none(), "no ground truth anywhere");
        assert!(out.degradation.is_degraded());
        for e in out.degradation.events() {
            assert_eq!(e.action, FallbackAction::Unavailable);
        }
    }

    #[test]
    fn degraded_rejects_bad_inputs() {
        let ds = synth_dataset();
        let reduced = fit_reduced(&ds);
        let policy = DegradationPolicy::default();
        assert!(reduced
            .evaluate_degraded(&ds, &Mask::all(ds.grid()), 0, &policy)
            .is_err());
        let bad = DegradationPolicy {
            min_rep_coverage: 2.0,
        };
        assert!(reduced
            .evaluate_degraded(&ds, &Mask::all(ds.grid()), 10, &bad)
            .is_err());
    }

    #[test]
    fn accessors_expose_structure() {
        let ds = synth_dataset();
        let reduced = fit_reduced(&ds);
        assert_eq!(reduced.all_channels().len(), 4);
        assert_eq!(reduced.clustering().k(), 2);
        assert_eq!(reduced.selection().cluster_count(), 2);
        assert_eq!(reduced.selected_channels().len(), 2);
        assert_eq!(reduced.model().spec().outputs.len(), 2);
    }
}
