//! Fanger thermal-comfort model: Predicted Mean Vote (PMV) and
//! Predicted Percentage Dissatisfied (PPD), per ISO 7730 / ASHRAE 55.
//!
//! The paper motivates its sensor clustering with this model: a 2 °C
//! spatial spread inside the auditorium moves PMV by roughly 0.5 —
//! enough to shift seated occupants from "neutral" to "slightly
//! cool/warm" — so a single thermostat cannot represent comfort
//! across the room (Section V).
//!
//! # Example
//!
//! ```
//! use thermal_comfort::{pmv, ppd, Environment};
//!
//! # fn main() -> Result<(), thermal_comfort::ComfortError> {
//! // A seated audience in light clothing.
//! let cool_seat = Environment::auditorium(20.0);
//! let warm_seat = Environment::auditorium(22.0);
//! let delta = pmv(&warm_seat)? - pmv(&cool_seat)?;
//! assert!(delta > 0.3 && delta < 0.8, "2 degC approximately 0.5 PMV, got {delta}");
//! assert!(ppd(pmv(&cool_seat)?) >= 5.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use serde::{Deserialize, Serialize};

/// Errors produced by the comfort model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ComfortError {
    /// An environmental parameter was outside the model's validity
    /// range.
    OutOfRange {
        /// Name of the offending parameter.
        parameter: &'static str,
        /// Supplied value.
        value: f64,
    },
    /// The clothing surface-temperature iteration failed to converge.
    NoConvergence {
        /// Iterations performed.
        iterations: usize,
    },
}

impl fmt::Display for ComfortError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComfortError::OutOfRange { parameter, value } => {
                write!(f, "parameter {parameter} out of range: {value}")
            }
            ComfortError::NoConvergence { iterations } => {
                write!(
                    f,
                    "clothing temperature iteration did not converge after {iterations} iterations"
                )
            }
        }
    }
}

impl std::error::Error for ComfortError {}

/// Thermal environment and personal factors for a PMV evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Environment {
    /// Air temperature, °C.
    pub air_temp: f64,
    /// Mean radiant temperature, °C.
    pub mean_radiant_temp: f64,
    /// Relative air velocity, m/s.
    pub air_velocity: f64,
    /// Relative humidity, %.
    pub relative_humidity: f64,
    /// Metabolic rate, met (1 met = 58.15 W/m²).
    pub metabolic_rate: f64,
    /// Clothing insulation, clo (1 clo = 0.155 m²K/W).
    pub clothing: f64,
    /// External work, met (usually 0).
    pub external_work: f64,
}

impl Environment {
    /// A seated audience member in typical indoor clothing at the
    /// given air temperature (radiant = air temperature, still air,
    /// 40 % RH, 1.0 met, 1.0 clo — winter/spring campus dress).
    pub fn auditorium(air_temp: f64) -> Self {
        Environment {
            air_temp,
            mean_radiant_temp: air_temp,
            air_velocity: 0.1,
            relative_humidity: 40.0,
            metabolic_rate: 1.0,
            clothing: 1.0,
            external_work: 0.0,
        }
    }

    /// Validates the ISO 7730 applicability ranges.
    ///
    /// # Errors
    ///
    /// Returns [`ComfortError::OutOfRange`] naming the first offending
    /// parameter.
    pub fn validate(&self) -> Result<(), ComfortError> {
        let checks: [(&'static str, f64, f64, f64); 6] = [
            ("air_temp", self.air_temp, 10.0, 30.0),
            ("mean_radiant_temp", self.mean_radiant_temp, 10.0, 40.0),
            ("air_velocity", self.air_velocity, 0.0, 1.0),
            ("relative_humidity", self.relative_humidity, 0.0, 100.0),
            ("metabolic_rate", self.metabolic_rate, 0.8, 4.0),
            ("clothing", self.clothing, 0.0, 2.0),
        ];
        for (name, value, lo, hi) in checks {
            if !(lo..=hi).contains(&value) || !value.is_finite() {
                return Err(ComfortError::OutOfRange {
                    parameter: name,
                    value,
                });
            }
        }
        Ok(())
    }
}

/// Water vapour partial pressure, Pa, from air temperature and
/// relative humidity (the exponential saturation fit of the ISO 7730
/// reference implementation, which yields kPa).
fn vapour_pressure(air_temp: f64, rh: f64) -> f64 {
    rh / 100.0 * (16.6536 - 4030.183 / (air_temp + 235.0)).exp() * 1000.0
}

/// Computes the Predicted Mean Vote for an environment.
///
/// Follows the ISO 7730 computation: iterate the clothing surface
/// temperature to balance radiative + convective exchange, then sum
/// the body's heat-loss terms.
///
/// # Errors
///
/// * [`ComfortError::OutOfRange`] for parameters outside the model's
///   validity range,
/// * [`ComfortError::NoConvergence`] if the clothing-temperature
///   fixed point does not settle (not observed for valid inputs).
pub fn pmv(env: &Environment) -> Result<f64, ComfortError> {
    env.validate()?;
    let ta = env.air_temp;
    let tr = env.mean_radiant_temp;
    let vel = env.air_velocity.max(0.05);
    let pa = vapour_pressure(ta, env.relative_humidity);
    let m = env.metabolic_rate * 58.15; // W/m²
    let w = env.external_work * 58.15;
    let mw = m - w;
    let icl = env.clothing * 0.155; // m²K/W

    // Clothing area factor.
    let fcl = if icl <= 0.078 {
        1.0 + 1.29 * icl
    } else {
        1.05 + 0.645 * icl
    };

    // Iterate clothing surface temperature.
    let mut tcl = ta + (35.5 - ta) / (3.5 * icl + 0.1); // initial guess
    let mut hc = 12.1 * vel.sqrt();
    const MAX_ITERS: usize = 500;
    let mut converged = false;
    for _ in 0..MAX_ITERS {
        let hc_forced = 12.1 * vel.sqrt();
        let hc_natural = 2.38 * (tcl - ta).abs().powf(0.25);
        hc = hc_forced.max(hc_natural);
        let radiative = 3.96e-8 * fcl * ((tcl + 273.15).powi(4) - (tr + 273.15).powi(4));
        let convective = fcl * hc * (tcl - ta);
        let tcl_new = 35.7 - 0.028 * mw - icl * (radiative + convective);
        if (tcl_new - tcl).abs() < 1e-8 {
            tcl = tcl_new;
            converged = true;
            break;
        }
        // Damped update for stability.
        tcl = 0.5 * (tcl + tcl_new);
    }
    if !converged {
        return Err(ComfortError::NoConvergence {
            iterations: MAX_ITERS,
        });
    }

    // Heat-loss components, W/m².
    let skin_diffusion = 3.05e-3 * (5733.0 - 6.99 * mw - pa);
    let sweating = (0.42 * (mw - 58.15)).max(0.0);
    let latent_respiration = 1.7e-5 * m * (5867.0 - pa);
    let dry_respiration = 0.0014 * m * (34.0 - ta);
    let radiative = 3.96e-8 * fcl * ((tcl + 273.15).powi(4) - (tr + 273.15).powi(4));
    let convective = fcl * hc * (tcl - ta);

    let thermal_load = mw
        - skin_diffusion
        - sweating
        - latent_respiration
        - dry_respiration
        - radiative
        - convective;
    let sensitivity = 0.303 * (-0.036 * m).exp() + 0.028;
    Ok(sensitivity * thermal_load)
}

/// Predicted Percentage Dissatisfied, %, from a PMV value
/// (`PPD = 100 − 95·exp(−0.03353·PMV⁴ − 0.2179·PMV²)`).
pub fn ppd(pmv_value: f64) -> f64 {
    100.0 - 95.0 * (-0.033_53 * pmv_value.powi(4) - 0.217_9 * pmv_value.powi(2)).exp()
}

/// Seven-point ASHRAE thermal-sensation scale bucket for a PMV value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Sensation {
    /// PMV ≤ −2.5.
    Cold,
    /// −2.5 < PMV ≤ −1.5.
    Cool,
    /// −1.5 < PMV ≤ −0.5.
    SlightlyCool,
    /// −0.5 < PMV < 0.5.
    Neutral,
    /// 0.5 ≤ PMV < 1.5.
    SlightlyWarm,
    /// 1.5 ≤ PMV < 2.5.
    Warm,
    /// PMV ≥ 2.5.
    Hot,
}

impl Sensation {
    /// Buckets a PMV value onto the seven-point scale.
    pub fn from_pmv(pmv_value: f64) -> Self {
        match pmv_value {
            v if v <= -2.5 => Sensation::Cold,
            v if v <= -1.5 => Sensation::Cool,
            v if v <= -0.5 => Sensation::SlightlyCool,
            v if v < 0.5 => Sensation::Neutral,
            v if v < 1.5 => Sensation::SlightlyWarm,
            v if v < 2.5 => Sensation::Warm,
            _ => Sensation::Hot,
        }
    }

    /// `true` for the ASHRAE 55 comfort band (|PMV| < 0.5).
    pub fn is_comfortable(self) -> bool {
        self == Sensation::Neutral
    }
}

impl fmt::Display for Sensation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Sensation::Cold => "cold",
            Sensation::Cool => "cool",
            Sensation::SlightlyCool => "slightly cool",
            Sensation::Neutral => "neutral",
            Sensation::SlightlyWarm => "slightly warm",
            Sensation::Warm => "warm",
            Sensation::Hot => "hot",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// ISO 7730 Table D.1 validation case: ta = tr = 22 °C, v = 0.1
    /// m/s, RH 60 %, 1.2 met, 0.5 clo → PMV ≈ −0.75 (±0.1 per the
    /// standard's tolerance).
    #[test]
    fn iso_reference_case_1() {
        let env = Environment {
            air_temp: 22.0,
            mean_radiant_temp: 22.0,
            air_velocity: 0.1,
            relative_humidity: 60.0,
            metabolic_rate: 1.2,
            clothing: 0.5,
            external_work: 0.0,
        };
        let v = pmv(&env).unwrap();
        assert!((v - (-0.75)).abs() < 0.15, "PMV {v} vs ISO -0.75");
    }

    /// ISO 7730 Table D.1: ta = tr = 27 °C, same person → PMV ≈ +0.77.
    #[test]
    fn iso_reference_case_2() {
        let env = Environment {
            air_temp: 27.0,
            mean_radiant_temp: 27.0,
            air_velocity: 0.1,
            relative_humidity: 60.0,
            metabolic_rate: 1.2,
            clothing: 0.5,
            external_work: 0.0,
        };
        let v = pmv(&env).unwrap();
        assert!((v - 0.77).abs() < 0.15, "PMV {v} vs ISO +0.77");
    }

    /// Faster air movement cools: PMV must fall as velocity rises.
    #[test]
    fn air_motion_lowers_pmv() {
        let base = Environment {
            air_temp: 23.5,
            mean_radiant_temp: 23.5,
            air_velocity: 0.1,
            relative_humidity: 60.0,
            metabolic_rate: 1.2,
            clothing: 0.5,
            external_work: 0.0,
        };
        let still = pmv(&base).unwrap();
        let breezy = pmv(&Environment {
            air_velocity: 0.4,
            ..base
        })
        .unwrap();
        assert!(
            breezy < still - 0.1,
            "breeze should cool: {still} -> {breezy}"
        );
    }

    #[test]
    fn pmv_increases_with_temperature() {
        let mut last = f64::NEG_INFINITY;
        for t in [18.0, 20.0, 22.0, 24.0, 26.0] {
            let v = pmv(&Environment::auditorium(t)).unwrap();
            assert!(v > last, "PMV must increase with temperature");
            last = v;
        }
    }

    #[test]
    fn papers_two_degree_claim() {
        // The claim of Section V: a 2 °C difference is ~0.5 PMV for
        // the auditorium's audience.
        let a = pmv(&Environment::auditorium(20.0)).unwrap();
        let b = pmv(&Environment::auditorium(22.0)).unwrap();
        let delta = b - a;
        assert!(
            (0.3..0.8).contains(&delta),
            "2 degC should be around 0.5 PMV, got {delta}"
        );
    }

    #[test]
    fn ppd_shape() {
        assert!((ppd(0.0) - 5.0).abs() < 1e-9, "PPD minimum is 5 %");
        assert!(ppd(1.0) > 20.0 && ppd(1.0) < 35.0);
        assert!((ppd(2.0) - ppd(-2.0)).abs() < 1e-9, "PPD is symmetric");
        assert!(ppd(3.0) > 90.0);
    }

    #[test]
    fn sensation_buckets() {
        assert_eq!(Sensation::from_pmv(-3.0), Sensation::Cold);
        assert_eq!(Sensation::from_pmv(-2.0), Sensation::Cool);
        assert_eq!(Sensation::from_pmv(-1.0), Sensation::SlightlyCool);
        assert_eq!(Sensation::from_pmv(0.0), Sensation::Neutral);
        assert_eq!(Sensation::from_pmv(1.0), Sensation::SlightlyWarm);
        assert_eq!(Sensation::from_pmv(2.0), Sensation::Warm);
        assert_eq!(Sensation::from_pmv(3.0), Sensation::Hot);
        assert!(Sensation::Neutral.is_comfortable());
        assert!(!Sensation::SlightlyWarm.is_comfortable());
        assert_eq!(Sensation::SlightlyCool.to_string(), "slightly cool");
    }

    #[test]
    fn validation_rejects_out_of_range() {
        let mut env = Environment::auditorium(21.0);
        env.air_temp = 50.0;
        assert!(matches!(
            pmv(&env),
            Err(ComfortError::OutOfRange {
                parameter: "air_temp",
                ..
            })
        ));
        let mut env = Environment::auditorium(21.0);
        env.metabolic_rate = 0.1;
        assert!(pmv(&env).is_err());
        let mut env = Environment::auditorium(21.0);
        env.relative_humidity = f64::NAN;
        assert!(pmv(&env).is_err());
        let mut env = Environment::auditorium(21.0);
        env.clothing = 5.0;
        assert!(pmv(&env).is_err());
    }

    #[test]
    fn still_air_is_floored() {
        // Zero velocity must not produce NaN (hc uses sqrt(v)).
        let mut env = Environment::auditorium(21.0);
        env.air_velocity = 0.0;
        assert!(pmv(&env).unwrap().is_finite());
    }

    #[test]
    fn error_display() {
        let e = ComfortError::OutOfRange {
            parameter: "air_temp",
            value: 99.0,
        };
        assert!(e.to_string().contains("air_temp"));
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<ComfortError>();
    }
}
