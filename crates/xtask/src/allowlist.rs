//! Parser and matcher for `xtask/lint-allow.toml`, the checked-in
//! allowlist of justified exceptions to the custom lint rules.
//!
//! The file is restricted TOML parsed with a dependency-free reader:
//! `[[allow]]` tables with string keys `path`, `pattern`, `rule`
//! (optional), `reason`, and integer `count` (optional, default 1).

use std::cell::Cell;
use std::fmt;

/// Maximum number of allowlist entries the gate tolerates; beyond
/// this the allowlist itself is a lint violation (the ISSUE budget).
pub const MAX_ENTRIES: usize = 10;

/// One justified exception.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Workspace-relative file the exception applies to.
    pub path: String,
    /// Substring that must occur on the allowed line.
    pub pattern: String,
    /// Rule the exception applies to (`None` = any rule).
    pub rule: Option<String>,
    /// One-line justification (required, non-empty).
    pub reason: String,
    /// Maximum number of occurrences covered.
    pub count: usize,
    /// 1-based line of the entry's `[[allow]]` header, for
    /// duplicate-entry diagnostics.
    pub start_line: usize,
    /// Occurrences consumed so far in this run.
    used: Cell<usize>,
}

impl AllowEntry {
    /// Whether this entry covers a violation at `path` on a line
    /// containing `line`, for rule `rule`; consumes one use.
    pub fn covers(&self, path: &str, line: &str, rule: &str) -> bool {
        if self.path != path || !line.contains(&self.pattern) {
            return false;
        }
        if let Some(r) = &self.rule {
            if r != rule {
                return false;
            }
        }
        if self.used.get() >= self.count {
            return false;
        }
        self.used.set(self.used.get() + 1);
        true
    }

    /// Whether the entry matched anything during the run.
    pub fn was_used(&self) -> bool {
        self.used.get() > 0
    }
}

/// The parsed allowlist.
#[derive(Debug, Default)]
pub struct Allowlist {
    /// All entries in file order.
    pub entries: Vec<AllowEntry>,
}

/// Error produced when the allowlist file is malformed.
#[derive(Debug)]
pub struct AllowlistError {
    /// 1-based line number of the offending line (0 = whole file).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for AllowlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint-allow.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for AllowlistError {}

fn unquote(raw: &str, line_no: usize) -> Result<String, AllowlistError> {
    let raw = raw.trim();
    if raw.len() >= 2 && raw.starts_with('"') && raw.ends_with('"') {
        Ok(raw[1..raw.len() - 1]
            .replace("\\\"", "\"")
            .replace("\\\\", "\\"))
    } else {
        Err(AllowlistError {
            line: line_no,
            message: format!("expected a double-quoted string, got `{raw}`"),
        })
    }
}

impl Allowlist {
    /// Parses the restricted-TOML allowlist format.
    pub fn parse(text: &str) -> Result<Allowlist, AllowlistError> {
        struct Partial {
            path: Option<String>,
            pattern: Option<String>,
            rule: Option<String>,
            reason: Option<String>,
            count: usize,
            start_line: usize,
        }
        let mut entries = Vec::new();
        let mut current: Option<Partial> = None;
        let finish = |p: Partial, entries: &mut Vec<AllowEntry>| -> Result<(), AllowlistError> {
            let missing = |key: &str| AllowlistError {
                line: p.start_line,
                message: format!("entry is missing required key `{key}`"),
            };
            let entry = AllowEntry {
                path: p.path.clone().ok_or_else(|| missing("path"))?,
                pattern: p.pattern.clone().ok_or_else(|| missing("pattern"))?,
                rule: p.rule.clone(),
                reason: p.reason.clone().ok_or_else(|| missing("reason"))?,
                count: p.count,
                start_line: p.start_line,
                used: Cell::new(0),
            };
            if entry.reason.trim().is_empty() {
                return Err(AllowlistError {
                    line: p.start_line,
                    message: "`reason` must be a non-empty justification".to_owned(),
                });
            }
            // Dedupe: two entries covering the same (path, pattern,
            // rule) widen the budget silently — that is itself a
            // violation, reported at the second entry.
            if let Some(dup) = entries.iter().find(|e: &&AllowEntry| {
                e.path == entry.path && e.pattern == entry.pattern && e.rule == entry.rule
            }) {
                return Err(AllowlistError {
                    line: p.start_line,
                    message: format!(
                        "duplicate of the entry at line {} (path = \"{}\", pattern = \"{}\"); merge them and adjust `count`",
                        dup.start_line, dup.path, dup.pattern
                    ),
                });
            }
            entries.push(entry);
            Ok(())
        };
        for (i, raw_line) in text.lines().enumerate() {
            let line_no = i + 1;
            let line = raw_line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[allow]]" {
                if let Some(p) = current.take() {
                    finish(p, &mut entries)?;
                }
                current = Some(Partial {
                    path: None,
                    pattern: None,
                    rule: None,
                    reason: None,
                    count: 1,
                    start_line: line_no,
                });
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(AllowlistError {
                    line: line_no,
                    message: format!("unrecognized line `{line}`"),
                });
            };
            let Some(p) = current.as_mut() else {
                return Err(AllowlistError {
                    line: line_no,
                    message: "key outside an [[allow]] table".to_owned(),
                });
            };
            match key.trim() {
                "path" => p.path = Some(unquote(value, line_no)?),
                "pattern" => p.pattern = Some(unquote(value, line_no)?),
                "rule" => p.rule = Some(unquote(value, line_no)?),
                "reason" => p.reason = Some(unquote(value, line_no)?),
                "count" => {
                    p.count = value.trim().parse().map_err(|_| AllowlistError {
                        line: line_no,
                        message: format!("`count` must be an integer, got `{}`", value.trim()),
                    })?;
                }
                other => {
                    return Err(AllowlistError {
                        line: line_no,
                        message: format!("unknown key `{other}`"),
                    });
                }
            }
        }
        if let Some(p) = current.take() {
            finish(p, &mut entries)?;
        }
        if entries.len() > MAX_ENTRIES {
            return Err(AllowlistError {
                line: 0,
                message: format!(
                    "allowlist has {} entries; the budget is {MAX_ENTRIES}",
                    entries.len()
                ),
            });
        }
        Ok(Allowlist { entries })
    }

    /// Whether any entry covers the given violation (consumes a use).
    pub fn covers(&self, path: &str, line: &str, rule: &str) -> bool {
        self.entries.iter().any(|e| e.covers(path, line, rule))
    }

    /// Entries that never matched during the run (stale exceptions).
    pub fn unused(&self) -> Vec<&AllowEntry> {
        self.entries.iter().filter(|e| !e.was_used()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_defaults() {
        let list = Allowlist::parse(
            r#"
# comment
[[allow]]
path = "crates/linalg/src/stats.rs"
pattern = "floor() as usize"
reason = "rank is clamped to [0, n-1] two lines above"
count = 2

[[allow]]
path = "crates/core/src/pipeline.rs"
pattern = ".unwrap()"
rule = "forbidden-call"
reason = "guarded by is_some() on the previous line"
"#,
        )
        .unwrap();
        assert_eq!(list.entries.len(), 2);
        assert_eq!(list.entries[0].count, 2);
        assert_eq!(list.entries[1].count, 1);
        assert_eq!(list.entries[1].rule.as_deref(), Some("forbidden-call"));
    }

    #[test]
    fn rejects_missing_reason() {
        let err = Allowlist::parse("[[allow]]\npath = \"a\"\npattern = \"b\"\n").unwrap_err();
        assert!(err.message.contains("reason"));
    }

    #[test]
    fn rejects_over_budget() {
        let mut text = String::new();
        for i in 0..=MAX_ENTRIES {
            text.push_str(&format!(
                "[[allow]]\npath = \"p{i}\"\npattern = \"x\"\nreason = \"r\"\n"
            ));
        }
        let err = Allowlist::parse(&text).unwrap_err();
        assert!(err.message.contains("budget"));
    }

    #[test]
    fn rejects_duplicate_entries_with_line_numbers() {
        let err = Allowlist::parse(
            "[[allow]]\npath = \"a.rs\"\npattern = \"x\"\nreason = \"r\"\n\n\
             [[allow]]\npath = \"a.rs\"\npattern = \"x\"\nreason = \"other words\"\n",
        )
        .unwrap_err();
        assert_eq!(err.line, 6, "error points at the second entry");
        assert!(err.message.contains("duplicate of the entry at line 1"));
        // Same pattern under a different rule is a distinct entry.
        let ok = Allowlist::parse(
            "[[allow]]\npath = \"a.rs\"\npattern = \"x\"\nrule = \"forbidden-call\"\nreason = \"r\"\n\n\
             [[allow]]\npath = \"a.rs\"\npattern = \"x\"\nrule = \"hot-path-index\"\nreason = \"r\"\n",
        );
        assert!(ok.is_ok());
    }

    #[test]
    fn coverage_consumes_budget() {
        let list = Allowlist::parse(
            "[[allow]]\npath = \"f.rs\"\npattern = \"unwrap\"\nreason = \"r\"\ncount = 1\n",
        )
        .unwrap();
        assert!(list.covers("f.rs", "x.unwrap()", "forbidden-call"));
        assert!(!list.covers("f.rs", "x.unwrap()", "forbidden-call"));
        assert!(list.unused().is_empty());
    }
}
