//! Workspace automation library backing the `cargo xtask` commands.
//!
//! The checker lives in a library crate (rather than inline in the
//! binary) so the self-tests can exercise every rule against
//! synthetic sources and a seeded on-disk fixture — the acceptance
//! gate requires `cargo xtask lint` to fail on a seeded violation.

pub mod allowlist;
pub mod baseline;
pub mod bench;
pub mod chaos;
pub mod checks;
pub mod json;
pub mod lexer;
pub mod model;
pub mod soak;
