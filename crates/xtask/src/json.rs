//! Dependency-free minimal JSON for the lint gate.
//!
//! The container is offline and the vendored dependency set has no
//! `serde_json`, so the baseline reader and the diagnostics writer
//! are hand-rolled. The subset is exactly what the lint schemas need:
//! objects, arrays, strings with the standard escapes, non-negative
//! integers, booleans and `null`. Parse errors carry 1-based line
//! numbers so a hand-edited `xtask/lint-baseline.json` fails with a
//! pointable message.
//!
//! The writer side is canonical by construction — callers emit keys
//! in a fixed order and the escaper is deterministic — which is what
//! makes `cargo xtask lint --json` byte-identical across runs.

use std::fmt;

/// A parsed JSON value (integers only; the lint schemas carry no
/// floats).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer number.
    Num(i64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object, preserving key order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload as `usize`, when this is a non-negative
    /// number.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Value::Num(n) if *n >= 0 => usize::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The array payload, when this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse failure with a 1-based source line.
#[derive(Debug)]
pub struct JsonError {
    /// 1-based line of the offending byte.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    i: usize,
    line: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            line: self.line,
            message: message.into(),
        }
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.bytes.get(self.i).copied();
        if let Some(b) = b {
            self.i += 1;
            if b == b'\n' {
                self.line += 1;
            }
        }
        b
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.i).copied()
    }

    fn skip_ws(&mut self) {
        while self.peek().is_some_and(|b| b.is_ascii_whitespace()) {
            self.bump();
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), JsonError> {
        self.skip_ws();
        match self.bump() {
            Some(got) if got == b => Ok(()),
            Some(got) => Err(self.err(format!("expected `{}`, got `{}`", b as char, got as char))),
            None => Err(self.err(format!("expected `{}`, got end of input", b as char))),
        }
    }

    fn parse_value(&mut self) -> Result<Value, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_obj(),
            Some(b'[') => self.parse_arr(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_num(),
            Some(b) => Err(self.err(format!("unexpected byte `{}`", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn parse_num(&mut self) -> Result<Value, JsonError> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.bump();
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.bump();
        }
        if matches!(self.peek(), Some(b'.') | Some(b'e') | Some(b'E')) {
            return Err(self.err("floating-point numbers are not part of the lint schemas"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.i])
            .map_err(|_| self.err("invalid number bytes"))?;
        text.parse::<i64>()
            .map(Value::Num)
            .map_err(|_| self.err(format!("invalid integer `{text}`")))
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let mut code = 0_u32;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .and_then(|b| (b as char).to_digit(16))
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            code = code * 16 + d;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-assemble a UTF-8 sequence.
                    let len = match b {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let start = self.i - 1;
                    for _ in 1..len {
                        self.bump();
                    }
                    let end = self.i.min(self.bytes.len());
                    out.push_str(&String::from_utf8_lossy(&self.bytes[start..end]));
                }
            }
        }
    }

    fn parse_arr(&mut self) -> Result<Value, JsonError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.bump();
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b']') => return Ok(Value::Arr(items)),
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_obj(&mut self) -> Result<Value, JsonError> {
        self.expect_byte(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.bump();
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect_byte(b':')?;
            let value = self.parse_value()?;
            members.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b'}') => return Ok(Value::Obj(members)),
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }
}

/// Parses a complete JSON document; trailing garbage is an error.
pub fn parse(text: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        i: 0,
        line: 1,
    };
    let value = p.parse_value()?;
    p.skip_ws();
    if p.i != p.bytes.len() {
        return Err(p.err("trailing bytes after the JSON document"));
    }
    Ok(value)
}

/// Escapes a string for embedding in JSON output (no surrounding
/// quotes). Deterministic: the same input always yields the same
/// bytes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_baseline_shape() {
        let v = parse(
            r#"{
  "schema": "xtask-lint-baseline/1",
  "findings": [
    { "rule": "hot-path-index", "file": "a.rs", "line": 3, "column": 9, "snippet": "x[i]" }
  ]
}"#,
        )
        .unwrap();
        assert_eq!(
            v.get("schema").and_then(Value::as_str),
            Some("xtask-lint-baseline/1")
        );
        let findings = v.get("findings").and_then(Value::as_arr).unwrap();
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].get("line").and_then(Value::as_usize), Some(3));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse("{\n  \"a\": 1,\n  oops\n}").unwrap_err();
        assert_eq!(err.line, 3);
        let err = parse("{ \"a\": 1.5 }").unwrap_err();
        assert!(err.message.contains("floating-point"));
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let original = "quote \" backslash \\ newline \n tab \t ctrl \u{1} done";
        let doc = format!("{{\"s\": \"{}\"}}", escape(original));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("s").and_then(Value::as_str), Some(original));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("").is_err());
    }
}
