//! Chaos-soak harness driver — `cargo xtask soak`.
//!
//! Proves the streaming runtime's robustness contract end-to-end with
//! real processes replaying a full trace through corrupted ingest:
//!
//! 1. **Replay.** Run the `soak` workload (`thermal-bench`): a fitted
//!    reduced model served live from a CSV trace that is corrupted at
//!    several intensities, jumbled out of order, duplicated, and
//!    delivered by a flaky source — while the scripted outage kills
//!    the deployed representative mid-trace. The workload itself
//!    asserts zero panics (exit code), a bounded buffered depth, and
//!    a prediction for every cluster on every slot.
//! 2. **Determinism.** Run the workload three times — twice with
//!    `THERMAL_THREADS=1` and once with `THERMAL_THREADS=4` — and
//!    require the three soak reports to be **byte-identical**: the
//!    final health/prediction state may not depend on repetition or
//!    thread count.
//!
//! Nothing here measures wall-clock time, so the harness is
//! meaningful on a single-core CI runner. `--smoke` trims the sweep
//! (one simulated day, two intensities) for the in-`ci` pass; the
//! dedicated CI job runs the full sweep.
//!
//! `cargo xtask soak --recovery` drives the sibling `recovery`
//! workload instead: a deterministic mid-trace regime shift replayed
//! through the online identification loop, asserting the served model
//! heals itself (drift alarm → supervised refit → residual RMSE back
//! inside the tolerance band within the recovery budget) with the
//! same three-run byte-compare determinism contract.
//!
//! `cargo xtask soak --fleet` drives the `fleet_soak` workload
//! (`thermal-fleet`): a whole fleet of minted buildings served
//! concurrently with fault plans injected into a chosen subset,
//! asserting the **blast radius is exactly that subset** — every
//! untargeted building's report byte-identical to a fault-free
//! baseline, and all artifacts byte-identical across repeated runs
//! and thread counts. `--list` prints the scenario registry;
//! `--only <scenario>` picks one by name.

use std::fs;
use std::path::Path;
use std::process::Command;

/// The scenario registry behind `--list` / `--only <scenario>`: one
/// `(name, description)` row per soak harness this module can drive.
pub const SCENARIOS: &[(&str, &str)] = &[
    (
        "stream",
        "corrupted/flaky stream replay with a scripted outage (default)",
    ),
    (
        "recovery",
        "mid-trace regime shift healed by the online identification loop",
    ),
    (
        "fleet",
        "multi-building chaos soak asserting the bulkhead blast radius",
    ),
];

/// Fixed workload seed: the harness compares bytes, so every run must
/// agree on it.
const WORKLOAD_SEED: &str = "7";

/// Full-sweep parameters: three simulated days across four corruption
/// intensities (milli-units).
const FULL_DAYS: &str = "3";
const FULL_INTENSITIES: &str = "0,50,150,400";

/// Smoke parameters: one day, the clean and a heavy intensity.
const SMOKE_DAYS: &str = "1";
const SMOKE_INTENSITIES: &str = "0,150";

/// Recovery-scenario sweep: the full run gives the shift a full day
/// of pre-shift baseline and a full day to heal; smoke halves both.
const RECOVERY_FULL_DAYS: &str = "2";
const RECOVERY_SMOKE_DAYS: &str = "1";

/// Fleet-scenario sweep: the full run serves 16 minted buildings with
/// fault plans injected into three of them; smoke trims to 8
/// buildings / two targets and one simulated day.
const FLEET_FULL_BUILDINGS: u32 = 16;
const FLEET_FULL_TARGETS: &str = "2,5,11";
const FLEET_FULL_DAYS: &str = "2";
const FLEET_SMOKE_BUILDINGS: u32 = 8;
const FLEET_SMOKE_TARGETS: &str = "2,5";
const FLEET_SMOKE_DAYS: &str = "1";
const FLEET_INTENSITY: &str = "400";

/// Runs the full harness.
///
/// # Errors
///
/// Returns a description of the first failed invariant: a workload
/// run that exited non-zero (a panic or an in-process assertion), a
/// missing `soak: ok` marker, or a report that differs between runs
/// or thread counts.
pub fn run(root: &Path, smoke: bool) -> Result<(), String> {
    build_workload(root, "soak")?;
    let bin = root
        .join("target")
        .join("release")
        .join(format!("soak{}", std::env::consts::EXE_SUFFIX));
    let base = root.join("target").join("soak");
    let (days, intensities) = if smoke {
        (SMOKE_DAYS, SMOKE_INTENSITIES)
    } else {
        (FULL_DAYS, FULL_INTENSITIES)
    };

    // One workload run per determinism axis: repetition (t1 vs
    // t1-repeat) and thread count (t1 vs t4).
    let runs: &[(&str, &str)] = &[("t1", "1"), ("t1-repeat", "1"), ("t4", "4")];
    let mut reports: Vec<(String, Vec<u8>)> = Vec::new();
    for &(label, threads) in runs {
        let report = base.join(format!("report-{label}.json"));
        remove_stale(&report)?;
        eprintln!(
            "xtask soak: run `{label}` (THERMAL_THREADS={threads}, days={days}, \
             intensities={intensities})"
        );
        let stdout = run_workload(&bin, &report, threads, days, intensities)?;
        if !stdout.lines().any(|l| l.trim() == "soak: ok") {
            return Err(format!(
                "run `{label}` exited cleanly but never printed `soak: ok`:\n{stdout}"
            ));
        }
        if let Some(slots) = parse_marker(&stdout, "soak: slots = ") {
            eprintln!("xtask soak: run `{label}` replayed {slots} slot(s) per intensity");
        }
        let bytes = fs::read(&report)
            .map_err(|e| format!("run `{label}` left no report at {}: {e}", report.display()))?;
        if bytes.is_empty() {
            return Err(format!("run `{label}` wrote an empty report"));
        }
        reports.push((label.to_owned(), bytes));
    }

    let (ref_label, ref_bytes) = &reports[0];
    for (label, bytes) in &reports[1..] {
        if bytes != ref_bytes {
            return Err(format!(
                "soak report differs between run `{ref_label}` and run `{label}`: \
                 final health/prediction state is not deterministic"
            ));
        }
    }
    eprintln!(
        "xtask soak: {} byte-identical report(s) across repeated runs and thread counts",
        reports.len()
    );
    Ok(())
}

/// Runs the drift-recovery harness: three `recovery` workload runs
/// (repetition and thread-count axes), each of which must exit zero —
/// the workload itself asserts the drift alarm, the supervised refit
/// install, and the bounded-slot RMSE recovery — and all three
/// recovery reports must be byte-identical.
///
/// # Errors
///
/// Returns a description of the first failed invariant: a workload
/// run that exited non-zero (a panic or a violated self-healing
/// assertion), a missing `recovery: ok` marker, or a report that
/// differs between runs or thread counts.
pub fn run_recovery(root: &Path, smoke: bool) -> Result<(), String> {
    build_workload(root, "recovery")?;
    let bin = root
        .join("target")
        .join("release")
        .join(format!("recovery{}", std::env::consts::EXE_SUFFIX));
    let base = root.join("target").join("recovery");
    let days = if smoke {
        RECOVERY_SMOKE_DAYS
    } else {
        RECOVERY_FULL_DAYS
    };

    let runs: &[(&str, &str)] = &[("t1", "1"), ("t1-repeat", "1"), ("t4", "4")];
    let mut reports: Vec<(String, Vec<u8>)> = Vec::new();
    for &(label, threads) in runs {
        let report = base.join(format!("report-{label}.json"));
        remove_stale(&report)?;
        eprintln!("xtask soak: recovery run `{label}` (THERMAL_THREADS={threads}, days={days})");
        let ckpt = base.join(format!("ckpt-{label}"));
        let output = Command::new(&bin)
            .arg(&report)
            .args(["--seed", WORKLOAD_SEED])
            .args(["--days", days])
            .arg("--ckpt")
            .arg(&ckpt)
            .env("THERMAL_THREADS", threads)
            .output()
            .map_err(|e| format!("could not start {}: {e}", bin.display()))?;
        if !output.status.success() {
            return Err(format!(
                "recovery run `{label}` (THERMAL_THREADS={threads}) exited with {:?}, \
                 expected success\nstderr:\n{}",
                output.status.code(),
                String::from_utf8_lossy(&output.stderr)
            ));
        }
        let stdout = String::from_utf8_lossy(&output.stdout).into_owned();
        if !stdout.lines().any(|l| l.trim() == "recovery: ok") {
            return Err(format!(
                "recovery run `{label}` exited cleanly but never printed `recovery: ok`:\n{stdout}"
            ));
        }
        if let Some(slot) = parse_marker(&stdout, "recovery: shift_slot = ") {
            eprintln!("xtask soak: recovery run `{label}` shifted regimes at slot {slot}");
        }
        let bytes = fs::read(&report).map_err(|e| {
            format!(
                "recovery run `{label}` left no report at {}: {e}",
                report.display()
            )
        })?;
        if bytes.is_empty() {
            return Err(format!("recovery run `{label}` wrote an empty report"));
        }
        reports.push((label.to_owned(), bytes));
    }

    let (ref_label, ref_bytes) = &reports[0];
    for (label, bytes) in &reports[1..] {
        if bytes != ref_bytes {
            return Err(format!(
                "recovery report differs between run `{ref_label}` and run `{label}`: \
                 the self-healing trajectory is not deterministic"
            ));
        }
    }
    eprintln!(
        "xtask soak: {} byte-identical recovery report(s) across repeated runs and thread counts",
        reports.len()
    );
    Ok(())
}

/// Runs the fleet chaos-soak harness: four `fleet_soak` workload runs
/// — a fault-free baseline plus a faulted run repeated across the
/// repetition and thread-count axes — and asserts the **blast-radius
/// guarantee** byte-for-byte:
///
/// 1. Every faulted run exits zero and reports exactly the targeted
///    buildings as having left `Healthy` (the workload also asserts
///    this in-process; the harness re-checks the marker).
/// 2. Every *untargeted* building's report in the faulted run is
///    byte-identical to the same building's report in the fault-free
///    baseline: fault injection in the targets perturbed nothing
///    else, not even a float's last bit.
/// 3. All faulted-run artifacts (per-building reports, quarantine
///    event log, fleet summary) are byte-identical across repeated
///    runs and `THERMAL_THREADS=1` vs `4`.
///
/// # Errors
///
/// Returns a description of the first failed invariant: a workload
/// run that exited non-zero, a missing `fleet: ok` marker, a
/// quarantine set differing from the target set, or any byte
/// mismatch above.
pub fn run_fleet(root: &Path, smoke: bool) -> Result<(), String> {
    build_package_workload(root, "thermal-fleet", "fleet_soak")?;
    let bin = root
        .join("target")
        .join("release")
        .join(format!("fleet_soak{}", std::env::consts::EXE_SUFFIX));
    let base = root.join("target").join("fleet-soak");
    let (buildings, targets, days) = if smoke {
        (FLEET_SMOKE_BUILDINGS, FLEET_SMOKE_TARGETS, FLEET_SMOKE_DAYS)
    } else {
        (FLEET_FULL_BUILDINGS, FLEET_FULL_TARGETS, FLEET_FULL_DAYS)
    };

    // The fault-free baseline, then the faulted run across the
    // repetition and thread-count determinism axes.
    let runs: &[(&str, &str, &str)] = &[
        ("clean", "none", "1"),
        ("t1", targets, "1"),
        ("t1-repeat", targets, "1"),
        ("t4", targets, "4"),
    ];
    for &(label, run_targets, threads) in runs {
        let outdir = base.join(label);
        remove_stale_dir(&outdir)?;
        eprintln!(
            "xtask soak: fleet run `{label}` (THERMAL_THREADS={threads}, \
             buildings={buildings}, days={days}, targets={run_targets})"
        );
        let output = Command::new(&bin)
            .arg(&outdir)
            .args(["--seed", WORKLOAD_SEED])
            .args(["--buildings", &buildings.to_string()])
            .args(["--days", days])
            .args(["--targets", run_targets])
            .args(["--intensity", FLEET_INTENSITY])
            .env("THERMAL_THREADS", threads)
            .output()
            .map_err(|e| format!("could not start {}: {e}", bin.display()))?;
        if !output.status.success() {
            return Err(format!(
                "fleet run `{label}` (THERMAL_THREADS={threads}) exited with {:?}, \
                 expected success\nstderr:\n{}",
                output.status.code(),
                String::from_utf8_lossy(&output.stderr)
            ));
        }
        let stdout = String::from_utf8_lossy(&output.stdout).into_owned();
        if !stdout.lines().any(|l| l.trim() == "fleet: ok") {
            return Err(format!(
                "fleet run `{label}` exited cleanly but never printed `fleet: ok`:\n{stdout}"
            ));
        }
        let quarantined = parse_marker(&stdout, "fleet: quarantined = ")
            .ok_or_else(|| format!("fleet run `{label}` never printed its quarantine set"))?;
        let expected = if run_targets == "none" {
            "none".to_owned()
        } else {
            run_targets.to_owned()
        };
        if quarantined != expected {
            return Err(format!(
                "fleet run `{label}`: quarantine set `{quarantined}` differs from the \
                 fault-target set `{expected}` — the blast radius is wrong"
            ));
        }
    }

    // Invariant 2: untargeted buildings are byte-identical between
    // the fault-free baseline and the faulted run.
    let target_ids: Vec<u32> = targets
        .split(',')
        .filter_map(|p| p.trim().parse().ok())
        .collect();
    let mut untouched = 0_u32;
    for id in 0..buildings {
        if target_ids.contains(&id) {
            continue;
        }
        let name = format!("building-{id:03}.json");
        compare_files(
            &base.join("clean").join(&name),
            &base.join("t1").join(&name),
        )
        .map_err(|e| format!("blast radius violated for untargeted building {id}: {e}"))?;
        untouched += 1;
    }
    eprintln!(
        "xtask soak: {untouched} untargeted building report(s) byte-identical to the \
         fault-free baseline"
    );

    // Invariant 3: every faulted-run artifact is identical across
    // repeated runs and thread counts.
    let mut artifacts: Vec<String> = (0..buildings)
        .map(|id| format!("building-{id:03}.json"))
        .collect();
    artifacts.push("quarantine-log.json".to_owned());
    artifacts.push("fleet-report.json".to_owned());
    for name in &artifacts {
        for other in ["t1-repeat", "t4"] {
            compare_files(&base.join("t1").join(name), &base.join(other).join(name))
                .map_err(|e| format!("fleet artifact differs between `t1` and `{other}`: {e}"))?;
        }
    }
    eprintln!(
        "xtask soak: {} fleet artifact(s) byte-identical across repeated runs and \
         thread counts",
        artifacts.len()
    );
    Ok(())
}

/// Builds one workload binary, in release mode.
fn build_workload(root: &Path, bin: &str) -> Result<(), String> {
    build_package_workload(root, "thermal-bench", bin)
}

/// Builds one workload binary from `package`, in release mode.
fn build_package_workload(root: &Path, package: &str, bin: &str) -> Result<(), String> {
    eprintln!("xtask soak: building {bin} workload (release)");
    let status = Command::new(env!("CARGO"))
        .args([
            "build",
            "--release",
            "--offline",
            "-p",
            package,
            "--bin",
            bin,
        ])
        .current_dir(root)
        .status()
        .map_err(|e| format!("could not start cargo build: {e}"))?;
    if !status.success() {
        return Err(format!("{bin} workload build failed with {status}"));
    }
    Ok(())
}

/// Runs the workload once; requires exit code 0 (anything else is a
/// panic, abort, or violated in-process invariant). Returns stdout.
fn run_workload(
    bin: &Path,
    report: &Path,
    threads: &str,
    days: &str,
    intensities: &str,
) -> Result<String, String> {
    let output = Command::new(bin)
        .arg(report)
        .args(["--seed", WORKLOAD_SEED])
        .args(["--days", days])
        .args(["--intensities", intensities])
        .env("THERMAL_THREADS", threads)
        .output()
        .map_err(|e| format!("could not start {}: {e}", bin.display()))?;
    if !output.status.success() {
        return Err(format!(
            "workload (THERMAL_THREADS={threads}) exited with {:?}, expected success\n\
             stderr:\n{}",
            output.status.code(),
            String::from_utf8_lossy(&output.stderr)
        ));
    }
    Ok(String::from_utf8_lossy(&output.stdout).into_owned())
}

/// Extracts the value after `prefix` on the first matching stdout line.
fn parse_marker(stdout: &str, prefix: &str) -> Option<String> {
    stdout
        .lines()
        .find_map(|l| l.split(prefix).nth(1))
        .map(|v| v.trim().to_owned())
}

/// Requires two report files to exist and hold identical bytes.
fn compare_files(a: &Path, b: &Path) -> Result<(), String> {
    let bytes_a = fs::read(a).map_err(|e| format!("read {}: {e}", a.display()))?;
    let bytes_b = fs::read(b).map_err(|e| format!("read {}: {e}", b.display()))?;
    if bytes_a.is_empty() {
        return Err(format!("{} is empty", a.display()));
    }
    if bytes_a != bytes_b {
        return Err(format!(
            "{} and {} differ ({} vs {} bytes)",
            a.display(),
            b.display(),
            bytes_a.len(),
            bytes_b.len()
        ));
    }
    Ok(())
}

/// Deletes a stale output directory so a failed run cannot pass on
/// old bytes, and re-creates it empty.
fn remove_stale_dir(dir: &Path) -> Result<(), String> {
    match fs::remove_dir_all(dir) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(format!("remove stale {}: {e}", dir.display())),
    }
    fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))
}

/// Deletes a stale report so a failed run cannot pass on old bytes.
fn remove_stale(report: &Path) -> Result<(), String> {
    if let Some(parent) = report.parent() {
        fs::create_dir_all(parent).map_err(|e| format!("create {}: {e}", parent.display()))?;
    }
    match fs::remove_file(report) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(format!("remove stale {}: {e}", report.display())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marker_parsing_finds_values_and_tolerates_noise() {
        let out = "soak: slots = 288\nsoak: ok\n";
        assert_eq!(parse_marker(out, "soak: slots = ").as_deref(), Some("288"));
        assert_eq!(parse_marker(out, "soak: missing = "), None);
    }

    #[test]
    fn scenario_registry_is_unique_and_describes_every_entry() {
        let mut names: Vec<&str> = SCENARIOS.iter().map(|&(n, _)| n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), SCENARIOS.len());
        assert!(SCENARIOS
            .iter()
            .all(|&(n, d)| !n.is_empty() && !d.is_empty()));
        assert!(names.contains(&"stream"));
        assert!(names.contains(&"recovery"));
        assert!(names.contains(&"fleet"));
    }

    #[test]
    fn fleet_sweep_parameters_shrink_under_smoke() {
        const { assert!(FLEET_SMOKE_BUILDINGS < FLEET_FULL_BUILDINGS) }
        assert!(FLEET_SMOKE_TARGETS.split(',').count() < FLEET_FULL_TARGETS.split(',').count());
        // Every target id must exist in its fleet, or the workload's
        // "targeted building never left healthy" assertion is vacuous.
        for (targets, buildings) in [
            (FLEET_SMOKE_TARGETS, FLEET_SMOKE_BUILDINGS),
            (FLEET_FULL_TARGETS, FLEET_FULL_BUILDINGS),
        ] {
            for part in targets.split(',') {
                let id: u32 = part.parse().unwrap();
                assert!(id < buildings, "target {id} outside fleet of {buildings}");
            }
        }
    }

    #[test]
    fn sweep_parameters_differ_between_smoke_and_full() {
        // The smoke sweep must be a strict subset of the work (fewer
        // days, fewer intensities), or ci would not be faster.
        let smoke_days = SMOKE_DAYS.parse::<u32>().unwrap_or(u32::MAX);
        let full_days = FULL_DAYS.parse::<u32>().unwrap_or(0);
        assert!(smoke_days < full_days);
        assert!(SMOKE_INTENSITIES.split(',').count() < FULL_INTENSITIES.split(',').count());
    }
}
