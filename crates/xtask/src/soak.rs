//! Chaos-soak harness driver — `cargo xtask soak`.
//!
//! Proves the streaming runtime's robustness contract end-to-end with
//! real processes replaying a full trace through corrupted ingest:
//!
//! 1. **Replay.** Run the `soak` workload (`thermal-bench`): a fitted
//!    reduced model served live from a CSV trace that is corrupted at
//!    several intensities, jumbled out of order, duplicated, and
//!    delivered by a flaky source — while the scripted outage kills
//!    the deployed representative mid-trace. The workload itself
//!    asserts zero panics (exit code), a bounded buffered depth, and
//!    a prediction for every cluster on every slot.
//! 2. **Determinism.** Run the workload three times — twice with
//!    `THERMAL_THREADS=1` and once with `THERMAL_THREADS=4` — and
//!    require the three soak reports to be **byte-identical**: the
//!    final health/prediction state may not depend on repetition or
//!    thread count.
//!
//! Nothing here measures wall-clock time, so the harness is
//! meaningful on a single-core CI runner. `--smoke` trims the sweep
//! (one simulated day, two intensities) for the in-`ci` pass; the
//! dedicated CI job runs the full sweep.
//!
//! `cargo xtask soak --recovery` drives the sibling `recovery`
//! workload instead: a deterministic mid-trace regime shift replayed
//! through the online identification loop, asserting the served model
//! heals itself (drift alarm → supervised refit → residual RMSE back
//! inside the tolerance band within the recovery budget) with the
//! same three-run byte-compare determinism contract.

use std::fs;
use std::path::Path;
use std::process::Command;

/// Fixed workload seed: the harness compares bytes, so every run must
/// agree on it.
const WORKLOAD_SEED: &str = "7";

/// Full-sweep parameters: three simulated days across four corruption
/// intensities (milli-units).
const FULL_DAYS: &str = "3";
const FULL_INTENSITIES: &str = "0,50,150,400";

/// Smoke parameters: one day, the clean and a heavy intensity.
const SMOKE_DAYS: &str = "1";
const SMOKE_INTENSITIES: &str = "0,150";

/// Recovery-scenario sweep: the full run gives the shift a full day
/// of pre-shift baseline and a full day to heal; smoke halves both.
const RECOVERY_FULL_DAYS: &str = "2";
const RECOVERY_SMOKE_DAYS: &str = "1";

/// Runs the full harness.
///
/// # Errors
///
/// Returns a description of the first failed invariant: a workload
/// run that exited non-zero (a panic or an in-process assertion), a
/// missing `soak: ok` marker, or a report that differs between runs
/// or thread counts.
pub fn run(root: &Path, smoke: bool) -> Result<(), String> {
    build_workload(root, "soak")?;
    let bin = root
        .join("target")
        .join("release")
        .join(format!("soak{}", std::env::consts::EXE_SUFFIX));
    let base = root.join("target").join("soak");
    let (days, intensities) = if smoke {
        (SMOKE_DAYS, SMOKE_INTENSITIES)
    } else {
        (FULL_DAYS, FULL_INTENSITIES)
    };

    // One workload run per determinism axis: repetition (t1 vs
    // t1-repeat) and thread count (t1 vs t4).
    let runs: &[(&str, &str)] = &[("t1", "1"), ("t1-repeat", "1"), ("t4", "4")];
    let mut reports: Vec<(String, Vec<u8>)> = Vec::new();
    for &(label, threads) in runs {
        let report = base.join(format!("report-{label}.json"));
        remove_stale(&report)?;
        eprintln!(
            "xtask soak: run `{label}` (THERMAL_THREADS={threads}, days={days}, \
             intensities={intensities})"
        );
        let stdout = run_workload(&bin, &report, threads, days, intensities)?;
        if !stdout.lines().any(|l| l.trim() == "soak: ok") {
            return Err(format!(
                "run `{label}` exited cleanly but never printed `soak: ok`:\n{stdout}"
            ));
        }
        if let Some(slots) = parse_marker(&stdout, "soak: slots = ") {
            eprintln!("xtask soak: run `{label}` replayed {slots} slot(s) per intensity");
        }
        let bytes = fs::read(&report)
            .map_err(|e| format!("run `{label}` left no report at {}: {e}", report.display()))?;
        if bytes.is_empty() {
            return Err(format!("run `{label}` wrote an empty report"));
        }
        reports.push((label.to_owned(), bytes));
    }

    let (ref_label, ref_bytes) = &reports[0];
    for (label, bytes) in &reports[1..] {
        if bytes != ref_bytes {
            return Err(format!(
                "soak report differs between run `{ref_label}` and run `{label}`: \
                 final health/prediction state is not deterministic"
            ));
        }
    }
    eprintln!(
        "xtask soak: {} byte-identical report(s) across repeated runs and thread counts",
        reports.len()
    );
    Ok(())
}

/// Runs the drift-recovery harness: three `recovery` workload runs
/// (repetition and thread-count axes), each of which must exit zero —
/// the workload itself asserts the drift alarm, the supervised refit
/// install, and the bounded-slot RMSE recovery — and all three
/// recovery reports must be byte-identical.
///
/// # Errors
///
/// Returns a description of the first failed invariant: a workload
/// run that exited non-zero (a panic or a violated self-healing
/// assertion), a missing `recovery: ok` marker, or a report that
/// differs between runs or thread counts.
pub fn run_recovery(root: &Path, smoke: bool) -> Result<(), String> {
    build_workload(root, "recovery")?;
    let bin = root
        .join("target")
        .join("release")
        .join(format!("recovery{}", std::env::consts::EXE_SUFFIX));
    let base = root.join("target").join("recovery");
    let days = if smoke {
        RECOVERY_SMOKE_DAYS
    } else {
        RECOVERY_FULL_DAYS
    };

    let runs: &[(&str, &str)] = &[("t1", "1"), ("t1-repeat", "1"), ("t4", "4")];
    let mut reports: Vec<(String, Vec<u8>)> = Vec::new();
    for &(label, threads) in runs {
        let report = base.join(format!("report-{label}.json"));
        remove_stale(&report)?;
        eprintln!("xtask soak: recovery run `{label}` (THERMAL_THREADS={threads}, days={days})");
        let ckpt = base.join(format!("ckpt-{label}"));
        let output = Command::new(&bin)
            .arg(&report)
            .args(["--seed", WORKLOAD_SEED])
            .args(["--days", days])
            .arg("--ckpt")
            .arg(&ckpt)
            .env("THERMAL_THREADS", threads)
            .output()
            .map_err(|e| format!("could not start {}: {e}", bin.display()))?;
        if !output.status.success() {
            return Err(format!(
                "recovery run `{label}` (THERMAL_THREADS={threads}) exited with {:?}, \
                 expected success\nstderr:\n{}",
                output.status.code(),
                String::from_utf8_lossy(&output.stderr)
            ));
        }
        let stdout = String::from_utf8_lossy(&output.stdout).into_owned();
        if !stdout.lines().any(|l| l.trim() == "recovery: ok") {
            return Err(format!(
                "recovery run `{label}` exited cleanly but never printed `recovery: ok`:\n{stdout}"
            ));
        }
        if let Some(slot) = parse_marker(&stdout, "recovery: shift_slot = ") {
            eprintln!("xtask soak: recovery run `{label}` shifted regimes at slot {slot}");
        }
        let bytes = fs::read(&report).map_err(|e| {
            format!(
                "recovery run `{label}` left no report at {}: {e}",
                report.display()
            )
        })?;
        if bytes.is_empty() {
            return Err(format!("recovery run `{label}` wrote an empty report"));
        }
        reports.push((label.to_owned(), bytes));
    }

    let (ref_label, ref_bytes) = &reports[0];
    for (label, bytes) in &reports[1..] {
        if bytes != ref_bytes {
            return Err(format!(
                "recovery report differs between run `{ref_label}` and run `{label}`: \
                 the self-healing trajectory is not deterministic"
            ));
        }
    }
    eprintln!(
        "xtask soak: {} byte-identical recovery report(s) across repeated runs and thread counts",
        reports.len()
    );
    Ok(())
}

/// Builds one workload binary, in release mode.
fn build_workload(root: &Path, bin: &str) -> Result<(), String> {
    eprintln!("xtask soak: building {bin} workload (release)");
    let status = Command::new(env!("CARGO"))
        .args([
            "build",
            "--release",
            "--offline",
            "-p",
            "thermal-bench",
            "--bin",
            bin,
        ])
        .current_dir(root)
        .status()
        .map_err(|e| format!("could not start cargo build: {e}"))?;
    if !status.success() {
        return Err(format!("{bin} workload build failed with {status}"));
    }
    Ok(())
}

/// Runs the workload once; requires exit code 0 (anything else is a
/// panic, abort, or violated in-process invariant). Returns stdout.
fn run_workload(
    bin: &Path,
    report: &Path,
    threads: &str,
    days: &str,
    intensities: &str,
) -> Result<String, String> {
    let output = Command::new(bin)
        .arg(report)
        .args(["--seed", WORKLOAD_SEED])
        .args(["--days", days])
        .args(["--intensities", intensities])
        .env("THERMAL_THREADS", threads)
        .output()
        .map_err(|e| format!("could not start {}: {e}", bin.display()))?;
    if !output.status.success() {
        return Err(format!(
            "workload (THERMAL_THREADS={threads}) exited with {:?}, expected success\n\
             stderr:\n{}",
            output.status.code(),
            String::from_utf8_lossy(&output.stderr)
        ));
    }
    Ok(String::from_utf8_lossy(&output.stdout).into_owned())
}

/// Extracts the value after `prefix` on the first matching stdout line.
fn parse_marker(stdout: &str, prefix: &str) -> Option<String> {
    stdout
        .lines()
        .find_map(|l| l.split(prefix).nth(1))
        .map(|v| v.trim().to_owned())
}

/// Deletes a stale report so a failed run cannot pass on old bytes.
fn remove_stale(report: &Path) -> Result<(), String> {
    if let Some(parent) = report.parent() {
        fs::create_dir_all(parent).map_err(|e| format!("create {}: {e}", parent.display()))?;
    }
    match fs::remove_file(report) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(format!("remove stale {}: {e}", report.display())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marker_parsing_finds_values_and_tolerates_noise() {
        let out = "soak: slots = 288\nsoak: ok\n";
        assert_eq!(parse_marker(out, "soak: slots = ").as_deref(), Some("288"));
        assert_eq!(parse_marker(out, "soak: missing = "), None);
    }

    #[test]
    fn sweep_parameters_differ_between_smoke_and_full() {
        // The smoke sweep must be a strict subset of the work (fewer
        // days, fewer intensities), or ci would not be faster.
        let smoke_days = SMOKE_DAYS.parse::<u32>().unwrap_or(u32::MAX);
        let full_days = FULL_DAYS.parse::<u32>().unwrap_or(0);
        assert!(smoke_days < full_days);
        assert!(SMOKE_INTENSITIES.split(',').count() < FULL_INTENSITIES.split(',').count());
    }
}
