//! `cargo xtask` — the single entry point for workspace correctness
//! tooling. See `DESIGN.md` § static analysis and `README.md` for the
//! policy this enforces.
//!
//! Commands:
//!
//! - `cargo xtask lint [--json] [--report <p>] [--update-baseline]` —
//!   token-level static-analysis gate with a ratcheted baseline (see
//!   DESIGN.md § static analysis v2).
//! - `cargo xtask fmt` — `cargo fmt --all`.
//! - `cargo xtask ci` — fmt-check → clippy → lint → build → test →
//!   fault-matrix smoke → allocation-budget gate → determinism smoke
//!   → chaos smoke → soak smoke → quick bench + sweep smoke
//!   (informational).
//! - `cargo xtask bench [--label L] [--full] [--only B]` — curated
//!   criterion benches, written as machine-readable
//!   `BENCH_<label>.json`; `--compare <a> <b>` prints per-bench
//!   speedups between two reports (rejecting the retired `mean_ns`
//!   schema).
//! - `cargo xtask chaos [--stream|--fleet] [--smoke]` — kill-point
//!   crash/resume harness: crash the checkpointed workload at every
//!   durable write and require byte-identical recovery (see DESIGN.md
//!   § crash recovery). `--stream` and `--fleet` drive the
//!   snapshotting soak workloads instead and require the resumed final
//!   reports byte-identical to an uninterrupted baseline — including
//!   across `THERMAL_THREADS` settings and with torn or bit-flipped
//!   snapshots on disk (see DESIGN.md § restore-equivalence).
//! - `cargo xtask soak [--smoke] [--list] [--only <scenario>]` —
//!   chaos-soak harness with a scenario registry. `stream` (default)
//!   replays a full trace through corrupted, flaky, out-of-order
//!   ingest and requires a bitwise-deterministic soak report across
//!   repeated runs and thread counts (see DESIGN.md § streaming
//!   runtime). `recovery` (shorthand `--recovery`) runs the
//!   drift-recovery scenario: a mid-trace regime shift must be
//!   detected, refitted, and healed within a bounded number of slots
//!   (see DESIGN.md § online identification). `fleet` (shorthand
//!   `--fleet`) runs the multi-building blast-radius soak: faults
//!   injected into a chosen subset of a minted fleet must quarantine
//!   exactly that subset, byte-for-byte (see DESIGN.md § fleet
//!   serving).
//! - `cargo xtask miri` — Miri over the `linalg`/`timeseries` unit
//!   tests (skips with a notice when Miri is not installed).

use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

/// The curated hot-path benches `cargo xtask bench` runs, in report
/// order: the linalg kernels, the clustering stage, the
/// identification stage (batch and recursive), and the end-to-end
/// pipeline.
const CURATED_BENCHES: &[&str] = &[
    "bench_linalg",
    "bench_clustering",
    "bench_identification",
    "bench_rls",
    "bench_sweep",
    "bench_pipeline",
    "bench_stream",
    "bench_fleet",
];

/// Iteration count for quick (default) bench mode, exported to the
/// criterion shim via `THERMAL_BENCH_SAMPLES`.
const QUICK_BENCH_SAMPLES: &str = "3";

fn workspace_root() -> PathBuf {
    // crates/xtask/ -> crates/ -> workspace root.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map_or(manifest.clone(), Path::to_path_buf)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str).unwrap_or("help");
    match command {
        "lint" => lint(&args[1..]),
        "fmt" => run_steps(&[step("fmt", &["fmt", "--all"])]),
        "ci" => ci(),
        "bench" => bench(&args[1..]),
        "chaos" => chaos(&args[1..]),
        "soak" => soak(&args[1..]),
        "miri" => miri(),
        "help" | "--help" | "-h" => {
            print_help();
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("xtask: unknown command `{other}`\n");
            print_help();
            ExitCode::FAILURE
        }
    }
}

fn print_help() {
    eprintln!(
        "usage: cargo xtask <command>\n\n\
         commands:\n\
         \x20 lint [--root <dir>]  run the token-level static-analysis gate\n\
         \x20      [--json]        print the canonical JSON report to stdout\n\
         \x20      [--report <p>]  write the JSON report to <p> (atomic)\n\
         \x20      [--update-baseline]  rewrite xtask/lint-baseline.json\n\
         \x20                      (ratcheted: per-rule counts may only shrink)\n\
         \x20 fmt                  format the workspace (cargo fmt --all)\n\
         \x20 ci                   fmt-check, clippy, lint, build, test, fault-matrix,\n\
         \x20                      determinism/chaos/soak smokes, quick bench (informational)\n\
         \x20 bench [--label L]    curated hot-path benches -> BENCH_<L>.json\n\
         \x20       [--full]      (default: quick mode, {QUICK_BENCH_SAMPLES} samples per bench)\n\
         \x20       [--only B]     run a single curated bench binary\n\
         \x20       [--compare <before.json> <after.json>]  print per-bench speedups;\n\
         \x20                      rejects the retired `mean_ns` schema and mixed schemas\n\
         \x20 chaos [--smoke]      kill-point crash/resume harness (--smoke: boundary\n\
         \x20       [--stream]     kill points only; default: every durable write);\n\
         \x20       [--fleet]      --stream/--fleet: snapshotting soak workloads with\n\
         \x20                      report restore-equivalence + torn-snapshot recovery\n\
         \x20 soak [--smoke]       chaos-soak harness: corrupted/flaky stream replay with\n\
         \x20      [--only S]      a bitwise-deterministic report (--smoke: short sweep);\n\
         \x20      [--list]        --only picks a scenario (stream|recovery|fleet),\n\
         \x20      [--recovery]    --list prints the registry, --recovery/--fleet are\n\
         \x20      [--fleet]       shorthands (fleet: multi-building blast-radius soak)\n\
         \x20 miri                 Miri over linalg/timeseries unit tests\n\
         \x20 help                 show this message"
    );
}

fn lint(args: &[String]) -> ExitCode {
    let mut root = workspace_root();
    let mut json = false;
    let mut report: Option<PathBuf> = None;
    let mut update = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("xtask lint: --root needs a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--json" => json = true,
            "--report" => match it.next() {
                Some(path) => report = Some(PathBuf::from(path)),
                None => {
                    eprintln!("xtask lint: --report needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "--update-baseline" => update = true,
            other => {
                eprintln!(
                    "xtask lint: unknown argument `{other}` (expected --root <dir>, --json, \
                     --report <path>, --update-baseline)"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    if update {
        return match xtask::checks::update_baseline(&root) {
            Ok(xtask::checks::BaselineUpdate::Written { entries }) => {
                eprintln!("xtask lint: baseline rewritten with {entries} entrie(s)");
                ExitCode::SUCCESS
            }
            Ok(xtask::checks::BaselineUpdate::Refused { reason }) => {
                eprintln!("xtask lint: baseline update refused: {reason}");
                ExitCode::FAILURE
            }
            Err(e) => {
                eprintln!("xtask lint: i/o error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    match xtask::checks::run_workspace(&root) {
        Ok(lint_report) => {
            if json {
                print!("{}", lint_report.render_json());
            }
            if let Some(path) = &report {
                let path = if path.is_absolute() {
                    path.clone()
                } else {
                    root.join(path)
                };
                if let Some(parent) = path.parent() {
                    let _ = std::fs::create_dir_all(parent);
                }
                if let Err(e) =
                    thermal_ckpt::write_atomic(&path, lint_report.render_json().as_bytes())
                {
                    eprintln!("xtask lint: could not write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                eprintln!("xtask lint: report written to {}", path.display());
            }
            let active: Vec<_> = lint_report.active().collect();
            if active.is_empty() {
                let (_, allowlisted, baselined) = lint_report.counts();
                eprintln!("xtask lint: clean ({allowlisted} allowlisted, {baselined} baselined)");
                ExitCode::SUCCESS
            } else {
                for v in &active {
                    eprintln!("{v}");
                }
                eprintln!(
                    "xtask lint: {} violation(s); see xtask/lint-allow.toml and \
                     xtask/lint-baseline.json for the exception policy",
                    active.len()
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("xtask lint: i/o error: {e}");
            ExitCode::FAILURE
        }
    }
}

struct Step {
    name: &'static str,
    args: Vec<String>,
    envs: Vec<(String, String)>,
}

fn step(name: &'static str, args: &[&str]) -> Step {
    Step {
        name,
        args: args.iter().map(|&s| s.to_owned()).collect(),
        envs: Vec::new(),
    }
}

/// A [`step`] with extra environment variables, e.g. the
/// `THERMAL_THREADS` pins of the determinism smoke.
fn step_env(name: &'static str, args: &[&str], envs: &[(&str, &str)]) -> Step {
    Step {
        envs: envs
            .iter()
            .map(|&(k, v)| (k.to_owned(), v.to_owned()))
            .collect(),
        ..step(name, args)
    }
}

/// Runs `cargo` steps sequentially from the workspace root, stopping
/// at the first failure.
fn run_steps(steps: &[Step]) -> ExitCode {
    let root = workspace_root();
    for s in steps {
        let env_prefix: String = s.envs.iter().map(|(k, v)| format!("{k}={v} ")).collect();
        eprintln!("xtask: {env_prefix}cargo {}", s.args.join(" "));
        let status = Command::new(env!("CARGO"))
            .args(&s.args)
            .envs(s.envs.iter().map(|(k, v)| (k.as_str(), v.as_str())))
            .current_dir(&root)
            .status();
        match status {
            Ok(st) if st.success() => {}
            Ok(st) => {
                eprintln!("xtask: step `{}` failed with {st}", s.name);
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("xtask: step `{}` could not start: {e}", s.name);
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn ci() -> ExitCode {
    // fmt-check and clippy walls first (cheapest feedback), then the
    // custom gate, then build + test.
    let steps = [
        step("fmt-check", &["fmt", "--all", "--check"]),
        step(
            "clippy",
            &[
                "clippy",
                "--workspace",
                "--all-targets",
                "--offline",
                "--",
                "-D",
                "warnings",
            ],
        ),
    ];
    let code = run_steps(&steps);
    if code != ExitCode::SUCCESS {
        return code;
    }
    // Lint gate, with the machine-readable report dropped where the
    // CI workflow picks it up as an artifact.
    eprintln!("xtask: lint");
    let code = lint(&["--report".to_owned(), "target/lint-report.json".to_owned()]);
    if code != ExitCode::SUCCESS {
        return code;
    }
    let code = run_steps(&[
        step("build", &["build", "--release", "--offline"]),
        step("test", &["test", "-q", "--offline"]),
        // Robustness smoke: the fault-class × intensity sweep must
        // complete end-to-end on a quick campaign (sensor death and
        // total blackout included) — see DESIGN.md § robustness.
        step(
            "fault-matrix",
            &[
                "run",
                "--release",
                "--offline",
                "-p",
                "thermal-bench",
                "--bin",
                "repro",
                "--",
                "--quick",
                "fault_matrix",
            ],
        ),
    ]);
    if code != ExitCode::SUCCESS {
        return code;
    }
    // Allocation-budget gate: the counting-allocator binary proves a
    // warmed-up steady-state event performs zero heap allocations
    // (see DESIGN.md § allocation budget). The full test step above
    // already ran it; this dedicated step keeps the budget visible —
    // and individually bisectable — in the CI log.
    let code = run_steps(&[step(
        "alloc-free",
        &[
            "test",
            "-q",
            "--offline",
            "--release",
            "-p",
            "thermal-stream",
            "--test",
            "alloc_free",
        ],
    )]);
    if code != ExitCode::SUCCESS {
        return code;
    }
    let code = determinism_smoke();
    if code != ExitCode::SUCCESS {
        return code;
    }
    // Crash-safety smoke: kill the checkpointed workload at the
    // boundary durable writes and require byte-identical resume (the
    // dedicated CI job sweeps every kill point).
    eprintln!("xtask: chaos smoke");
    let code = chaos(&["--smoke".to_owned()]);
    if code != ExitCode::SUCCESS {
        return code;
    }
    // Live-serving crash-safety smokes: kill the snapshotting stream
    // and fleet soaks at the boundary durable writes and require the
    // resumed final reports byte-identical to an uninterrupted run
    // (the dedicated CI jobs sweep every kill point).
    eprintln!("xtask: chaos stream smoke");
    let code = chaos(&["--stream".to_owned(), "--smoke".to_owned()]);
    if code != ExitCode::SUCCESS {
        return code;
    }
    eprintln!("xtask: chaos fleet smoke");
    let code = chaos(&["--fleet".to_owned(), "--smoke".to_owned()]);
    if code != ExitCode::SUCCESS {
        return code;
    }
    // Streaming-robustness smoke: a short corrupted/flaky replay must
    // finish panic-free with a bitwise-deterministic soak report (the
    // dedicated CI job runs the full sweep).
    eprintln!("xtask: soak smoke");
    let code = soak(&[
        "--smoke".to_owned(),
        "--only".to_owned(),
        "stream".to_owned(),
    ]);
    if code != ExitCode::SUCCESS {
        return code;
    }
    // Self-healing smoke: a mid-trace regime shift must be detected,
    // refitted, and healed deterministically (the dedicated CI job
    // runs the full two-day scenario).
    eprintln!("xtask: drift-recovery smoke");
    let code = soak(&[
        "--smoke".to_owned(),
        "--only".to_owned(),
        "recovery".to_owned(),
    ]);
    if code != ExitCode::SUCCESS {
        return code;
    }
    // Fleet blast-radius smoke: a small fleet with two fault-targeted
    // buildings must quarantine exactly those two and leave every
    // other building's report byte-identical to a fault-free baseline
    // (the dedicated CI job runs the full fleet sweep).
    eprintln!("xtask: fleet-soak smoke");
    let code = soak(&[
        "--smoke".to_owned(),
        "--only".to_owned(),
        "fleet".to_owned(),
    ]);
    if code != ExitCode::SUCCESS {
        return code;
    }
    // Informational quick benches: surface the hot-path wall-times in
    // the CI log without gating on them — timings on shared runners
    // are too noisy to be a pass/fail criterion. The dedicated sweep
    // smoke keeps the memoized Fig. 5 sweep (BENCH_sweep_pre/post
    // pair) in its own report for the artifact upload.
    if bench(&["--label".to_owned(), "ci-quick".to_owned()]) != ExitCode::SUCCESS {
        eprintln!("xtask: quick bench failed (informational only, not gating CI)");
    }
    if bench(&[
        "--only".to_owned(),
        "bench_sweep".to_owned(),
        "--label".to_owned(),
        "sweep-smoke".to_owned(),
    ]) != ExitCode::SUCCESS
    {
        eprintln!("xtask: sweep bench smoke failed (informational only, not gating CI)");
    }
    ExitCode::SUCCESS
}

/// Runs the repro pipeline twice — `THERMAL_THREADS=1` and `=4` — and
/// byte-compares the result CSVs, enforcing the `thermal-par`
/// determinism contract end-to-end (see DESIGN.md § performance).
fn determinism_smoke() -> ExitCode {
    let root = workspace_root();
    let out_base = root.join("target").join("determinism");
    let runs = [("1", out_base.join("t1")), ("4", out_base.join("t4"))];
    for (threads, dir) in &runs {
        let code = run_steps(&[step_env(
            "determinism-repro",
            &[
                "run",
                "--release",
                "--offline",
                "-p",
                "thermal-bench",
                "--bin",
                "repro",
                "--",
                "--quick",
                "--out",
                &dir.to_string_lossy(),
                "fig3",
                "fault_matrix",
            ],
            &[("THERMAL_THREADS", threads)],
        )]);
        if code != ExitCode::SUCCESS {
            return code;
        }
    }
    for csv in ["fig3.csv", "fault_matrix.csv"] {
        let (a, b) = (runs[0].1.join(csv), runs[1].1.join(csv));
        match (std::fs::read(&a), std::fs::read(&b)) {
            (Ok(lhs), Ok(rhs)) if lhs == rhs => {
                eprintln!("xtask: determinism smoke: {csv} identical across thread counts");
            }
            (Ok(_), Ok(_)) => {
                eprintln!(
                    "xtask: determinism smoke FAILED: {csv} differs between \
                     THERMAL_THREADS=1 and THERMAL_THREADS=4"
                );
                return ExitCode::FAILURE;
            }
            (a_res, b_res) => {
                eprintln!(
                    "xtask: determinism smoke could not read {csv}: {:?} / {:?}",
                    a_res.err(),
                    b_res.err()
                );
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// Runs the curated hot-path benches and writes `BENCH_<label>.json`
/// at the workspace root.
fn bench(args: &[String]) -> ExitCode {
    let mut label = "local".to_owned();
    let mut full = false;
    let mut only: Option<String> = None;
    let mut compare: Option<(String, String)> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--label" => match it.next() {
                Some(l) => label = l.clone(),
                None => {
                    eprintln!("xtask bench: --label needs a value");
                    return ExitCode::FAILURE;
                }
            },
            "--full" => full = true,
            "--only" => match it.next() {
                Some(name) => only = Some(name.clone()),
                None => {
                    eprintln!("xtask bench: --only needs a bench name");
                    return ExitCode::FAILURE;
                }
            },
            "--compare" => match (it.next(), it.next()) {
                (Some(a), Some(b)) => compare = Some((a.clone(), b.clone())),
                _ => {
                    eprintln!("xtask bench: --compare needs two report paths");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!(
                    "xtask bench: unknown argument `{other}` (expected --label <L>, --full, \
                     --only <bench>, --compare <before.json> <after.json>)"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some((before_path, after_path)) = compare {
        return bench_compare(&before_path, &after_path);
    }
    let selected: Vec<&&str> = CURATED_BENCHES
        .iter()
        .filter(|name| only.as_deref().is_none_or(|o| o == **name))
        .collect();
    if selected.is_empty() {
        eprintln!(
            "xtask bench: --only `{}` matches no curated bench (expected one of {})",
            only.unwrap_or_default(),
            CURATED_BENCHES.join(", ")
        );
        return ExitCode::FAILURE;
    }
    let samples = if full { "default" } else { QUICK_BENCH_SAMPLES };
    let root = workspace_root();
    let mut records = Vec::new();
    for name in selected {
        eprintln!("xtask bench: {name} ({samples} samples)");
        let mut cmd = Command::new(env!("CARGO"));
        cmd.args(["bench", "--offline", "-p", "thermal-bench", "--bench", name])
            .current_dir(&root);
        if !full {
            cmd.env("THERMAL_BENCH_SAMPLES", QUICK_BENCH_SAMPLES);
        }
        let output = match cmd.output() {
            Ok(out) => out,
            Err(e) => {
                eprintln!("xtask bench: could not start `{name}`: {e}");
                return ExitCode::FAILURE;
            }
        };
        if !output.status.success() {
            eprintln!(
                "xtask bench: `{name}` failed with {}:\n{}",
                output.status,
                String::from_utf8_lossy(&output.stderr)
            );
            return ExitCode::FAILURE;
        }
        let parsed = xtask::bench::parse_bench_output(&String::from_utf8_lossy(&output.stdout));
        if parsed.is_empty() {
            eprintln!("xtask bench: `{name}` produced no parseable measurements");
            return ExitCode::FAILURE;
        }
        for r in &parsed {
            eprintln!(
                "xtask bench:   {:<48} {:>12.3} ms/iter",
                r.name,
                r.median_ns / 1e6
            );
        }
        records.extend(parsed);
    }
    let git_rev = Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .current_dir(&root)
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_owned())
        .unwrap_or_else(|| "unknown".to_owned());
    let threads = thermal_par::thread_count();
    let json = xtask::bench::render_json(&label, &git_rev, threads, samples, &records);
    let path = root.join(format!("BENCH_{label}.json"));
    // Atomic commit: a crash mid-write never leaves a torn report.
    match thermal_ckpt::write_atomic(&path, json.as_bytes()) {
        Ok(()) => {
            eprintln!("xtask bench: wrote {}", path.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("xtask bench: could not write {}: {e}", path.display());
            ExitCode::FAILURE
        }
    }
}

/// Compares two committed bench reports, rejecting the retired
/// `mean_ns` schema (and mean/median mixes) outright.
fn bench_compare(before_path: &str, after_path: &str) -> ExitCode {
    let root = workspace_root();
    let load = |raw: &str| -> Result<Vec<xtask::bench::BenchRecord>, String> {
        let path = Path::new(raw);
        let path = if path.is_absolute() {
            path.to_path_buf()
        } else {
            root.join(path)
        };
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        xtask::bench::parse_report(&text).map_err(|e| format!("{}: {e}", path.display()))
    };
    let (before, after) = match (load(before_path), load(after_path)) {
        (Ok(b), Ok(a)) => (b, a),
        (b, a) => {
            for err in [b.err(), a.err()].into_iter().flatten() {
                eprintln!("xtask bench: cannot compare {err}");
            }
            return ExitCode::FAILURE;
        }
    };
    let rows = xtask::bench::compare(&before, &after);
    if rows.is_empty() {
        eprintln!("xtask bench: the reports share no bench names");
        return ExitCode::FAILURE;
    }
    print!("{}", xtask::bench::render_comparison(&rows));
    ExitCode::SUCCESS
}

/// Runs the kill-point chaos harness (see `xtask::chaos`). With no
/// workload flag it drives the checkpointed fit grid; `--stream` and
/// `--fleet` drive the snapshotting soak workloads and additionally
/// prove restore-equivalence of the final report bytes.
fn chaos(args: &[String]) -> ExitCode {
    let mut smoke = false;
    let mut workload: Option<xtask::chaos::SnapshotWorkload> = None;
    for arg in args {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--stream" if workload.is_none() => {
                workload = Some(xtask::chaos::SnapshotWorkload::Stream);
            }
            "--fleet" if workload.is_none() => {
                workload = Some(xtask::chaos::SnapshotWorkload::Fleet);
            }
            _ => {
                eprintln!("xtask chaos: expected [--stream|--fleet] [--smoke]");
                return ExitCode::FAILURE;
            }
        }
    }
    let root = workspace_root();
    let outcome = match workload {
        None => xtask::chaos::run(&root, smoke),
        Some(w) => xtask::chaos::run_snapshots(&root, w, smoke),
    };
    match outcome {
        Ok(()) => {
            eprintln!("xtask chaos: clean");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("xtask chaos: FAILED: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Runs one soak harness scenario, chosen from the registry in
/// `xtask::soak::SCENARIOS` via `--only <scenario>` (default
/// `stream`; `--recovery` and `--fleet` are shorthands). `--list`
/// prints the registry and exits.
fn soak(args: &[String]) -> ExitCode {
    let mut smoke = false;
    let mut only: Option<String> = None;
    let mut iter = args.iter();
    let pick = |scenario: &str, only: &mut Option<String>| -> bool {
        if let Some(prev) = only.as_deref() {
            if prev != scenario {
                eprintln!(
                    "xtask soak: scenario already set to `{prev}`, cannot also run `{scenario}`"
                );
                return false;
            }
        }
        *only = Some(scenario.to_owned());
        true
    };
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--list" => {
                for &(name, description) in xtask::soak::SCENARIOS {
                    println!("{name:<10} {description}");
                }
                return ExitCode::SUCCESS;
            }
            "--recovery" => {
                if !pick("recovery", &mut only) {
                    return ExitCode::FAILURE;
                }
            }
            "--fleet" => {
                if !pick("fleet", &mut only) {
                    return ExitCode::FAILURE;
                }
            }
            "--only" => {
                let Some(name) = iter.next() else {
                    eprintln!("xtask soak: `--only` needs a scenario name (see --list)");
                    return ExitCode::FAILURE;
                };
                if !pick(name, &mut only) {
                    return ExitCode::FAILURE;
                }
            }
            _ => {
                eprintln!(
                    "xtask soak: expected `--smoke`, `--list`, `--only <scenario>`, \
                     `--recovery`, or `--fleet`"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    let scenario = only.as_deref().unwrap_or("stream");
    let result = match scenario {
        "stream" => xtask::soak::run(&workspace_root(), smoke),
        "recovery" => xtask::soak::run_recovery(&workspace_root(), smoke),
        "fleet" => xtask::soak::run_fleet(&workspace_root(), smoke),
        other => {
            let known: Vec<&str> = xtask::soak::SCENARIOS.iter().map(|&(n, _)| n).collect();
            eprintln!(
                "xtask soak: unknown scenario `{other}` (known: {})",
                known.join(", ")
            );
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => {
            eprintln!("xtask soak: clean ({scenario})");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("xtask soak: FAILED: {e}");
            ExitCode::FAILURE
        }
    }
}

fn miri() -> ExitCode {
    // Miri needs the nightly component; degrade to an explicit skip
    // when it is absent so the aggregate stays usable offline. The
    // scheduled CI job installs the component and runs this for real.
    let probe = Command::new(env!("CARGO"))
        .args(["miri", "--version"])
        .output();
    let available = matches!(&probe, Ok(out) if out.status.success());
    if !available {
        eprintln!(
            "xtask miri: `cargo miri` unavailable in this toolchain; skipping.\n\
             Install with `rustup +nightly component add miri` to run locally."
        );
        return ExitCode::SUCCESS;
    }
    run_steps(&[step(
        "miri",
        &[
            "miri",
            "test",
            "-p",
            "thermal-linalg",
            "-p",
            "thermal-timeseries",
            "--lib",
        ],
    )])
}
