//! `cargo xtask` — the single entry point for workspace correctness
//! tooling. See `DESIGN.md` § static analysis and `README.md` for the
//! policy this enforces.
//!
//! Commands:
//!
//! - `cargo xtask lint` — custom source-level conventions gate.
//! - `cargo xtask fmt` — `cargo fmt --all`.
//! - `cargo xtask ci` — fmt-check → clippy → lint → build → test →
//!   fault-matrix smoke.
//! - `cargo xtask miri` — Miri over the `linalg`/`timeseries` unit
//!   tests (skips with a notice when Miri is not installed).

use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

fn workspace_root() -> PathBuf {
    // crates/xtask/ -> crates/ -> workspace root.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map_or(manifest.clone(), Path::to_path_buf)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str).unwrap_or("help");
    match command {
        "lint" => lint(&args[1..]),
        "fmt" => run_steps(&[step("fmt", &["fmt", "--all"])]),
        "ci" => ci(),
        "miri" => miri(),
        "help" | "--help" | "-h" => {
            print_help();
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("xtask: unknown command `{other}`\n");
            print_help();
            ExitCode::FAILURE
        }
    }
}

fn print_help() {
    eprintln!(
        "usage: cargo xtask <command>\n\n\
         commands:\n\
         \x20 lint [--root <dir>]  run the custom static-analysis gate\n\
         \x20 fmt                  format the workspace (cargo fmt --all)\n\
         \x20 ci                   fmt-check, clippy, lint, build, test, fault-matrix smoke\n\
         \x20 miri                 Miri over linalg/timeseries unit tests\n\
         \x20 help                 show this message"
    );
}

fn lint(args: &[String]) -> ExitCode {
    let root = match args {
        [] => workspace_root(),
        [flag, dir] if flag == "--root" => PathBuf::from(dir),
        _ => {
            eprintln!("xtask lint: expected no arguments or `--root <dir>`");
            return ExitCode::FAILURE;
        }
    };
    match xtask::checks::run_workspace(&root) {
        Ok(violations) if violations.is_empty() => {
            eprintln!("xtask lint: clean");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                eprintln!("{v}");
            }
            eprintln!(
                "xtask lint: {} violation(s); see xtask/lint-allow.toml for the exception policy",
                violations.len()
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xtask lint: i/o error: {e}");
            ExitCode::FAILURE
        }
    }
}

struct Step {
    name: &'static str,
    args: Vec<String>,
}

fn step(name: &'static str, args: &[&str]) -> Step {
    Step {
        name,
        args: args.iter().map(|&s| s.to_owned()).collect(),
    }
}

/// Runs `cargo` steps sequentially from the workspace root, stopping
/// at the first failure.
fn run_steps(steps: &[Step]) -> ExitCode {
    let root = workspace_root();
    for s in steps {
        eprintln!("xtask: cargo {}", s.args.join(" "));
        let status = Command::new(env!("CARGO"))
            .args(&s.args)
            .current_dir(&root)
            .status();
        match status {
            Ok(st) if st.success() => {}
            Ok(st) => {
                eprintln!("xtask: step `{}` failed with {st}", s.name);
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("xtask: step `{}` could not start: {e}", s.name);
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn ci() -> ExitCode {
    // fmt-check and clippy walls first (cheapest feedback), then the
    // custom gate, then build + test.
    let steps = [
        step("fmt-check", &["fmt", "--all", "--check"]),
        step(
            "clippy",
            &[
                "clippy",
                "--workspace",
                "--all-targets",
                "--offline",
                "--",
                "-D",
                "warnings",
            ],
        ),
    ];
    let code = run_steps(&steps);
    if code != ExitCode::SUCCESS {
        return code;
    }
    eprintln!("xtask: lint");
    let code = lint(&[]);
    if code != ExitCode::SUCCESS {
        return code;
    }
    run_steps(&[
        step("build", &["build", "--release", "--offline"]),
        step("test", &["test", "-q", "--offline"]),
        // Robustness smoke: the fault-class × intensity sweep must
        // complete end-to-end on a quick campaign (sensor death and
        // total blackout included) — see DESIGN.md § robustness.
        step(
            "fault-matrix",
            &[
                "run",
                "--release",
                "--offline",
                "-p",
                "thermal-bench",
                "--bin",
                "repro",
                "--",
                "--quick",
                "fault_matrix",
            ],
        ),
    ])
}

fn miri() -> ExitCode {
    // Miri needs the nightly component; degrade to an explicit skip
    // when it is absent so the aggregate stays usable offline. The
    // scheduled CI job installs the component and runs this for real.
    let probe = Command::new(env!("CARGO"))
        .args(["miri", "--version"])
        .output();
    let available = matches!(&probe, Ok(out) if out.status.success());
    if !available {
        eprintln!(
            "xtask miri: `cargo miri` unavailable in this toolchain; skipping.\n\
             Install with `rustup +nightly component add miri` to run locally."
        );
        return ExitCode::SUCCESS;
    }
    run_steps(&[step(
        "miri",
        &[
            "miri",
            "test",
            "-p",
            "thermal-linalg",
            "-p",
            "thermal-timeseries",
            "--lib",
        ],
    )])
}
