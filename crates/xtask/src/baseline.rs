//! The ratcheted lint baseline (`xtask/lint-baseline.json`).
//!
//! The baseline is the committed set of *known* findings — audited
//! code the new rules flag but that a human has reviewed (e.g. the
//! bounds-checked dense kernels in `thermal-linalg`, where `get()`
//! calls in the innermost loop would wreck the cache-blocked layout).
//! `cargo xtask lint` treats a finding that exactly matches a
//! baseline entry (rule, file, line, column *and* the trimmed source
//! line) as suppressed; everything else is active and fails the gate.
//!
//! The ratchet: `cargo xtask lint --update-baseline` rewrites the
//! file from the current findings, but refuses when any rule's entry
//! count would *grow* — the baseline may only shrink (or first
//! appear, when bootstrapping a new rule). Entries that no longer
//! match anything are reported under `stale-allow`, same as stale
//! allowlist entries, so a remediated finding must be removed from
//! the baseline in the same change.
//!
//! Matching is deliberately brittle: editing a baselined file shifts
//! lines, invalidates the entries, and forces a re-audit via
//! `--update-baseline` — which is the point of a ratchet.

use std::cell::Cell;
use std::fmt;

use crate::json::{self, escape, Value};

/// Relative path of the baseline file under the workspace root.
pub const BASELINE_PATH: &str = "xtask/lint-baseline.json";

/// Schema tag of the baseline document.
pub const SCHEMA: &str = "xtask-lint-baseline/1";

/// One baselined finding.
#[derive(Debug, Clone)]
pub struct BaselineEntry {
    /// Rule identifier.
    pub rule: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
    /// Trimmed source line at the finding, pinning the entry to the
    /// exact code it was audited against.
    pub snippet: String,
    used: Cell<bool>,
}

impl BaselineEntry {
    /// Whether this entry covers the given finding; single-use, so a
    /// second identical finding stays active.
    pub fn covers(
        &self,
        rule: &str,
        file: &str,
        line: usize,
        column: usize,
        snippet: &str,
    ) -> bool {
        if self.used.get()
            || self.rule != rule
            || self.file != file
            || self.line != line
            || self.column != column
            || self.snippet != snippet
        {
            return false;
        }
        self.used.set(true);
        true
    }

    /// Whether the entry matched a finding during the run.
    pub fn was_used(&self) -> bool {
        self.used.get()
    }
}

impl fmt::Display for BaselineEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at {}:{}:{}",
            self.rule, self.file, self.line, self.column
        )
    }
}

/// The parsed baseline.
#[derive(Debug, Default)]
pub struct Baseline {
    /// All entries in file order.
    pub entries: Vec<BaselineEntry>,
}

/// Error produced when the baseline file is malformed.
#[derive(Debug)]
pub struct BaselineError {
    /// 1-based line in the baseline file (0 = whole file).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint-baseline.json:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for BaselineError {}

impl Baseline {
    /// Parses the baseline document.
    pub fn parse(text: &str) -> Result<Baseline, BaselineError> {
        let doc = json::parse(text).map_err(|e| BaselineError {
            line: e.line,
            message: e.message,
        })?;
        let whole = |message: String| BaselineError { line: 0, message };
        if doc.get("schema").and_then(Value::as_str) != Some(SCHEMA) {
            return Err(whole(format!("`schema` must be \"{SCHEMA}\"")));
        }
        let findings = doc
            .get("findings")
            .and_then(Value::as_arr)
            .ok_or_else(|| whole("`findings` must be an array".to_owned()))?;
        let mut entries = Vec::with_capacity(findings.len());
        for (i, f) in findings.iter().enumerate() {
            let field_str = |key: &str| {
                f.get(key)
                    .and_then(Value::as_str)
                    .map(str::to_owned)
                    .ok_or_else(|| whole(format!("findings[{i}]: `{key}` must be a string")))
            };
            let field_num = |key: &str| {
                f.get(key)
                    .and_then(Value::as_usize)
                    .ok_or_else(|| whole(format!("findings[{i}]: `{key}` must be an integer")))
            };
            entries.push(BaselineEntry {
                rule: field_str("rule")?,
                file: field_str("file")?,
                line: field_num("line")?,
                column: field_num("column")?,
                snippet: field_str("snippet")?,
                used: Cell::new(false),
            });
        }
        Ok(Baseline { entries })
    }

    /// Whether any entry covers the finding (consumes the entry).
    pub fn covers(
        &self,
        rule: &str,
        file: &str,
        line: usize,
        column: usize,
        snippet: &str,
    ) -> bool {
        self.entries
            .iter()
            .any(|e| e.covers(rule, file, line, column, snippet))
    }

    /// Entries that never matched during the run (stale: the code
    /// they were pinned to is gone or has moved).
    pub fn unused(&self) -> Vec<&BaselineEntry> {
        self.entries.iter().filter(|e| !e.was_used()).collect()
    }

    /// Per-rule entry counts, sorted by rule name — the quantity the
    /// ratchet compares.
    pub fn rule_counts(&self) -> Vec<(String, usize)> {
        let mut counts: Vec<(String, usize)> = Vec::new();
        for e in &self.entries {
            match counts.iter_mut().find(|(r, _)| r == &e.rule) {
                Some((_, n)) => *n += 1,
                None => counts.push((e.rule.clone(), 1)),
            }
        }
        counts.sort();
        counts
    }
}

/// Renders a baseline document canonically: fixed key order, findings
/// in the caller's (already sorted) order, 2-space indent, trailing
/// newline. Byte-identical for identical inputs.
pub fn render(entries: &[BaselineEntry]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    if entries.is_empty() {
        out.push_str("  \"findings\": []\n");
    } else {
        out.push_str("  \"findings\": [\n");
        for (i, e) in entries.iter().enumerate() {
            out.push_str(&format!(
                "    {{ \"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"column\": {}, \"snippet\": \"{}\" }}{}\n",
                escape(&e.rule),
                escape(&e.file),
                e.line,
                e.column,
                escape(&e.snippet),
                if i + 1 < entries.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n");
    }
    out.push('}');
    out.push('\n');
    out
}

/// Builds an (unused) entry — the constructor `--update-baseline`
/// uses when freezing current findings.
pub fn entry(rule: &str, file: &str, line: usize, column: usize, snippet: &str) -> BaselineEntry {
    BaselineEntry {
        rule: rule.to_owned(),
        file: file.to_owned(),
        line,
        column,
        snippet: snippet.to_owned(),
        used: Cell::new(false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Baseline {
        Baseline {
            entries: vec![
                entry("hot-path-index", "crates/a/src/lib.rs", 3, 9, "x[i]"),
                entry("hot-path-index", "crates/a/src/lib.rs", 7, 5, "y[j]"),
                entry("unordered-container", "crates/b/src/lib.rs", 1, 1, "use x;"),
            ],
        }
    }

    #[test]
    fn round_trips_through_render_and_parse() {
        let text = render(&sample().entries);
        let parsed = Baseline::parse(&text).unwrap();
        assert_eq!(parsed.entries.len(), 3);
        assert_eq!(parsed.entries[0].rule, "hot-path-index");
        assert_eq!(parsed.entries[2].line, 1);
        // Canonical: rendering the parse yields the same bytes.
        assert_eq!(render(&parsed.entries), text);
    }

    #[test]
    fn covers_is_exact_and_single_use() {
        let b = sample();
        assert!(!b.covers("hot-path-index", "crates/a/src/lib.rs", 3, 9, "x[k]"));
        assert!(b.covers("hot-path-index", "crates/a/src/lib.rs", 3, 9, "x[i]"));
        // Second identical finding is NOT covered: entries are single-use.
        assert!(!b.covers("hot-path-index", "crates/a/src/lib.rs", 3, 9, "x[i]"));
        assert_eq!(b.unused().len(), 2);
    }

    #[test]
    fn rule_counts_aggregate() {
        let counts = sample().rule_counts();
        assert_eq!(
            counts,
            vec![
                ("hot-path-index".to_owned(), 2),
                ("unordered-container".to_owned(), 1)
            ]
        );
    }

    #[test]
    fn rejects_wrong_schema_and_malformed_entries() {
        let err = Baseline::parse("{\"schema\": \"nope\", \"findings\": []}").unwrap_err();
        assert!(err.message.contains("schema"));
        let err = Baseline::parse(
            "{\"schema\": \"xtask-lint-baseline/1\", \"findings\": [{\"rule\": 3}]}",
        )
        .unwrap_err();
        assert!(err.message.contains("findings[0]"));
        // Syntax errors carry the source line.
        let err = Baseline::parse("{\n  broken\n}").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn empty_baseline_renders_compactly() {
        let text = render(&[]);
        assert!(text.contains("\"findings\": []"));
        assert!(Baseline::parse(&text).unwrap().entries.is_empty());
    }
}
