//! Parsing and reporting for `cargo xtask bench`.
//!
//! The vendored criterion shim prints one line per benchmark — the
//! figure is the **median** per-iteration wall time over the sampled
//! iterations:
//!
//! ```text
//! bench qr_decompose_5760x61                                 20.750ms/iter over 10 iters
//! ```
//!
//! This module parses those lines and renders the machine-readable
//! `BENCH_<label>.json` document the performance workflow commits
//! alongside kernel changes (wall-times, thread count, git revision).
//! Timings are informational, never a pass/fail gate: shared
//! single-CPU runners are too noisy for thresholds, which is also why
//! the shim reports medians rather than means.

/// One parsed benchmark measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Benchmark name, e.g. `identify/dense_second-order`.
    pub name: String,
    /// Median wall-time per iteration in nanoseconds (the shim
    /// reports the median of its samples; a single preempted
    /// iteration on a noisy shared runner cannot skew it).
    pub median_ns: f64,
    /// Iterations the median was taken over.
    pub iters: u64,
}

/// Parses a `Duration`-debug-formatted time like `71.250ms`, `1.004s`,
/// `603.399µs` or `12ns` into nanoseconds.
pub fn parse_duration_ns(text: &str) -> Option<f64> {
    let split = text.find(|c: char| !(c.is_ascii_digit() || c == '.'))?;
    let (number, unit) = text.split_at(split);
    let value: f64 = number.parse().ok()?;
    let scale = match unit {
        "ns" => 1.0,
        "µs" | "us" => 1e3,
        "ms" => 1e6,
        "s" => 1e9,
        _ => return None,
    };
    Some(value * scale)
}

/// Extracts every `bench ...` line from a bench binary's stdout.
///
/// Unparseable lines are skipped: the shim's format is the contract,
/// and anything else (compiler noise, cargo status) is not a
/// measurement.
pub fn parse_bench_output(stdout: &str) -> Vec<BenchRecord> {
    let mut out = Vec::new();
    for line in stdout.lines() {
        let Some(rest) = line.strip_prefix("bench ") else {
            continue;
        };
        let fields: Vec<&str> = rest.split_whitespace().collect();
        // name  <dur>/iter  over  <n>  iters
        if fields.len() != 5 || fields[2] != "over" || fields[4] != "iters" {
            continue;
        }
        let Some(duration) = fields[1].strip_suffix("/iter") else {
            continue;
        };
        let (Some(median_ns), Ok(iters)) = (parse_duration_ns(duration), fields[3].parse::<u64>())
        else {
            continue;
        };
        out.push(BenchRecord {
            name: fields[0].to_owned(),
            median_ns,
            iters,
        });
    }
    out
}

/// Renders the `BENCH_<label>.json` document.
///
/// Hand-assembled JSON: the vendored serde shim has no serializer, and
/// the schema is flat enough that string assembly stays readable.
pub fn render_json(
    label: &str,
    git_rev: &str,
    threads: usize,
    samples: &str,
    records: &[BenchRecord],
) -> String {
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"label\": \"{}\",\n", escape(label)));
    json.push_str(&format!("  \"git_rev\": \"{}\",\n", escape(git_rev)));
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str(&format!("  \"samples\": \"{}\",\n", escape(samples)));
    json.push_str("  \"benches\": [\n");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 < records.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"median_ns\": {:.1}, \"iters\": {}}}{comma}\n",
            escape(&r.name),
            r.median_ns,
            r.iters,
        ));
    }
    json.push_str("  ]\n}\n");
    json
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_duration_units() {
        assert_eq!(parse_duration_ns("12ns"), Some(12.0));
        assert_eq!(parse_duration_ns("603.399µs"), Some(603_399.0));
        assert_eq!(parse_duration_ns("71.250ms"), Some(71_250_000.0));
        assert_eq!(parse_duration_ns("1.004s"), Some(1_004_000_000.0));
        assert_eq!(parse_duration_ns("7.5parsecs"), None);
        assert_eq!(parse_duration_ns("fast"), None);
    }

    #[test]
    fn parses_shim_output_and_skips_noise() {
        let stdout = "\
   Compiling thermal-bench v0.1.0
bench qr_decompose_5760x61                                 20.750ms/iter over 10 iters
bench identify/dense_second-order                           4.396ms/iter over 10 iters
warning: something unrelated
bench malformed line without the shape
";
        let records = parse_bench_output(stdout);
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].name, "qr_decompose_5760x61");
        assert_eq!(records[0].median_ns, 20_750_000.0);
        assert_eq!(records[0].iters, 10);
        assert_eq!(records[1].name, "identify/dense_second-order");
    }

    #[test]
    fn json_document_is_well_formed() {
        let records = vec![
            BenchRecord {
                name: "a/b".to_owned(),
                median_ns: 1234.5,
                iters: 3,
            },
            BenchRecord {
                name: "c".to_owned(),
                median_ns: 5.0,
                iters: 10,
            },
        ];
        let json = render_json("post", "abc1234", 4, "3", &records);
        assert!(json.contains("\"label\": \"post\""));
        assert!(json.contains("\"git_rev\": \"abc1234\""));
        assert!(json.contains("\"threads\": 4"));
        assert!(json.contains("{\"name\": \"a/b\", \"median_ns\": 1234.5, \"iters\": 3},"));
        assert!(json.contains("{\"name\": \"c\", \"median_ns\": 5.0, \"iters\": 10}\n"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn json_escapes_quotes() {
        let json = render_json("a\"b", "rev", 1, "default", &[]);
        assert!(json.contains("a\\\"b"));
    }
}
