//! Parsing and reporting for `cargo xtask bench`.
//!
//! The vendored criterion shim prints one line per benchmark — the
//! figure is the **median** per-iteration wall time over the sampled
//! iterations:
//!
//! ```text
//! bench qr_decompose_5760x61                                 20.750ms/iter over 10 iters
//! ```
//!
//! This module parses those lines and renders the machine-readable
//! `BENCH_<label>.json` document the performance workflow commits
//! alongside kernel changes (wall-times, thread count, git revision).
//! Timings are informational, never a pass/fail gate: shared
//! single-CPU runners are too noisy for thresholds, which is also why
//! the shim reports medians rather than means.

/// One parsed benchmark measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Benchmark name, e.g. `identify/dense_second-order`.
    pub name: String,
    /// Median wall-time per iteration in nanoseconds (the shim
    /// reports the median of its samples; a single preempted
    /// iteration on a noisy shared runner cannot skew it).
    pub median_ns: f64,
    /// Iterations the median was taken over.
    pub iters: u64,
}

/// Parses a `Duration`-debug-formatted time like `71.250ms`, `1.004s`,
/// `603.399µs` or `12ns` into nanoseconds.
pub fn parse_duration_ns(text: &str) -> Option<f64> {
    let split = text.find(|c: char| !(c.is_ascii_digit() || c == '.'))?;
    let (number, unit) = text.split_at(split);
    let value: f64 = number.parse().ok()?;
    let scale = match unit {
        "ns" => 1.0,
        "µs" | "us" => 1e3,
        "ms" => 1e6,
        "s" => 1e9,
        _ => return None,
    };
    Some(value * scale)
}

/// Extracts every `bench ...` line from a bench binary's stdout.
///
/// Unparseable lines are skipped: the shim's format is the contract,
/// and anything else (compiler noise, cargo status) is not a
/// measurement.
pub fn parse_bench_output(stdout: &str) -> Vec<BenchRecord> {
    let mut out = Vec::new();
    for line in stdout.lines() {
        let Some(rest) = line.strip_prefix("bench ") else {
            continue;
        };
        let fields: Vec<&str> = rest.split_whitespace().collect();
        // name  <dur>/iter  over  <n>  iters
        if fields.len() != 5 || fields[2] != "over" || fields[4] != "iters" {
            continue;
        }
        let Some(duration) = fields[1].strip_suffix("/iter") else {
            continue;
        };
        let (Some(median_ns), Ok(iters)) = (parse_duration_ns(duration), fields[3].parse::<u64>())
        else {
            continue;
        };
        out.push(BenchRecord {
            name: fields[0].to_owned(),
            median_ns,
            iters,
        });
    }
    out
}

/// Renders the `BENCH_<label>.json` document.
///
/// Hand-assembled JSON: the vendored serde shim has no serializer, and
/// the schema is flat enough that string assembly stays readable.
pub fn render_json(
    label: &str,
    git_rev: &str,
    threads: usize,
    samples: &str,
    records: &[BenchRecord],
) -> String {
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"label\": \"{}\",\n", escape(label)));
    json.push_str(&format!("  \"git_rev\": \"{}\",\n", escape(git_rev)));
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str(&format!("  \"samples\": \"{}\",\n", escape(samples)));
    json.push_str("  \"benches\": [\n");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 < records.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"median_ns\": {:.1}, \"iters\": {}}}{comma}\n",
            escape(&r.name),
            r.median_ns,
            r.iters,
        ));
    }
    json.push_str("  ]\n}\n");
    json
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Why a committed bench report cannot be compared.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReportError {
    /// The document (still) uses the retired `mean_ns` schema — or
    /// mixes it with `median_ns`. Mixed-unit comparisons silently
    /// mislead, so they are rejected outright; regenerate the report
    /// with `cargo xtask bench`.
    LegacySchema,
    /// No `{"name": ..., "median_ns": ...}` entries were found.
    NoBenches,
}

impl std::fmt::Display for ReportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReportError::LegacySchema => write!(
                f,
                "legacy `mean_ns` schema (or a mean/median mix); \
                 regenerate with `cargo xtask bench` before comparing"
            ),
            ReportError::NoBenches => write!(f, "no parseable bench entries"),
        }
    }
}

/// Parses the bench entries out of a committed `BENCH_<label>.json`.
///
/// Line-oriented by design: the documents are written by
/// [`render_json`] (one entry per line), and rejecting anything else —
/// in particular the retired `mean_ns` schema — is the point, not a
/// limitation.
pub fn parse_report(json: &str) -> Result<Vec<BenchRecord>, ReportError> {
    if json.contains("\"mean_ns\"") {
        return Err(ReportError::LegacySchema);
    }
    let mut out = Vec::new();
    for line in json.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some(rest) = line.strip_prefix("{\"name\": \"") else {
            continue;
        };
        let Some(name_end) = rest.find("\", \"median_ns\": ") else {
            continue;
        };
        let name = rest[..name_end].replace("\\\"", "\"").replace("\\\\", "\\");
        let rest = &rest[name_end + "\", \"median_ns\": ".len()..];
        let Some((median, tail)) = rest.split_once(", \"iters\": ") else {
            continue;
        };
        let (Ok(median_ns), Ok(iters)) = (
            median.parse::<f64>(),
            tail.trim_end_matches('}').parse::<u64>(),
        ) else {
            continue;
        };
        out.push(BenchRecord {
            name,
            median_ns,
            iters,
        });
    }
    if out.is_empty() {
        return Err(ReportError::NoBenches);
    }
    Ok(out)
}

/// One before/after pair of a bench comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Benchmark name present in both reports.
    pub name: String,
    /// Median ns/iter in the `before` report.
    pub before_ns: f64,
    /// Median ns/iter in the `after` report.
    pub after_ns: f64,
}

impl Comparison {
    /// `before / after` — > 1 means `after` is faster.
    pub fn speedup(&self) -> f64 {
        self.before_ns / self.after_ns
    }
}

/// Pairs up benches present in both reports, in `before` order.
pub fn compare(before: &[BenchRecord], after: &[BenchRecord]) -> Vec<Comparison> {
    before
        .iter()
        .filter_map(|b| {
            after.iter().find(|a| a.name == b.name).map(|a| Comparison {
                name: b.name.clone(),
                before_ns: b.median_ns,
                after_ns: a.median_ns,
            })
        })
        .collect()
}

/// Renders a comparison as an aligned text table.
pub fn render_comparison(rows: &[Comparison]) -> String {
    let mut out = format!(
        "{:<48} {:>12} {:>12} {:>9}\n",
        "bench", "before", "after", "speedup"
    );
    for r in rows {
        out.push_str(&format!(
            "{:<48} {:>9.3} ms {:>9.3} ms {:>8.2}x\n",
            r.name,
            r.before_ns / 1e6,
            r.after_ns / 1e6,
            r.speedup(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_duration_units() {
        assert_eq!(parse_duration_ns("12ns"), Some(12.0));
        assert_eq!(parse_duration_ns("603.399µs"), Some(603_399.0));
        assert_eq!(parse_duration_ns("71.250ms"), Some(71_250_000.0));
        assert_eq!(parse_duration_ns("1.004s"), Some(1_004_000_000.0));
        assert_eq!(parse_duration_ns("7.5parsecs"), None);
        assert_eq!(parse_duration_ns("fast"), None);
    }

    #[test]
    fn parses_shim_output_and_skips_noise() {
        let stdout = "\
   Compiling thermal-bench v0.1.0
bench qr_decompose_5760x61                                 20.750ms/iter over 10 iters
bench identify/dense_second-order                           4.396ms/iter over 10 iters
warning: something unrelated
bench malformed line without the shape
";
        let records = parse_bench_output(stdout);
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].name, "qr_decompose_5760x61");
        assert_eq!(records[0].median_ns, 20_750_000.0);
        assert_eq!(records[0].iters, 10);
        assert_eq!(records[1].name, "identify/dense_second-order");
    }

    #[test]
    fn json_document_is_well_formed() {
        let records = vec![
            BenchRecord {
                name: "a/b".to_owned(),
                median_ns: 1234.5,
                iters: 3,
            },
            BenchRecord {
                name: "c".to_owned(),
                median_ns: 5.0,
                iters: 10,
            },
        ];
        let json = render_json("post", "abc1234", 4, "3", &records);
        assert!(json.contains("\"label\": \"post\""));
        assert!(json.contains("\"git_rev\": \"abc1234\""));
        assert!(json.contains("\"threads\": 4"));
        assert!(json.contains("{\"name\": \"a/b\", \"median_ns\": 1234.5, \"iters\": 3},"));
        assert!(json.contains("{\"name\": \"c\", \"median_ns\": 5.0, \"iters\": 10}\n"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn json_escapes_quotes() {
        let json = render_json("a\"b", "rev", 1, "default", &[]);
        assert!(json.contains("a\\\"b"));
    }

    #[test]
    fn report_round_trips_through_parse() {
        let records = vec![
            BenchRecord {
                name: "sweep/fig5_training_horizon".to_owned(),
                median_ns: 123_456.7,
                iters: 10,
            },
            BenchRecord {
                name: "odd \"name\"".to_owned(),
                median_ns: 5.0,
                iters: 3,
            },
        ];
        let json = render_json("pre", "abc1234", 1, "default", &records);
        assert_eq!(parse_report(&json), Ok(records));
    }

    #[test]
    fn legacy_mean_schema_is_rejected() {
        let legacy = "{\n  \"benches\": [\n    \
             {\"name\": \"a\", \"mean_ns\": 1.0, \"iters\": 3}\n  ]\n}\n";
        assert_eq!(parse_report(legacy), Err(ReportError::LegacySchema));
        // A mean/median mix is just as unusable.
        let mixed = "{\n  \"benches\": [\n    \
             {\"name\": \"a\", \"median_ns\": 1.0, \"iters\": 3},\n    \
             {\"name\": \"b\", \"mean_ns\": 2.0, \"iters\": 3}\n  ]\n}\n";
        assert_eq!(parse_report(mixed), Err(ReportError::LegacySchema));
        assert_eq!(parse_report("{}\n"), Err(ReportError::NoBenches));
    }

    #[test]
    fn comparison_pairs_by_name_and_reports_speedup() {
        let before = vec![
            BenchRecord {
                name: "a".to_owned(),
                median_ns: 100.0,
                iters: 10,
            },
            BenchRecord {
                name: "gone".to_owned(),
                median_ns: 1.0,
                iters: 10,
            },
        ];
        let after = vec![BenchRecord {
            name: "a".to_owned(),
            median_ns: 20.0,
            iters: 10,
        }];
        let rows = compare(&before, &after);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].name, "a");
        assert!((rows[0].speedup() - 5.0).abs() < 1e-12);
        let table = render_comparison(&rows);
        assert!(table.contains("speedup"));
        assert!(table.contains("5.00x"));
    }
}
