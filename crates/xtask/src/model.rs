//! Brace-tree scope model over the token stream.
//!
//! [`build`] lexes a source file and annotates every token with the
//! context the rules in `checks.rs` need:
//!
//! - whether the token lies inside a `#[cfg(test)]` region (item body
//!   or the attributed item head itself);
//! - whether it lies inside an attribute (`#[…]` / `#![…]`), so rule
//!   scans never mistake attribute brackets for indexing;
//! - the enclosing `fn` name and `mod` path, for diagnostics.
//!
//! The tracker is a mini-parser, not a full one: a stack of brace
//! frames, pushed on `{` and popped on `}`, plus a pending-item state
//! machine that carries `#[cfg(test)]` / `fn name` / `mod name`
//! forward to the next `{` that opens the item body. Pending state is
//! discarded at a `;` at zero paren/bracket depth (`#[cfg(test)] use
//! …;`, `mod foo;`) — the depth guard keeps a `;` inside `[u8; 4]` in
//! a signature from clearing it early.

use crate::lexer::{lex, LexedFile, Token, TokenKind};

/// Per-token context.
#[derive(Debug, Clone, Copy, Default)]
pub struct TokenCtx {
    /// Token lies in a `#[cfg(test)]` item (head or body).
    pub in_test: bool,
    /// Token lies inside an attribute.
    pub in_attr: bool,
    /// Index into [`FileModel::fns`] of the enclosing function.
    pub fn_idx: Option<u32>,
    /// Index into [`FileModel::mods`] of the enclosing module path.
    pub mod_idx: Option<u32>,
}

/// A lexed file plus per-token scope annotations.
#[derive(Debug)]
pub struct FileModel {
    /// The token stream (see [`crate::lexer`]).
    pub lexed: LexedFile,
    /// Context for each token, same indexing as `lexed.tokens`.
    pub ctx: Vec<TokenCtx>,
    /// Interned function names.
    pub fns: Vec<String>,
    /// Interned module paths (`""` is the crate root; nested modules
    /// join with `::`).
    pub mods: Vec<String>,
}

impl FileModel {
    /// Human-readable location of token `i` ("fn `step`", "mod
    /// `tests`", or "module root").
    pub fn describe(&self, i: usize) -> String {
        let ctx = self.ctx.get(i).copied().unwrap_or_default();
        if let Some(f) = ctx.fn_idx {
            return format!("fn `{}`", self.fns[f as usize]);
        }
        if let Some(m) = ctx.mod_idx {
            return format!("mod `{}`", self.mods[m as usize]);
        }
        "module root".to_owned()
    }
}

#[derive(Clone, Copy)]
struct Frame {
    test: bool,
    fn_idx: Option<u32>,
    mod_idx: Option<u32>,
}

fn intern(pool: &mut Vec<String>, name: &str) -> u32 {
    if let Some(i) = pool.iter().position(|n| n == name) {
        return u32::try_from(i).unwrap_or(u32::MAX);
    }
    pool.push(name.to_owned());
    u32::try_from(pool.len().saturating_sub(1)).unwrap_or(u32::MAX)
}

/// Whether an attribute token slice (from `[` to the matching `]`)
/// gates on `cfg(test)`. `not(test)` is recognised and does NOT count
/// — `#[cfg(not(test))]` code is live library code.
fn attr_is_cfg_test(tokens: &[Token]) -> bool {
    let has_cfg = tokens.iter().any(|t| t.is_ident("cfg"));
    if !has_cfg {
        return false;
    }
    tokens.iter().enumerate().any(|(k, t)| {
        t.is_ident("test")
            && !(k >= 2 && tokens[k - 1].is_punct("(") && tokens[k - 2].is_ident("not"))
    })
}

/// Rust keywords that can precede `[` without it being an index
/// expression (`for x in [..]`, `let [a, b] = ..`, `&mut [T]`).
pub const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "static", "struct", "super", "trait", "true", "type", "unsafe",
    "use", "where", "while", "yield",
];

/// Lexes `src` and builds the scope model.
pub fn build(src: &str) -> FileModel {
    let lexed = lex(src);
    let n = lexed.tokens.len();
    let mut ctx = vec![TokenCtx::default(); n];
    let mut fns: Vec<String> = Vec::new();
    let mut mods: Vec<String> = Vec::new();
    let mut stack = vec![Frame {
        test: false,
        fn_idx: None,
        mod_idx: None,
    }];

    let mut pending_test = false;
    let mut pending_fn: Option<u32> = None;
    let mut pending_mod: Option<u32> = None;
    // Paren/bracket depth since the last statement boundary; a `;`
    // only clears pending item state at depth zero.
    let mut sig_depth = 0_usize;

    let mut i = 0;
    while i < n {
        let toks = &lexed.tokens;
        // Frame the current scope once per token.
        let top = *stack.last().unwrap_or(&Frame {
            test: false,
            fn_idx: None,
            mod_idx: None,
        });

        // Attributes: `#[…]` and `#![…]`, skipped wholesale.
        if toks[i].is_punct("#") {
            let open = if toks.get(i + 1).is_some_and(|t| t.is_punct("[")) {
                Some(i + 1)
            } else if toks.get(i + 1).is_some_and(|t| t.is_punct("!"))
                && toks.get(i + 2).is_some_and(|t| t.is_punct("["))
            {
                Some(i + 2)
            } else {
                None
            };
            if let Some(open) = open {
                let mut depth = 0_usize;
                let mut j = open;
                while j < n {
                    if toks[j].is_punct("[") {
                        depth += 1;
                    } else if toks[j].is_punct("]") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                let end = j.min(n - 1);
                for c in ctx.iter_mut().take(end + 1).skip(i) {
                    *c = TokenCtx {
                        in_test: top.test || pending_test,
                        in_attr: true,
                        fn_idx: top.fn_idx,
                        mod_idx: top.mod_idx,
                    };
                }
                if attr_is_cfg_test(&toks[open..=end]) {
                    pending_test = true;
                }
                i = end + 1;
                continue;
            }
        }

        ctx[i] = TokenCtx {
            in_test: top.test || pending_test,
            in_attr: false,
            fn_idx: top.fn_idx,
            mod_idx: top.mod_idx,
        };

        let t = &toks[i];
        match (t.kind, t.text.as_str()) {
            (TokenKind::Punct, "{") => {
                stack.push(Frame {
                    test: top.test || pending_test,
                    fn_idx: pending_fn.or(top.fn_idx),
                    mod_idx: pending_mod.or(top.mod_idx),
                });
                pending_test = false;
                pending_fn = None;
                pending_mod = None;
                sig_depth = 0;
            }
            (TokenKind::Punct, "}") if stack.len() > 1 => {
                stack.pop();
            }
            (TokenKind::Punct, "(" | "[") => sig_depth += 1,
            (TokenKind::Punct, ")" | "]") => sig_depth = sig_depth.saturating_sub(1),
            (TokenKind::Punct, ";") if sig_depth == 0 => {
                pending_test = false;
                pending_fn = None;
                pending_mod = None;
            }
            (TokenKind::Ident, "fn") => {
                if let Some(name) = toks.get(i + 1).filter(|t| t.kind == TokenKind::Ident) {
                    if !KEYWORDS.contains(&name.text.as_str()) {
                        pending_fn = Some(intern(&mut fns, &name.text));
                    }
                }
            }
            (TokenKind::Ident, "mod") => {
                if let Some(name) = toks.get(i + 1).filter(|t| t.kind == TokenKind::Ident) {
                    let parent = top.mod_idx.map(|m| mods[m as usize].clone());
                    let path = match parent.as_deref() {
                        Some("") | None => name.text.clone(),
                        Some(p) => format!("{p}::{}", name.text),
                    };
                    pending_mod = Some(intern(&mut mods, &path));
                }
            }
            _ => {}
        }
        i += 1;
    }

    FileModel {
        lexed,
        ctx,
        fns,
        mods,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> FileModel {
        build(src)
    }

    fn ctx_of<'m>(m: &'m FileModel, text: &str) -> (&'m Token, TokenCtx) {
        let i = m
            .lexed
            .tokens
            .iter()
            .position(|t| t.text == text)
            .unwrap_or_else(|| panic!("token `{text}` not found"));
        (&m.lexed.tokens[i], m.ctx[i])
    }

    #[test]
    fn cfg_test_mod_body_is_test() {
        let m = model(
            "fn live() { a(); }\n\
             #[cfg(test)]\n\
             mod tests {\n    fn t() { b(); }\n}\n\
             fn live2() { c(); }\n",
        );
        assert!(!ctx_of(&m, "a").1.in_test);
        assert!(ctx_of(&m, "b").1.in_test);
        assert!(!ctx_of(&m, "c").1.in_test);
    }

    #[test]
    fn cfg_test_use_clears_at_semicolon() {
        let m = model("#[cfg(test)]\nuse std::vec::Vec;\nfn live() { a(); }\n");
        assert!(!ctx_of(&m, "a").1.in_test);
    }

    #[test]
    fn semicolon_inside_signature_brackets_does_not_clear() {
        let m = model("#[cfg(test)]\nfn helper(x: [u8; 4]) { b(); }\nfn live() { a(); }\n");
        assert!(ctx_of(&m, "b").1.in_test, "helper body stays test");
        assert!(!ctx_of(&m, "a").1.in_test, "next item is live again");
    }

    #[test]
    fn cfg_not_test_is_live_code() {
        let m = model("#[cfg(not(test))]\nfn live() { a(); }\n");
        assert!(!ctx_of(&m, "a").1.in_test);
    }

    #[test]
    fn attr_tokens_are_marked() {
        let m = model("#[derive(Clone)]\nstruct S { x: u8 }\n");
        assert!(ctx_of(&m, "derive").1.in_attr);
        assert!(ctx_of(&m, "Clone").1.in_attr);
        assert!(!ctx_of(&m, "x").1.in_attr);
    }

    #[test]
    fn fn_and_mod_context_for_diagnostics() {
        let m = model("mod outer {\n    mod inner {\n        fn work() { x(); }\n    }\n}\n");
        let (_, ctx) = ctx_of(&m, "x");
        assert_eq!(m.fns[ctx.fn_idx.unwrap() as usize], "work");
        assert_eq!(m.mods[ctx.mod_idx.unwrap() as usize], "outer::inner");
    }

    #[test]
    fn nested_cfg_test_region_ends_at_matching_brace() {
        let m = model(
            "mod live {\n\
                 #[cfg(test)]\n\
                 mod tests { fn t() { b(); } }\n\
                 fn live_fn() { a(); }\n\
             }\n",
        );
        assert!(ctx_of(&m, "b").1.in_test);
        assert!(!ctx_of(&m, "a").1.in_test);
    }

    #[test]
    fn describe_names_enclosing_scope() {
        let m = model("fn work() { marker(); }\n");
        let i = m
            .lexed
            .tokens
            .iter()
            .position(|t| t.text == "marker")
            .unwrap();
        assert_eq!(m.describe(i), "fn `work`");
    }
}
