//! Custom source-level checks enforcing the workspace conventions
//! described in `DESIGN.md` § static analysis:
//!
//! - `forbidden-call` — no `unwrap`/`expect`/`panic!`-family calls in
//!   library code (`crates/*/src`), outside `#[cfg(test)]` modules.
//! - `module-doc` — every library source file opens with a `//!` doc.
//! - `float-int-cast` — no `as` float→int conversions in numerical
//!   code; use checked/clamped conversions or allowlist with a bounds
//!   rationale.
//! - `error-type` — every crate with an `error.rs` implements both
//!   `Display` and `std::error::Error` for its error type.
//! - `lints-opt-in` — every member crate opts into the workspace lint
//!   wall with `[lints] workspace = true`.
//! - `stale-allow` — allowlist entries must match something; stale
//!   exceptions are themselves violations.
//!
//! The scanner is deliberately line-based (the container has no
//! network access, so `syn` is unavailable); it strips comments and
//! string literals and tracks `#[cfg(test)]` brace regions, which is
//! exact enough for the conventions above.

use crate::allowlist::Allowlist;
use std::fmt;
use std::path::{Path, PathBuf};

/// A single finding of the custom checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line (0 for whole-file findings).
    pub line: usize,
    /// Rule identifier (e.g. `forbidden-call`).
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}: [{}] {}", self.file, self.rule, self.message)
        } else {
            write!(
                f,
                "{}:{}: [{}] {}",
                self.file, self.line, self.rule, self.message
            )
        }
    }
}

/// Panic-family call patterns banned from library code.
const FORBIDDEN_CALLS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
    "dbg!(",
];

/// Integer types the float-cast rule protects against truncation.
const INT_TYPES: &[&str] = &[
    "usize", "u8", "u16", "u32", "u64", "u128", "isize", "i8", "i16", "i32", "i64", "i128",
];

/// Float-producing method calls whose result must not be `as`-cast.
const FLOAT_PRODUCERS: &[&str] = &[".floor()", ".ceil()", ".round()", ".trunc()"];

/// Strips line comments, block comments, and string/char literals,
/// replacing their contents with spaces so byte offsets and brace
/// counts survive. `in_block_comment` carries state across lines.
fn strip_line(line: &str, in_block_comment: &mut bool) -> String {
    let bytes = line.as_bytes();
    let mut out = vec![b' '; bytes.len()];
    let mut i = 0;
    while i < bytes.len() {
        if *in_block_comment {
            if bytes[i..].starts_with(b"*/") {
                *in_block_comment = false;
                i += 2;
            } else {
                i += 1;
            }
            continue;
        }
        match bytes[i] {
            b'/' if bytes[i..].starts_with(b"//") => break,
            b'/' if bytes[i..].starts_with(b"/*") => {
                *in_block_comment = true;
                i += 2;
            }
            b'r' if bytes[i..].starts_with(b"r\"") || bytes[i..].starts_with(b"r#\"") => {
                // Raw string: r"..." or r#"..."# (single-# form only).
                let (open_len, close): (usize, &[u8]) = if bytes[i + 1] == b'#' {
                    (3, b"\"#")
                } else {
                    (2, b"\"")
                };
                i += open_len;
                while i < bytes.len() && !bytes[i..].starts_with(close) {
                    i += 1;
                }
                i = (i + close.len()).min(bytes.len());
            }
            b'"' => {
                i += 1;
                while i < bytes.len() {
                    if bytes[i] == b'\\' {
                        i += 2;
                    } else if bytes[i] == b'"' {
                        i += 1;
                        break;
                    } else {
                        i += 1;
                    }
                }
            }
            b'\'' => {
                // Char literal vs. lifetime: a literal closes with a
                // quote within a few bytes ('x', '\n', '\u{..}').
                let rest = &bytes[i + 1..];
                let close = rest.iter().take(12).position(|&b| b == b'\'');
                // A char literal closes within a few bytes and holds a
                // single char or an escape ('x', '\n', '\u{7f}');
                // anything else ('a in generics, 'static) is a
                // lifetime and only the quote itself is skipped.
                let is_char_literal = close.is_some_and(|p| {
                    let inner = &rest[..p];
                    p > 0 && (inner.len() == 1 || inner[0] == b'\\')
                });
                if let (true, Some(p)) = (is_char_literal, close) {
                    i += p + 2;
                } else {
                    out[i] = b'\'';
                    i += 1;
                }
            }
            b => {
                out[i] = b;
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Per-file scan state for `#[cfg(test)]` region tracking.
struct TestRegionTracker {
    depth: i64,
    pending: bool,
    in_skip: bool,
    skip_until_depth: i64,
}

impl TestRegionTracker {
    fn new() -> Self {
        TestRegionTracker {
            depth: 0,
            pending: false,
            in_skip: false,
            skip_until_depth: 0,
        }
    }

    /// Processes one stripped line; returns true if the line lies in a
    /// `#[cfg(test)]` region (and should not be checked).
    fn process(&mut self, stripped: &str) -> bool {
        let was_skipping = self.in_skip || self.pending;
        if !self.in_skip && stripped.contains("#[cfg(test)]") {
            self.pending = true;
        }
        let mut saw_brace = false;
        for ch in stripped.chars() {
            match ch {
                '{' => {
                    if self.pending {
                        self.skip_until_depth = self.depth;
                        self.pending = false;
                        self.in_skip = true;
                    }
                    saw_brace = true;
                    self.depth += 1;
                }
                '}' => {
                    self.depth -= 1;
                    if self.in_skip && self.depth <= self.skip_until_depth {
                        self.in_skip = false;
                    }
                }
                ';' if self.pending && !saw_brace => {
                    // `#[cfg(test)] use ...;` — item ends without a block.
                    self.pending = false;
                }
                _ => {}
            }
        }
        was_skipping || self.in_skip
    }
}

/// Scans one library source file; pushes findings onto `out`.
///
/// `rel_path` is the workspace-relative path used for reporting and
/// allowlist matching.
pub fn check_source(rel_path: &str, content: &str, allow: &Allowlist, out: &mut Vec<Violation>) {
    // module-doc: first non-empty line must open the module doc.
    let first = content.lines().find(|l| !l.trim().is_empty());
    if let Some(first) = first {
        if !first.trim_start().starts_with("//!") {
            push_unless_allowed(
                out,
                allow,
                rel_path,
                first,
                Violation {
                    file: rel_path.to_owned(),
                    line: 0,
                    rule: "module-doc",
                    message: "library file must open with a `//!` module doc".to_owned(),
                },
            );
        }
    }

    let mut in_block_comment = false;
    let mut tracker = TestRegionTracker::new();
    for (idx, raw) in content.lines().enumerate() {
        let stripped = strip_line(raw, &mut in_block_comment);
        if tracker.process(&stripped) {
            continue;
        }
        for pat in FORBIDDEN_CALLS {
            if stripped.contains(pat) {
                push_unless_allowed(
                    out,
                    allow,
                    rel_path,
                    raw,
                    Violation {
                        file: rel_path.to_owned(),
                        line: idx + 1,
                        rule: "forbidden-call",
                        message: format!(
                            "`{}` in library code; return a typed error instead",
                            pat.trim_start_matches('.')
                        ),
                    },
                );
            }
        }
        for producer in FLOAT_PRODUCERS {
            for ty in INT_TYPES {
                if stripped.contains(&format!("{producer} as {ty}")) {
                    push_unless_allowed(
                        out,
                        allow,
                        rel_path,
                        raw,
                        Violation {
                            file: rel_path.to_owned(),
                            line: idx + 1,
                            rule: "float-int-cast",
                            message: format!(
                                "float result cast `{producer} as {ty}`; use a checked conversion or allowlist with a bounds rationale"
                            ),
                        },
                    );
                }
            }
        }
        for f in ["f64", "f32"] {
            for ty in INT_TYPES {
                if stripped.contains(&format!("{f} as {ty}")) {
                    push_unless_allowed(
                        out,
                        allow,
                        rel_path,
                        raw,
                        Violation {
                            file: rel_path.to_owned(),
                            line: idx + 1,
                            rule: "float-int-cast",
                            message: format!("`{f} as {ty}` truncates; use a checked conversion"),
                        },
                    );
                }
            }
        }
    }
}

fn push_unless_allowed(
    out: &mut Vec<Violation>,
    allow: &Allowlist,
    rel_path: &str,
    raw_line: &str,
    violation: Violation,
) {
    if !allow.covers(rel_path, raw_line, violation.rule) {
        out.push(violation);
    }
}

/// Checks a crate's `Cargo.toml` for the `[lints] workspace = true`
/// opt-in.
pub fn check_lints_opt_in(rel_path: &str, manifest: &str, out: &mut Vec<Violation>) {
    let mut in_lints = false;
    let mut opted_in = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_lints = line == "[lints]";
        } else if in_lints && line.replace(' ', "") == "workspace=true" {
            opted_in = true;
        }
    }
    if !opted_in {
        out.push(Violation {
            file: rel_path.to_owned(),
            line: 0,
            rule: "lints-opt-in",
            message: "crate must opt into the workspace lint wall with `[lints] workspace = true`"
                .to_owned(),
        });
    }
}

/// Checks a crate's `error.rs` for `Display` + `std::error::Error`
/// implementations.
pub fn check_error_type(rel_path: &str, content: &str, out: &mut Vec<Violation>) {
    let has_display = content.contains("Display for");
    let has_error = content.contains("std::error::Error for")
        || content.contains("error::Error for")
        || content.contains("impl Error for");
    if !has_display {
        out.push(Violation {
            file: rel_path.to_owned(),
            line: 0,
            rule: "error-type",
            message: "crate error type must implement `std::fmt::Display`".to_owned(),
        });
    }
    if !has_error {
        out.push(Violation {
            file: rel_path.to_owned(),
            line: 0,
            rule: "error-type",
            message: "crate error type must implement `std::error::Error`".to_owned(),
        });
    }
}

fn walk_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            walk_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out.sort();
    Ok(())
}

/// Runs every check over the workspace rooted at `root`; returns all
/// findings (empty = gate passes).
pub fn run_workspace(root: &Path) -> std::io::Result<Vec<Violation>> {
    let allow_path = root.join("xtask").join("lint-allow.toml");
    let allow = if allow_path.exists() {
        let text = std::fs::read_to_string(&allow_path)?;
        match Allowlist::parse(&text) {
            Ok(a) => a,
            Err(e) => {
                return Ok(vec![Violation {
                    file: "xtask/lint-allow.toml".to_owned(),
                    line: e.line,
                    rule: "allowlist",
                    message: e.message,
                }]);
            }
        }
    } else {
        Allowlist::default()
    };

    let mut violations = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir() && p.join("Cargo.toml").exists())
        .collect();
    crate_dirs.sort();

    for crate_dir in &crate_dirs {
        let rel = |p: &Path| -> String {
            p.strip_prefix(root)
                .unwrap_or(p)
                .to_string_lossy()
                .replace('\\', "/")
        };
        let manifest_path = crate_dir.join("Cargo.toml");
        let manifest = std::fs::read_to_string(&manifest_path)?;
        check_lints_opt_in(&rel(&manifest_path), &manifest, &mut violations);

        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        walk_rs_files(&src, &mut files)?;
        for file in &files {
            let content = std::fs::read_to_string(file)?;
            let rel_path = rel(file);
            check_source(&rel_path, &content, &allow, &mut violations);
            if file.file_name().is_some_and(|n| n == "error.rs") {
                check_error_type(&rel_path, &content, &mut violations);
            }
        }
    }

    for entry in allow.unused() {
        violations.push(Violation {
            file: "xtask/lint-allow.toml".to_owned(),
            line: 0,
            rule: "stale-allow",
            message: format!(
                "entry (path = \"{}\", pattern = \"{}\") matched nothing; remove it",
                entry.path, entry.pattern
            ),
        });
    }

    Ok(violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(content: &str) -> Vec<Violation> {
        let allow = Allowlist::default();
        let mut out = Vec::new();
        check_source("crates/demo/src/lib.rs", content, &allow, &mut out);
        out
    }

    #[test]
    fn flags_unwrap_in_library_code() {
        let v = scan("//! doc\nfn f() { x.unwrap(); }\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "forbidden-call");
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn flags_every_forbidden_pattern() {
        for call in [
            "x.unwrap()",
            "x.expect(\"m\")",
            "panic!(\"m\")",
            "unreachable!()",
            "todo!()",
            "unimplemented!()",
            "dbg!(x)",
        ] {
            let v = scan(&format!("//! doc\nfn f() {{ {call}; }}\n"));
            assert_eq!(v.len(), 1, "expected one finding for `{call}`");
        }
    }

    #[test]
    fn ignores_test_modules() {
        let v = scan(
            "//! doc\n\
             fn f() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 #[test]\n\
                 fn t() { x.unwrap(); panic!(\"boom\"); }\n\
             }\n",
        );
        assert!(v.is_empty(), "test module should be exempt: {v:?}");
    }

    #[test]
    fn resumes_checking_after_test_module() {
        let v = scan(
            "//! doc\n\
             #[cfg(test)]\n\
             mod tests { fn t() { x.unwrap(); } }\n\
             fn g() { y.unwrap(); }\n",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 4);
    }

    #[test]
    fn ignores_comments_and_strings() {
        let v = scan(
            "//! doc\n\
             // calling x.unwrap() would be bad\n\
             /* panic!(\"no\") */\n\
             fn f() { let s = \"don't panic!(here)\"; let _ = s; }\n",
        );
        assert!(v.is_empty(), "comments/strings should be exempt: {v:?}");
    }

    #[test]
    fn flags_float_int_casts() {
        let v = scan("//! doc\nfn f(x: f64) -> usize { x.floor() as usize }\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "float-int-cast");
    }

    #[test]
    fn missing_module_doc_flagged() {
        let v = scan("fn f() {}\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "module-doc");
    }

    #[test]
    fn allowlist_suppresses_and_budget_enforced() {
        let allow = Allowlist::parse(
            "[[allow]]\npath = \"crates/demo/src/lib.rs\"\npattern = \".unwrap()\"\nreason = \"r\"\ncount = 1\n",
        )
        .unwrap();
        let mut out = Vec::new();
        check_source(
            "crates/demo/src/lib.rs",
            "//! doc\nfn f() { a.unwrap(); }\nfn g() { b.unwrap(); }\n",
            &allow,
            &mut out,
        );
        assert_eq!(out.len(), 1, "second occurrence exceeds count budget");
        assert_eq!(out[0].line, 3);
    }

    #[test]
    fn lints_opt_in_detected() {
        let mut out = Vec::new();
        check_lints_opt_in("a/Cargo.toml", "[package]\nname = \"a\"\n", &mut out);
        assert_eq!(out.len(), 1);
        out.clear();
        check_lints_opt_in(
            "a/Cargo.toml",
            "[package]\nname = \"a\"\n\n[lints]\nworkspace = true\n",
            &mut out,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn error_type_impls_required() {
        let mut out = Vec::new();
        check_error_type("a/src/error.rs", "pub enum Error {}\n", &mut out);
        assert_eq!(out.len(), 2);
        out.clear();
        check_error_type(
            "a/src/error.rs",
            "impl fmt::Display for Error {}\nimpl std::error::Error for Error {}\n",
            &mut out,
        );
        assert!(out.is_empty());
    }
}
