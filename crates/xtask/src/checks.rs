//! The token-level static-analysis engine behind `cargo xtask lint`.
//!
//! Rules enforce the workspace conventions in `DESIGN.md` § static
//! analysis v2. All source rules run over the token stream produced
//! by [`crate::lexer`] with the scope annotations of
//! [`crate::model`] — string/comment contents can never false-match,
//! `#[cfg(test)]` regions are exempt, and every finding carries an
//! exact line/column span.
//!
//! Long-standing rules (re-implemented on tokens):
//!
//! - `forbidden-call` — no `unwrap`/`expect`/`panic!`-family calls in
//!   library code.
//! - `module-doc` — every library source file opens with a `//!` doc.
//! - `float-int-cast` — no `as` float→int conversions.
//! - `error-type` — every `error.rs` implements `Display` and
//!   `std::error::Error`.
//! - `lints-opt-in` — every member crate opts into the workspace lint
//!   wall.
//! - `stale-allow` — allowlist *and* baseline entries must match
//!   something.
//!
//! Determinism family (rule family A):
//!
//! - `unordered-container` — no `HashMap`/`HashSet` in library
//!   crates; their iteration order is seeded per-process and breaks
//!   the bitwise-reproducibility contract.
//! - `ambient-authority` — no `Instant::now`/`SystemTime::now`
//!   outside [`CLOCK_MODULES`], no `env::var` outside
//!   [`CONFIG_MODULES`], no `thread::current` identity reads at all.
//! - `float-reduction-order` — no `.values()`/`.keys()`-style
//!   iteration flowing into a float reduction (`sum`/`product`/
//!   `fold`) in one method chain; float addition is non-associative,
//!   so the reduction order must be an indexed, stable one.
//!
//! Panic-reachability family (rule family B), scoped to
//! [`HOT_PATH_MODULES`]:
//!
//! - `hot-path-index` — `[]` indexing (including partial-range
//!   slicing) panics on a bad bound; use `get`/iterators/split
//!   borrows, or record an audited bounds rationale in the baseline.
//!   A full-range `[..]` cannot panic and is exempt.
//! - `hot-path-arith` — unchecked `+ - * /` *inside an index
//!   expression*: overflow in the index computation aborts before the
//!   bounds check ever runs, so these must be `checked_*`/
//!   `wrapping_*` or audited. (Scoping to index expressions is
//!   deliberate: a token engine cannot see types, and flagging all
//!   arithmetic would drown the float kernels in noise — see
//!   DESIGN.md.)
//! - `hot-path-alloc` — allocation-acquiring calls (`Vec::new`,
//!   `vec!`, `.to_vec()`, `.clone()`, `Box::new`, `String::from`) in
//!   the [`STEADY_STATE_MODULES`], which carry the zero-allocation
//!   serving budget of DESIGN.md § allocation budget. Constructor and
//!   refit allocations that predate the budget live in the ratcheted
//!   baseline; the runtime proof is
//!   `crates/stream/tests/alloc_free.rs`.
//!
//! In files that implement the `Snapshot` trait, the bodies of
//! `fn capture` / `fn restore` are exempt from family B: the snapshot
//! codec runs once per snapshot boundary (tens of slots apart), never
//! in the per-event serving loop, so the zero-allocation and
//! no-panic-index budgets do not apply there.
//!
//! Findings are never silently dropped: allowlist- and
//! baseline-suppressed findings stay in the report with their
//! suppression recorded, and only *active* findings fail the gate.

use crate::allowlist::Allowlist;
use crate::baseline::{self, Baseline, BASELINE_PATH};
use crate::json::escape;
use crate::lexer::{lex, Token, TokenKind};
use crate::model::{build, TokenCtx, KEYWORDS};
use std::fmt;
use std::path::{Path, PathBuf};

/// Path prefixes allowed to read wall clocks (`Instant::now`,
/// `SystemTime::now`): the benchmark / reproduction binaries, whose
/// job is to measure wall time. Designate a new clock module by
/// adding its workspace-relative path prefix here.
pub const CLOCK_MODULES: &[&str] = &["crates/bench/src/bin/"];

/// Path prefixes allowed to read the process environment
/// (`env::var`): the two designated configuration surfaces — the
/// `thermal-par` thread-count pin and the `thermal-faults` kill-point
/// switch. Everything else must take configuration as arguments.
pub const CONFIG_MODULES: &[&str] = &["crates/par/src/lib.rs", "crates/faults/src/killpoint.rs"];

/// Path prefixes carrying snapshot capture/restore code, where
/// wall-clock reads are findings **even inside a designated clock
/// module**: a wall timestamp folded into a snapshot record would
/// break the restore-equivalence byte comparisons of
/// `cargo xtask chaos --stream|--fleet` (see DESIGN.md
/// § restore-equivalence). Snapshot timestamping must come from the
/// simulated clock ([`SimClock`] state travels inside the snapshot).
pub const SNAPSHOT_MODULES: &[&str] = &[
    "crates/ckpt/src/snapshot.rs",
    "crates/ckpt/src/breaker.rs",
    "crates/bench/src/bin/soak.rs",
    "crates/fleet/src/orchestrator.rs",
    "crates/fleet/src/shard.rs",
];

/// Path prefixes where reachable panics are findings (rule family B):
/// the streaming ingest path and the dense kernels.
pub const HOT_PATH_MODULES: &[&str] = &[
    "crates/stream/src/service.rs",
    "crates/stream/src/reorder.rs",
    "crates/stream/src/health.rs",
    "crates/linalg/src/matrix.rs",
    "crates/par/src/lib.rs",
];

/// Path prefixes under the steady-state allocation budget (rule
/// `hot-path-alloc`): the modules a warmed-up `StreamService` event —
/// `step` + `predict_into` — executes. Allocation-acquiring calls
/// here are findings; constructor/warm-up allocations are absorbed by
/// the ratcheted baseline, which only ever shrinks (see DESIGN.md
/// § allocation budget and `crates/stream/tests/alloc_free.rs` for
/// the runtime proof).
pub const STEADY_STATE_MODULES: &[&str] = &[
    "crates/stream/src/reorder.rs",
    "crates/stream/src/queue.rs",
    "crates/stream/src/health.rs",
    "crates/stream/src/drift.rs",
    "crates/stream/src/service.rs",
    "crates/stream/src/online.rs",
];

/// How a reported finding was suppressed, if at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Suppression {
    /// Covered by an `xtask/lint-allow.toml` entry.
    Allowlist,
    /// Covered by an `xtask/lint-baseline.json` entry.
    Baseline,
}

impl Suppression {
    /// Canonical report spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Suppression::Allowlist => "allowlist",
            Suppression::Baseline => "baseline",
        }
    }
}

/// A single finding of the analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line (0 for whole-file findings).
    pub line: usize,
    /// 1-based byte column (0 for whole-line findings).
    pub column: usize,
    /// Span length in bytes (0 when no precise span exists).
    pub len: usize,
    /// Rule identifier (e.g. `hot-path-index`).
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
    /// Trimmed source line at the finding (empty for whole-file
    /// findings) — what baseline entries pin against.
    pub snippet: String,
    /// How the finding is suppressed (`None` = active, fails the
    /// gate).
    pub suppression: Option<Suppression>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.line, self.column) {
            (0, _) => write!(f, "{}: [{}] {}", self.file, self.rule, self.message),
            (l, 0) => write!(f, "{}:{}: [{}] {}", self.file, l, self.rule, self.message),
            (l, c) => write!(
                f,
                "{}:{}:{}: [{}] {}",
                self.file, l, c, self.rule, self.message
            ),
        }
    }
}

/// Panic-family macros banned from library code.
const FORBIDDEN_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented", "dbg"];

/// Integer types the float-cast rule protects against truncation.
const INT_TYPES: &[&str] = &[
    "usize", "u8", "u16", "u32", "u64", "u128", "isize", "i8", "i16", "i32", "i64", "i128",
];

/// Float-producing methods whose result must not be `as`-cast.
const FLOAT_PRODUCERS: &[&str] = &["floor", "ceil", "round", "trunc"];

/// Chain heads that iterate a container in storage order.
const REDUCTION_SOURCES: &[&str] = &["values", "into_values", "keys", "into_keys"];

/// Reductions that are order-sensitive over floats.
const REDUCTIONS: &[&str] = &["sum", "product", "fold"];

fn path_in(rel_path: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| rel_path.starts_with(p))
}

fn is_indexable(prev: &Token) -> bool {
    match prev.kind {
        TokenKind::Ident => !KEYWORDS.contains(&prev.text.as_str()),
        TokenKind::Punct => matches!(prev.text.as_str(), ")" | "]" | "?"),
        _ => false,
    }
}

/// Index of the `]` matching the `[` at `open`, if any.
fn matching_bracket(toks: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0_usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct("[") {
            depth += 1;
        } else if t.is_punct("]") {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Index just past the `)` matching the `(` at `open` (or end of
/// stream when unbalanced).
fn skip_parens(toks: &[Token], open: usize) -> usize {
    let mut depth = 0_usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct("(") {
            depth += 1;
        } else if t.is_punct(")") {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
    }
    toks.len()
}

/// Index just past a turbofish generic list starting at the `<` at
/// `open`. `<<`/`>>` count double; `->` counts zero.
fn skip_angles(toks: &[Token], open: usize) -> usize {
    let mut depth = 0_i64;
    for (j, t) in toks.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "<" => depth += 1,
            "<<" => depth += 2,
            ">" => depth -= 1,
            ">>" => depth -= 2,
            _ => {}
        }
        if depth <= 0 {
            return j + 1;
        }
    }
    toks.len()
}

/// Scans one library source file; pushes findings (with allowlist
/// suppression already applied) onto `out`.
///
/// `rel_path` is the workspace-relative path used for reporting,
/// rule designation ([`CLOCK_MODULES`] etc.) and allowlist matching.
pub fn check_source(rel_path: &str, content: &str, allow: &Allowlist, out: &mut Vec<Finding>) {
    let model = build(content);
    let lines: Vec<&str> = content.lines().collect();
    let first_nonempty = lines
        .iter()
        .copied()
        .find(|l| !l.trim().is_empty())
        .unwrap_or("");

    let mut push = |line: usize, column: usize, len: usize, rule: &'static str, message: String| {
        let line_text = if line >= 1 {
            lines.get(line - 1).copied().unwrap_or("")
        } else {
            first_nonempty
        };
        let suppression = allow
            .covers(rel_path, line_text, rule)
            .then_some(Suppression::Allowlist);
        out.push(Finding {
            file: rel_path.to_owned(),
            line,
            column,
            len,
            rule,
            message,
            snippet: line_text.trim().to_owned(),
            suppression,
        });
    };

    // module-doc: whole-file finding.
    if !model.lexed.has_module_doc {
        push(
            0,
            0,
            0,
            "module-doc",
            "library file must open with a `//!` module doc".to_owned(),
        );
    }

    // Snapshot modules revoke a clock designation: even a bench
    // binary allowed to measure wall time must not fold it into
    // snapshot records.
    let in_clock = path_in(rel_path, CLOCK_MODULES) && !path_in(rel_path, SNAPSHOT_MODULES);
    let in_config = path_in(rel_path, CONFIG_MODULES);
    let hot = path_in(rel_path, HOT_PATH_MODULES);
    let steady = path_in(rel_path, STEADY_STATE_MODULES);

    let toks = &model.lexed.tokens;
    let n = toks.len();

    // Snapshot codec fns are cold path: `capture`/`restore` run once
    // per snapshot boundary (tens of slots apart), never per event,
    // so the steady-state allocation and hot-path indexing budgets do
    // not apply inside them. Scoped to files that implement the
    // `Snapshot` trait so an unrelated `fn restore` stays budgeted.
    let snapshot_codec_file = (0..n.saturating_sub(1))
        .any(|i| toks[i].is_ident("impl") && toks[i + 1].is_ident("Snapshot"));
    let in_snapshot_codec = |ctx: TokenCtx| {
        snapshot_codec_file
            && ctx.fn_idx.is_some_and(|f| {
                matches!(
                    model.fns.get(f as usize).map(String::as_str),
                    Some("capture" | "restore")
                )
            })
    };

    for i in 0..n {
        let ctx = model.ctx[i];
        if ctx.in_test || ctx.in_attr {
            continue;
        }
        let t = &toks[i];
        let at = |len: usize| (t.line, t.col, len);
        let prev = i.checked_sub(1).map(|p| &toks[p]);
        let next = |k: usize| toks.get(i + k);

        if t.kind == TokenKind::Ident {
            let name = t.text.as_str();

            // forbidden-call: `.unwrap(` / `.expect(` and the
            // panic-family macros.
            if matches!(name, "unwrap" | "expect")
                && prev.is_some_and(|p| p.is_punct("."))
                && next(1).is_some_and(|p| p.is_punct("("))
            {
                let (line, col, len) = at(t.text.len());
                push(
                    line,
                    col,
                    len,
                    "forbidden-call",
                    format!("`.{name}(..)` in library code; return a typed error instead"),
                );
            }
            if FORBIDDEN_MACROS.contains(&name) && next(1).is_some_and(|p| p.is_punct("!")) {
                let (line, col, len) = at(t.text.len());
                push(
                    line,
                    col,
                    len,
                    "forbidden-call",
                    format!("`{name}!` in library code; return a typed error instead"),
                );
            }

            // float-int-cast: `.floor() as usize` and `as f64 as u32`.
            if FLOAT_PRODUCERS.contains(&name)
                && prev.is_some_and(|p| p.is_punct("."))
                && next(1).is_some_and(|p| p.is_punct("("))
                && next(2).is_some_and(|p| p.is_punct(")"))
                && next(3).is_some_and(|p| p.is_ident("as"))
                && next(4).is_some_and(|p| {
                    p.kind == TokenKind::Ident && INT_TYPES.contains(&p.text.as_str())
                })
            {
                let ty = &next(4).map(|p| p.text.clone()).unwrap_or_default();
                let (line, col, len) = at(t.text.len());
                push(
                    line,
                    col,
                    len,
                    "float-int-cast",
                    format!(
                        "float result cast `.{name}() as {ty}`; use a checked conversion or allowlist with a bounds rationale"
                    ),
                );
            }
            if matches!(name, "f64" | "f32")
                && next(1).is_some_and(|p| p.is_ident("as"))
                && next(2).is_some_and(|p| {
                    p.kind == TokenKind::Ident && INT_TYPES.contains(&p.text.as_str())
                })
            {
                let ty = &next(2).map(|p| p.text.clone()).unwrap_or_default();
                let (line, col, len) = at(t.text.len());
                push(
                    line,
                    col,
                    len,
                    "float-int-cast",
                    format!("`{name} as {ty}` truncates; use a checked conversion"),
                );
            }

            // unordered-container (family A).
            if matches!(name, "HashMap" | "HashSet") {
                let ordered = if name == "HashMap" {
                    "BTreeMap"
                } else {
                    "BTreeSet"
                };
                let (line, col, len) = at(t.text.len());
                push(
                    line,
                    col,
                    len,
                    "unordered-container",
                    format!(
                        "`{name}` iteration order is nondeterministic; use `{ordered}` or allowlist with a rationale"
                    ),
                );
            }

            // ambient-authority (family A).
            let path2 = |a: &str, b: &str| {
                t.is_ident(a)
                    && next(1).is_some_and(|p| p.is_punct("::"))
                    && next(2).is_some_and(|p| p.is_ident(b))
            };
            if !in_clock && (path2("Instant", "now") || path2("SystemTime", "now")) {
                let (line, col, len) = at(t.text.len());
                push(
                    line,
                    col,
                    len,
                    "ambient-authority",
                    format!(
                        "wall-clock read `{name}::now` outside a designated clock module (see CLOCK_MODULES in xtask); hoist the read to the caller, in {}",
                        model.describe(i)
                    ),
                );
            }
            if !in_config
                && name == "env"
                && next(1).is_some_and(|p| p.is_punct("::"))
                && next(2).is_some_and(|p| p.is_ident("var") || p.is_ident("var_os"))
            {
                let (line, col, len) = at(t.text.len());
                push(
                    line,
                    col,
                    len,
                    "ambient-authority",
                    format!(
                        "environment read `env::var` outside a designated config module (see CONFIG_MODULES in xtask); pass configuration as an argument, in {}",
                        model.describe(i)
                    ),
                );
            }
            // hot-path-alloc (family B): allocation acquisition in a
            // steady-state stream module. Constructor-time and
            // refit-time allocations that predate the budget live in
            // the ratcheted baseline; new ones are findings. Snapshot
            // capture/restore is boundary-rate, not event-rate.
            if steady && !in_snapshot_codec(ctx) {
                if path2("Vec", "new") || path2("Box", "new") || path2("String", "from") {
                    let (line, col, len) = at(t.text.len());
                    let callee = next(2).map(|p| p.text.clone()).unwrap_or_default();
                    push(
                        line,
                        col,
                        len,
                        "hot-path-alloc",
                        format!(
                            "`{name}::{callee}` allocates in a steady-state stream module (see STEADY_STATE_MODULES in xtask); reuse a scratch buffer sized at construction — DESIGN.md § allocation budget, in {}",
                            model.describe(i)
                        ),
                    );
                }
                if name == "vec" && next(1).is_some_and(|p| p.is_punct("!")) {
                    let (line, col, len) = at(t.text.len());
                    push(
                        line,
                        col,
                        len,
                        "hot-path-alloc",
                        format!(
                            "`vec!` allocates in a steady-state stream module; reuse a scratch buffer sized at construction — DESIGN.md § allocation budget, in {}",
                            model.describe(i)
                        ),
                    );
                }
                if matches!(name, "to_vec" | "clone")
                    && prev.is_some_and(|p| p.is_punct("."))
                    && next(1).is_some_and(|p| p.is_punct("("))
                {
                    let (line, col, len) = at(t.text.len());
                    push(
                        line,
                        col,
                        len,
                        "hot-path-alloc",
                        format!(
                            "`.{name}()` may allocate in a steady-state stream module; copy into a reused buffer (`clone_from`/`copy_from_slice`) instead — DESIGN.md § allocation budget, in {}",
                            model.describe(i)
                        ),
                    );
                }
            }

            if path2("thread", "current") {
                let (line, col, len) = at(t.text.len());
                push(
                    line,
                    col,
                    len,
                    "ambient-authority",
                    format!(
                        "`thread::current` identity read; output must not depend on scheduling, in {}",
                        model.describe(i)
                    ),
                );
            }

            // float-reduction-order (family A): a chain starting at a
            // storage-order iterator and ending in an order-sensitive
            // reduction.
            if REDUCTION_SOURCES.contains(&name)
                && prev.is_some_and(|p| p.is_punct("."))
                && next(1).is_some_and(|p| p.is_punct("("))
                && next(2).is_some_and(|p| p.is_punct(")"))
            {
                let mut j = i + 3;
                while j < n {
                    if toks[j].is_punct("?") {
                        j += 1;
                        continue;
                    }
                    if !toks[j].is_punct(".") {
                        break;
                    }
                    let Some(m) = toks.get(j + 1).filter(|m| m.kind == TokenKind::Ident) else {
                        break;
                    };
                    // Optional turbofish, then the call parens.
                    let mut k = j + 2;
                    if toks.get(k).is_some_and(|p| p.is_punct("::"))
                        && toks.get(k + 1).is_some_and(|p| p.is_punct("<"))
                    {
                        k = skip_angles(toks, k + 1);
                    }
                    if !toks.get(k).is_some_and(|p| p.is_punct("(")) {
                        // Field access / `.await`: keep walking.
                        j += 2;
                        continue;
                    }
                    if REDUCTIONS.contains(&m.text.as_str()) {
                        push(
                            m.line,
                            m.col,
                            m.text.len(),
                            "float-reduction-order",
                            format!(
                                "`.{name}()` iteration feeding `.{}()`; float reductions must run in an indexed, stable order — collect into a sorted order first",
                                m.text
                            ),
                        );
                        break;
                    }
                    j = skip_parens(toks, k);
                }
            }
        }

        // hot-path rules (family B). Snapshot codec fns are exempt:
        // they run at snapshot boundaries, not in the per-event loop.
        if hot && !in_snapshot_codec(ctx) && t.is_punct("[") && prev.is_some_and(is_indexable) {
            let close = matching_bracket(toks, i).unwrap_or(n.saturating_sub(1));
            let inner = &toks[i + 1..close];
            let full_range = inner.len() == 1 && inner[0].is_punct("..");
            if !full_range {
                push(
                    t.line,
                    t.col,
                    1,
                    "hot-path-index",
                    format!(
                        "`[]` indexing in a designated hot-path module; use `get`/iterators/split borrows, or record an audited bounds rationale in the baseline, in {}",
                        model.describe(i)
                    ),
                );
            }
            // Unchecked arithmetic inside this index expression, at
            // this bracket's own nesting level (nested `[` regions are
            // scanned when the outer loop reaches them).
            let mut nested = 0_usize;
            for (off, it) in inner.iter().enumerate() {
                if it.is_punct("[") {
                    nested += 1;
                } else if it.is_punct("]") {
                    nested = nested.saturating_sub(1);
                }
                if nested > 0 {
                    continue;
                }
                if it.kind == TokenKind::Punct && matches!(it.text.as_str(), "+" | "-" | "*" | "/")
                {
                    let binary = off > 0
                        && match &inner[off - 1] {
                            p if p.kind == TokenKind::Ident => !KEYWORDS.contains(&p.text.as_str()),
                            p if p.kind == TokenKind::Num => true,
                            p => p.is_punct(")") || p.is_punct("]"),
                        };
                    if binary {
                        push(
                            it.line,
                            it.col,
                            it.text.len(),
                            "hot-path-arith",
                            format!(
                                "unchecked `{}` inside an index expression; overflow panics before the bounds check — use `checked_*`/`wrapping_*` or record an audited rationale, in {}",
                                it.text,
                                model.describe(i)
                            ),
                        );
                    }
                }
            }
        }
    }
}

/// Checks a crate's `Cargo.toml` for the `[lints] workspace = true`
/// opt-in.
pub fn check_lints_opt_in(rel_path: &str, manifest: &str, out: &mut Vec<Finding>) {
    let mut in_lints = false;
    let mut opted_in = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_lints = line == "[lints]";
        } else if in_lints && line.replace(' ', "") == "workspace=true" {
            opted_in = true;
        }
    }
    if !opted_in {
        out.push(Finding {
            file: rel_path.to_owned(),
            line: 0,
            column: 0,
            len: 0,
            rule: "lints-opt-in",
            message: "crate must opt into the workspace lint wall with `[lints] workspace = true`"
                .to_owned(),
            snippet: String::new(),
            suppression: None,
        });
    }
}

/// Checks a crate's `error.rs` for `Display` + `std::error::Error`
/// implementations (token-level, so a doc comment mentioning
/// `Display for` no longer satisfies it).
pub fn check_error_type(rel_path: &str, content: &str, out: &mut Vec<Finding>) {
    let lexed = lex(content);
    let toks = &lexed.tokens;
    let impl_pair = |trait_name: &str| {
        toks.windows(2)
            .any(|w| w[0].is_ident(trait_name) && w[1].is_ident("for"))
    };
    let mut missing = |message: &str| {
        out.push(Finding {
            file: rel_path.to_owned(),
            line: 0,
            column: 0,
            len: 0,
            rule: "error-type",
            message: message.to_owned(),
            snippet: String::new(),
            suppression: None,
        });
    };
    if !impl_pair("Display") {
        missing("crate error type must implement `std::fmt::Display`");
    }
    if !impl_pair("Error") {
        missing("crate error type must implement `std::error::Error`");
    }
}

fn walk_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            walk_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out.sort();
    Ok(())
}

/// The full result of a lint run: every finding, suppressed or not,
/// in canonical order.
#[derive(Debug, Default)]
pub struct LintReport {
    /// All findings, sorted by (file, line, column, rule, message).
    pub findings: Vec<Finding>,
}

impl LintReport {
    /// Findings that fail the gate.
    pub fn active(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.suppression.is_none())
    }

    /// (active, allowlisted, baselined) counts.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for f in &self.findings {
            match f.suppression {
                None => c.0 += 1,
                Some(Suppression::Allowlist) => c.1 += 1,
                Some(Suppression::Baseline) => c.2 += 1,
            }
        }
        c
    }

    /// Renders the canonical machine-readable report (SARIF-lite).
    /// Byte-identical across runs on identical input: fixed key
    /// order, sorted findings, no timestamps.
    pub fn render_json(&self) -> String {
        let (active, allowlisted, baselined) = self.counts();
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"xtask-lint/1\",\n");
        out.push_str(&format!(
            "  \"summary\": {{ \"active\": {active}, \"allowlisted\": {allowlisted}, \"baselined\": {baselined} }},\n"
        ));
        if self.findings.is_empty() {
            out.push_str("  \"findings\": []\n");
        } else {
            out.push_str("  \"findings\": [\n");
            for (i, f) in self.findings.iter().enumerate() {
                out.push_str(&format!(
                    "    {{ \"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"column\": {}, \"length\": {}, \"message\": \"{}\", \"snippet\": \"{}\", \"suppression\": \"{}\" }}{}\n",
                    escape(f.rule),
                    escape(&f.file),
                    f.line,
                    f.column,
                    f.len,
                    escape(&f.message),
                    escape(&f.snippet),
                    f.suppression.map_or("none", Suppression::as_str),
                    if i + 1 < self.findings.len() { "," } else { "" }
                ));
            }
            out.push_str("  ]\n");
        }
        out.push_str("}\n");
        out
    }
}

fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.column, a.rule, &a.message)
            .cmp(&(&b.file, b.line, b.column, b.rule, &b.message))
    });
}

/// Walks the workspace and produces findings with *allowlist*
/// suppression applied (the baseline layer is added by
/// [`run_workspace`]).
fn collect(root: &Path) -> std::io::Result<Vec<Finding>> {
    let allow_path = root.join("xtask").join("lint-allow.toml");
    let allow = if allow_path.exists() {
        let text = std::fs::read_to_string(&allow_path)?;
        match Allowlist::parse(&text) {
            Ok(a) => a,
            Err(e) => {
                return Ok(vec![Finding {
                    file: "xtask/lint-allow.toml".to_owned(),
                    line: e.line,
                    column: 0,
                    len: 0,
                    rule: "allowlist",
                    message: e.message,
                    snippet: String::new(),
                    suppression: None,
                }]);
            }
        }
    } else {
        Allowlist::default()
    };

    let mut findings = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir() && p.join("Cargo.toml").exists())
        .collect();
    crate_dirs.sort();

    for crate_dir in &crate_dirs {
        let rel = |p: &Path| -> String {
            p.strip_prefix(root)
                .unwrap_or(p)
                .to_string_lossy()
                .replace('\\', "/")
        };
        let manifest_path = crate_dir.join("Cargo.toml");
        let manifest = std::fs::read_to_string(&manifest_path)?;
        check_lints_opt_in(&rel(&manifest_path), &manifest, &mut findings);

        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        walk_rs_files(&src, &mut files)?;
        for file in &files {
            let content = std::fs::read_to_string(file)?;
            let rel_path = rel(file);
            check_source(&rel_path, &content, &allow, &mut findings);
            if file.file_name().is_some_and(|n| n == "error.rs") {
                check_error_type(&rel_path, &content, &mut findings);
            }
        }
    }

    for entry in allow.unused() {
        findings.push(Finding {
            file: "xtask/lint-allow.toml".to_owned(),
            line: 0,
            column: 0,
            len: 0,
            rule: "stale-allow",
            message: format!(
                "entry (path = \"{}\", pattern = \"{}\") matched nothing; remove it",
                entry.path, entry.pattern
            ),
            snippet: String::new(),
            suppression: None,
        });
    }

    Ok(findings)
}

/// Runs every check over the workspace rooted at `root`, applying
/// both suppression layers (allowlist, then baseline) and reporting
/// stale entries of either as findings.
pub fn run_workspace(root: &Path) -> std::io::Result<LintReport> {
    let mut findings = collect(root)?;
    let bpath = root.join(BASELINE_PATH);
    if bpath.exists() {
        match Baseline::parse(&std::fs::read_to_string(&bpath)?) {
            Ok(base) => {
                for f in findings.iter_mut() {
                    if f.suppression.is_none()
                        && !matches!(f.rule, "stale-allow" | "allowlist")
                        && base.covers(f.rule, &f.file, f.line, f.column, &f.snippet)
                    {
                        f.suppression = Some(Suppression::Baseline);
                    }
                }
                for e in base.unused() {
                    findings.push(Finding {
                        file: BASELINE_PATH.to_owned(),
                        line: 0,
                        column: 0,
                        len: 0,
                        rule: "stale-allow",
                        message: format!(
                            "baseline entry ({e}) no longer matches; run `cargo xtask lint --update-baseline`"
                        ),
                        snippet: String::new(),
                        suppression: None,
                    });
                }
            }
            Err(e) => findings.push(Finding {
                file: BASELINE_PATH.to_owned(),
                line: e.line,
                column: 0,
                len: 0,
                rule: "baseline",
                message: e.message,
                snippet: String::new(),
                suppression: None,
            }),
        }
    }
    sort_findings(&mut findings);
    Ok(LintReport { findings })
}

/// Result of `cargo xtask lint --update-baseline`.
#[derive(Debug)]
pub enum BaselineUpdate {
    /// Baseline rewritten with this many entries.
    Written {
        /// Entry count of the new baseline.
        entries: usize,
    },
    /// Refused — the update would violate the ratchet or the inputs
    /// are malformed.
    Refused {
        /// Human-readable reason.
        reason: String,
    },
}

/// Rewrites `xtask/lint-baseline.json` from the current findings.
///
/// The ratchet: refuses when any rule's entry count would grow over
/// the committed baseline — the baseline may only shrink. A missing
/// baseline file bootstraps freely; to bootstrap entries for a
/// brand-new rule against an existing baseline, delete the file and
/// regenerate it (a deliberate speed bump).
pub fn update_baseline(root: &Path) -> std::io::Result<BaselineUpdate> {
    let findings = collect(root)?;
    if let Some(bad) = findings.iter().find(|f| f.rule == "allowlist") {
        return Ok(BaselineUpdate::Refused {
            reason: format!("fix the allowlist first: {bad}"),
        });
    }
    let mut candidates: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.suppression.is_none() && f.rule != "stale-allow")
        .collect();
    candidates.sort_by(|a, b| {
        (&a.file, a.line, a.column, a.rule, &a.message)
            .cmp(&(&b.file, b.line, b.column, b.rule, &b.message))
    });
    let entries: Vec<_> = candidates
        .iter()
        .map(|f| baseline::entry(f.rule, &f.file, f.line, f.column, &f.snippet))
        .collect();

    let bpath = root.join(BASELINE_PATH);
    if bpath.exists() {
        let old = match Baseline::parse(&std::fs::read_to_string(&bpath)?) {
            Ok(b) => b,
            Err(e) => {
                return Ok(BaselineUpdate::Refused {
                    reason: format!("existing baseline is malformed ({e}); fix or delete it"),
                })
            }
        };
        let old_counts = old.rule_counts();
        let new_counts = Baseline {
            entries: entries.clone(),
        }
        .rule_counts();
        for (rule, new_n) in &new_counts {
            let old_n = old_counts
                .iter()
                .find(|(r, _)| r == rule)
                .map_or(0, |(_, n)| *n);
            if *new_n > old_n {
                return Ok(BaselineUpdate::Refused {
                    reason: format!(
                        "ratchet: rule `{rule}` would grow from {old_n} to {new_n} baseline entries; fix the new findings instead"
                    ),
                });
            }
        }
    }

    let text = baseline::render(&entries);
    if let Some(parent) = bpath.parent() {
        std::fs::create_dir_all(parent)?;
    }
    thermal_ckpt::write_atomic(&bpath, text.as_bytes())
        .map_err(|e| std::io::Error::other(format!("writing {}: {e}", bpath.display())))?;
    Ok(BaselineUpdate::Written {
        entries: entries.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan_at(path: &str, content: &str) -> Vec<Finding> {
        let allow = Allowlist::default();
        let mut out = Vec::new();
        check_source(path, content, &allow, &mut out);
        out
    }

    fn scan(content: &str) -> Vec<Finding> {
        scan_at("crates/demo/src/lib.rs", content)
    }

    #[test]
    fn flags_unwrap_in_library_code_with_span() {
        let v = scan("//! doc\nfn f() { x.unwrap(); }\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "forbidden-call");
        assert_eq!((v[0].line, v[0].column), (2, 12));
        assert_eq!(v[0].snippet, "fn f() { x.unwrap(); }");
    }

    #[test]
    fn flags_every_forbidden_pattern() {
        for call in [
            "x.unwrap()",
            "x.expect(\"m\")",
            "panic!(\"m\")",
            "unreachable!()",
            "todo!()",
            "unimplemented!()",
            "dbg!(x)",
        ] {
            let v = scan(&format!("//! doc\nfn f() {{ {call}; }}\n"));
            assert_eq!(v.len(), 1, "expected one finding for `{call}`: {v:?}");
        }
    }

    #[test]
    fn unwrap_or_is_not_a_forbidden_call() {
        let v = scan("//! doc\nfn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn ignores_test_modules_and_resumes_after() {
        let v = scan(
            "//! doc\n\
             #[cfg(test)]\n\
             mod tests { fn t() { x.unwrap(); } }\n\
             fn g() { y.unwrap(); }\n",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 4);
    }

    #[test]
    fn ignores_comments_and_strings_even_raw() {
        let v = scan(
            "//! doc\n\
             // calling x.unwrap() would be bad\n\
             /* panic!(\"no\") /* nested */ still */\n\
             fn f() { let s = r#\"don't panic!(here) x.unwrap()\"#; let _ = s; }\n",
        );
        assert!(v.is_empty(), "comments/strings should be exempt: {v:?}");
    }

    #[test]
    fn flags_float_int_casts() {
        let v = scan("//! doc\nfn f(x: f64) -> usize { x.floor() as usize }\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "float-int-cast");
        let v = scan("//! doc\nfn f(x: f64) -> u32 { x as f64 as u32 }\n");
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn missing_module_doc_flagged() {
        let v = scan("fn f() {}\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "module-doc");
        assert_eq!(v[0].line, 0);
    }

    #[test]
    fn unordered_container_flagged_outside_tests() {
        let v = scan("//! doc\nuse std::collections::HashMap;\nfn f() -> HashMap<u32, u32> { HashMap::new() }\n");
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(v.iter().all(|f| f.rule == "unordered-container"));
        assert_eq!((v[0].line, v[0].column), (2, 23));
        let v = scan("//! doc\n#[cfg(test)]\nmod tests { use std::collections::HashSet; }\n");
        assert!(v.is_empty(), "test-only HashSet is exempt: {v:?}");
    }

    #[test]
    fn btreemap_is_fine() {
        let v = scan("//! doc\nuse std::collections::BTreeMap;\nfn f() -> BTreeMap<u32, u32> { BTreeMap::new() }\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn ambient_authority_flags_clock_env_thread() {
        let v = scan("//! doc\nfn f() -> std::time::Instant { std::time::Instant::now() }\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "ambient-authority");
        let v = scan("//! doc\nfn f() -> u64 { std::time::SystemTime::now(); 0 }\n");
        assert_eq!(v.len(), 1, "{v:?}");
        let v = scan("//! doc\nfn f() -> Option<String> { std::env::var(\"X\").ok() }\n");
        assert_eq!(v.len(), 1, "{v:?}");
        let v = scan("//! doc\nfn f() { let _ = std::thread::current().id(); }\n");
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn ambient_authority_respects_designations() {
        // The bench binaries are designated clock modules.
        let v = scan_at(
            "crates/bench/src/bin/repro.rs",
            "//! doc\nfn f() { let _ = std::time::Instant::now(); }\n",
        );
        assert!(v.is_empty(), "{v:?}");
        // par/lib.rs is a designated config module (env only).
        let v = scan_at(
            "crates/par/src/lib.rs",
            "//! doc\nfn f() { let _ = std::env::var(\"THERMAL_THREADS\"); }\n",
        );
        assert!(v.is_empty(), "{v:?}");
        // ...but a clock read there still fails.
        let v = scan_at(
            "crates/par/src/lib.rs",
            "//! doc\nfn f() { let _ = std::time::Instant::now(); }\n",
        );
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn snapshot_modules_revoke_the_clock_designation() {
        // The soak binary sits inside the bench clock designation,
        // but it captures snapshots: wall-clock reads there must be
        // findings — a wall timestamp in a snapshot record would
        // break restore-equivalence byte comparisons.
        for src in [
            "//! doc\nfn f() { let _ = std::time::SystemTime::now(); }\n",
            "//! doc\nfn f() { let _ = std::time::Instant::now(); }\n",
        ] {
            let v = scan_at("crates/bench/src/bin/soak.rs", src);
            assert_eq!(v.len(), 1, "{v:?}");
            assert_eq!(v[0].rule, "ambient-authority");
        }
        // The snapshot codec itself is likewise never clock-eligible.
        let v = scan_at(
            "crates/ckpt/src/snapshot.rs",
            "//! doc\nfn f() { let _ = std::time::SystemTime::now(); }\n",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        // A sibling bench binary that takes no snapshots keeps the
        // designation.
        let v = scan_at(
            "crates/bench/src/bin/repro.rs",
            "//! doc\nfn f() { let _ = std::time::Instant::now(); }\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn snapshot_codec_fns_are_cold_path() {
        // `capture`/`restore` in a file that implements `Snapshot`
        // run at snapshot boundaries, not per event: family B rules
        // (hot-path-alloc / hot-path-index) do not apply inside them.
        let src = "//! doc\n\
             impl Snapshot for S {\n\
                 fn capture(&self, rec: &mut Record) { let _ = Vec::new(); }\n\
                 fn restore(&mut self, rec: &Record) { let _ = self.buf[0]; }\n\
             }\n\
             fn step(&mut self) { let _ = Vec::new(); let _ = self.buf[0]; }\n";
        let v = scan_at("crates/stream/src/service.rs", src);
        assert_eq!(v.len(), 2, "only `fn step` findings expected: {v:?}");
        assert!(v.iter().all(|f| f.line == 6), "{v:?}");
        assert!(v.iter().any(|f| f.rule == "hot-path-alloc"), "{v:?}");
        assert!(v.iter().any(|f| f.rule == "hot-path-index"), "{v:?}");
        // Without a `Snapshot` impl in the file, the fn names alone
        // grant no exemption.
        let plain = "//! doc\nfn restore(x: &[u8]) { let _ = Vec::new(); }\n";
        let v = scan_at("crates/stream/src/service.rs", plain);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "hot-path-alloc");
    }

    #[test]
    fn float_reduction_order_follows_the_chain() {
        let v = scan("//! doc\nfn f(m: &M) -> f64 { m.values().sum() }\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "float-reduction-order");
        // Through adapters, across lines, with turbofish.
        let v = scan(
            "//! doc\nfn f(m: &M) -> f64 {\n    m.values()\n        .map(|x| x * 2.0)\n        .sum::<f64>()\n}\n",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 5);
        // fold too.
        let v = scan("//! doc\nfn f(m: &M) -> f64 { m.into_values().fold(0.0, |a, b| a + b) }\n");
        assert_eq!(v.len(), 1, "{v:?}");
        // A chain that never reduces is fine.
        let v = scan("//! doc\nfn f(m: &M) -> Vec<f64> { m.values().cloned().collect() }\n");
        assert!(v.is_empty(), "{v:?}");
        // Indexed iteration reducing is fine.
        let v = scan("//! doc\nfn f(xs: &[f64]) -> f64 { xs.iter().sum() }\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn hot_path_index_only_in_designated_modules() {
        let src = "//! doc\npub fn f(xs: &[f64], i: usize) -> f64 { xs[i] }\n";
        let v = scan_at("crates/stream/src/service.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "hot-path-index");
        assert_eq!((v[0].line, v[0].column), (2, 43));
        // The same code outside a hot-path module is fine.
        let v = scan(src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn hot_path_index_skips_non_index_brackets() {
        let src = "//! doc\n\
            pub fn f() -> [u8; 4] { [0, 1, 2, 3] }\n\
            pub fn g(xs: &[f64]) -> &[f64] { &xs[..] }\n\
            pub fn h(v: &[u8]) -> u8 { let [a, ..] = v else { return 0 }; *a }\n\
            pub fn m() -> Vec<u8> { vec![0; 4] }\n";
        let v = scan_at("crates/stream/src/service.rs", src);
        // `vec!` is a steady-state allocation finding, but none of
        // these brackets are index expressions.
        let rules: Vec<&str> = v.iter().map(|f| f.rule).collect();
        assert_eq!(rules, vec!["hot-path-alloc"], "{v:?}");
    }

    #[test]
    fn hot_path_alloc_flags_acquisition_in_steady_state_modules() {
        let src = "//! doc\n\
            pub fn a() -> Vec<u8> { Vec::new() }\n\
            pub fn b() -> Vec<u8> { vec![0; 4] }\n\
            pub fn c(xs: &[u8]) -> Vec<u8> { xs.to_vec() }\n\
            pub fn d(s: &Label) -> Label { s.clone() }\n\
            pub fn e() -> Box<u8> { Box::new(0) }\n\
            pub fn f(s: &str) -> String { String::from(s) }\n";
        let v = scan_at("crates/stream/src/queue.rs", src);
        let rules: Vec<&str> = v.iter().map(|f| f.rule).collect();
        assert_eq!(rules, vec!["hot-path-alloc"; 6], "{v:?}");
        assert_eq!(v[0].line, 2);
        assert_eq!(v[5].line, 7);
        // The same code outside the steady-state set (even in a
        // hot-path module) is not this rule's concern.
        let v = scan_at("crates/linalg/src/matrix.rs", src);
        assert!(v.is_empty(), "{v:?}");
        let v = scan(src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn hot_path_alloc_exempts_tests_and_reuse_idioms() {
        let src = "//! doc\n\
            pub fn ok(dst: &mut Vec<u8>, src: &[u8]) { dst.clear(); dst.extend_from_slice(src); }\n\
            pub fn also_ok(a: &mut Label, b: &Label) { a.clone_from(b); }\n\
            #[cfg(test)]\n\
            mod tests { fn t() -> Vec<u8> { vec![1, 2].to_vec() } }\n";
        let v = scan_at("crates/stream/src/drift.rs", src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn hot_path_index_catches_call_results_and_ranges() {
        let src = "//! doc\npub fn f(xs: &[f64], n: usize) -> &[f64] { &xs[..n] }\n";
        let v = scan_at("crates/stream/src/service.rs", src);
        assert_eq!(v.len(), 1, "partial ranges can panic: {v:?}");
        let src = "//! doc\npub fn f(m: &M, j: usize) -> f64 { m.row(0)[j] }\n";
        let v = scan_at("crates/stream/src/service.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn hot_path_arith_inside_index_expressions() {
        let src = "//! doc\npub fn f(xs: &[f64], i: usize, k: usize) -> f64 { xs[i * 3 + k] }\n";
        let v = scan_at("crates/stream/src/service.rs", src);
        let rules: Vec<&str> = v.iter().map(|f| f.rule).collect();
        assert_eq!(
            rules,
            vec!["hot-path-index", "hot-path-arith", "hot-path-arith"],
            "{v:?}"
        );
        // Arithmetic outside an index is not family B's concern.
        let src = "//! doc\npub fn f(a: f64, b: f64) -> f64 { a * b + 1.0 }\n";
        let v = scan_at("crates/stream/src/service.rs", src);
        assert!(v.is_empty(), "{v:?}");
        // Unary minus / deref are not binary arithmetic.
        let src = "//! doc\npub fn f(xs: &[f64], i: &usize) -> f64 { xs[*i] }\n";
        let v = scan_at("crates/stream/src/service.rs", src);
        assert_eq!(v.len(), 1, "only the index finding: {v:?}");
    }

    #[test]
    fn nested_indexing_flags_each_site_once() {
        let src =
            "//! doc\npub fn f(xs: &[f64], idx: &[usize], i: usize) -> f64 { xs[idx[i + 1]] }\n";
        let v = scan_at("crates/stream/src/service.rs", src);
        let mut rules: Vec<&str> = v.iter().map(|f| f.rule).collect();
        rules.sort_unstable();
        assert_eq!(
            rules,
            vec!["hot-path-arith", "hot-path-index", "hot-path-index"],
            "{v:?}"
        );
    }

    #[test]
    fn allowlist_suppression_is_recorded_not_dropped() {
        let allow = Allowlist::parse(
            "[[allow]]\npath = \"crates/demo/src/lib.rs\"\npattern = \".unwrap()\"\nreason = \"r\"\ncount = 1\n",
        )
        .unwrap();
        let mut out = Vec::new();
        check_source(
            "crates/demo/src/lib.rs",
            "//! doc\nfn f() { a.unwrap(); }\nfn g() { b.unwrap(); }\n",
            &allow,
            &mut out,
        );
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].suppression, Some(Suppression::Allowlist));
        assert_eq!(out[1].suppression, None, "budget exhausted on the second");
    }

    #[test]
    fn lints_opt_in_detected() {
        let mut out = Vec::new();
        check_lints_opt_in("a/Cargo.toml", "[package]\nname = \"a\"\n", &mut out);
        assert_eq!(out.len(), 1);
        out.clear();
        check_lints_opt_in(
            "a/Cargo.toml",
            "[package]\nname = \"a\"\n\n[lints]\nworkspace = true\n",
            &mut out,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn error_type_impls_required_at_token_level() {
        let mut out = Vec::new();
        check_error_type("a/src/error.rs", "pub enum Error {}\n", &mut out);
        assert_eq!(out.len(), 2);
        out.clear();
        // A doc comment mentioning the impls does not count.
        check_error_type(
            "a/src/error.rs",
            "//! Implements Display for and Error for the crate error.\npub enum Error {}\n",
            &mut out,
        );
        assert_eq!(out.len(), 2);
        out.clear();
        check_error_type(
            "a/src/error.rs",
            "impl fmt::Display for Error {}\nimpl std::error::Error for Error {}\n",
            &mut out,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn report_json_is_deterministic_and_sorted() {
        let mut findings = scan("fn f() { x.unwrap(); y.expect(\"m\"); }\n");
        sort_findings(&mut findings);
        let report = LintReport { findings };
        let a = report.render_json();
        let b = report.render_json();
        assert_eq!(a, b);
        assert!(a.contains("\"schema\": \"xtask-lint/1\""));
        let unwrap_pos = a.find("unwrap").unwrap();
        let expect_pos = a.find("expect").unwrap();
        assert!(
            unwrap_pos < expect_pos,
            "findings sorted by position within the file"
        );
    }
}
