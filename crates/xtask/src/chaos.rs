//! Chaos (kill-point) harness driver — `cargo xtask chaos`.
//!
//! Proves the crash-safety contract of the checkpoint layer
//! end-to-end, with real processes dying at real `fsync` boundaries:
//!
//! 1. **Census.** Run the `chaos_grid` workload (a checkpointed
//!    pipeline fit + supervised fault grid from `thermal-bench`) once,
//!    cleanly, and parse its durable-write count `N`.
//! 2. **Kill sweep.** For every kill point `k` (all of `1..=N`, or a
//!    boundary sample in `--smoke` mode), run the workload with
//!    `THERMAL_KILL_AT=k` so it aborts (exit code 86) at its `k`-th
//!    durable write, then rerun it without the kill switch. The
//!    resumed store must be **byte-identical** to the uninterrupted
//!    one (quarantined debris aside) — crash-and-resume is
//!    indistinguishable from never crashing.
//! 3. **Corruption recovery.** Truncate a checkpoint payload, flip a
//!    byte in another, and truncate the manifest itself; each time the
//!    workload must detect the damage, quarantine it, recompute, and
//!    converge to the same bytes — never trust a corrupt artifact,
//!    never crash on one.
//!
//! Every assertion is deterministic (workload seeds are fixed, results
//! are compared bit-for-bit); nothing here measures wall-clock time,
//! so the harness is meaningful on a single-core CI runner.

use std::collections::BTreeMap;
use std::fs;
use std::io::Read;
use std::path::{Path, PathBuf};
use std::process::Command;

/// Exit code the workload dies with at a kill point (pinned in
/// `thermal-faults`; redeclared here so the driver does not link the
/// whole workspace).
const KILL_EXIT_CODE: i32 = 86;

/// Environment variable carrying the kill point to the workload.
const KILL_AT_ENV: &str = "THERMAL_KILL_AT";

/// Seeded-kill-point variable; cleared on every run the driver wants
/// to survive.
const KILL_SEED_ENV: &str = "THERMAL_KILL_SEED";

/// Store subdirectory holding quarantined artifacts; excluded from
/// equivalence comparison (debris differs by crash point by design).
const QUARANTINE_DIR: &str = "quarantine";

/// Fixed workload seed: the harness compares bytes, so every run must
/// agree on it.
const WORKLOAD_SEED: &str = "7";

/// Runs the full harness. `smoke` trims the kill sweep to the
/// boundary kill points (first, second, middle, last-but-one, last)
/// for the in-`ci` pass; the dedicated CI job runs every `k`.
///
/// # Errors
///
/// Returns a description of the first failed invariant: a workload
/// run with the wrong exit code, a resumed store that differs from
/// the clean one, or unrecovered corruption.
pub fn run(root: &Path, smoke: bool) -> Result<(), String> {
    build_workload(root)?;
    let bin = root
        .join("target")
        .join("release")
        .join(format!("chaos_grid{}", std::env::consts::EXE_SUFFIX));
    let base = root.join("target").join("chaos");

    // 1. Census: one clean run fixes the reference tree and the
    // durable-write count.
    let clean = base.join("clean");
    reset_dir(&clean)?;
    let stdout = run_workload(&bin, &clean, None, 0)?;
    let writes = parse_durable_writes(&stdout)?;
    if writes < 4 {
        return Err(format!(
            "workload committed only {writes} durable writes; the sweep would prove nothing"
        ));
    }
    eprintln!("xtask chaos: clean run committed {writes} durable writes");

    // 2. Kill sweep.
    let kill_points = select_kill_points(writes, smoke);
    eprintln!(
        "xtask chaos: sweeping {} kill point(s): {kill_points:?}",
        kill_points.len()
    );
    for &k in &kill_points {
        let dir = base.join(format!("k{k}"));
        reset_dir(&dir)?;
        run_workload(&bin, &dir, Some(k), KILL_EXIT_CODE)?;
        run_workload(&bin, &dir, None, 0)?;
        assert_same_store(&clean, &dir, &format!("kill point {k}"))?;
    }
    eprintln!("xtask chaos: crash→resume is byte-identical at every swept kill point");

    // 3. Corruption recovery, each case on its own fresh store.
    corruption_case(&bin, &base, &clean, "truncate-payload", |store| {
        let victim = pick_payload(store)?;
        let bytes = fs::read(&victim).map_err(|e| format!("read {}: {e}", victim.display()))?;
        fs::write(&victim, &bytes[..bytes.len() / 2])
            .map_err(|e| format!("truncate {}: {e}", victim.display()))?;
        Ok(victim)
    })?;
    corruption_case(&bin, &base, &clean, "flip-byte", |store| {
        let victim = pick_payload(store)?;
        let mut bytes = fs::read(&victim).map_err(|e| format!("read {}: {e}", victim.display()))?;
        if let Some(last) = bytes.last_mut() {
            *last ^= 0x01;
        }
        fs::write(&victim, &bytes).map_err(|e| format!("corrupt {}: {e}", victim.display()))?;
        Ok(victim)
    })?;
    corruption_case(&bin, &base, &clean, "truncate-manifest", |store| {
        let manifest = store.join("manifest.txt");
        let bytes = fs::read(&manifest).map_err(|e| format!("read {}: {e}", manifest.display()))?;
        fs::write(&manifest, &bytes[..bytes.len() / 2])
            .map_err(|e| format!("truncate {}: {e}", manifest.display()))?;
        Ok(manifest)
    })?;
    eprintln!("xtask chaos: all corruption cases detected, quarantined, and recomputed");
    Ok(())
}

/// Builds the workload binary once, in release mode (the sweep runs
/// it dozens of times).
fn build_workload(root: &Path) -> Result<(), String> {
    eprintln!("xtask chaos: building chaos_grid (release)");
    let status = Command::new(env!("CARGO"))
        .args([
            "build",
            "--release",
            "--offline",
            "-p",
            "thermal-bench",
            "--bin",
            "chaos_grid",
        ])
        .current_dir(root)
        .status()
        .map_err(|e| format!("could not start cargo build: {e}"))?;
    if !status.success() {
        return Err(format!("chaos_grid build failed with {status}"));
    }
    Ok(())
}

/// Runs the workload against `store`, optionally with a kill point,
/// and checks the exit code. Returns captured stdout.
fn run_workload(
    bin: &Path,
    store: &Path,
    kill_at: Option<u64>,
    expect_code: i32,
) -> Result<String, String> {
    let mut cmd = Command::new(bin);
    cmd.arg(store)
        .args(["--seed", WORKLOAD_SEED])
        .env_remove(KILL_AT_ENV)
        .env_remove(KILL_SEED_ENV);
    if let Some(k) = kill_at {
        cmd.env(KILL_AT_ENV, k.to_string());
    }
    let output = cmd
        .output()
        .map_err(|e| format!("could not start {}: {e}", bin.display()))?;
    let code = output.status.code();
    if code != Some(expect_code) {
        return Err(format!(
            "workload on {} (kill_at={kill_at:?}) exited with {code:?}, expected {expect_code}\n\
             stderr:\n{}",
            store.display(),
            String::from_utf8_lossy(&output.stderr)
        ));
    }
    Ok(String::from_utf8_lossy(&output.stdout).into_owned())
}

/// Extracts `N` from the workload's `durable writes = N` report line.
fn parse_durable_writes(stdout: &str) -> Result<u64, String> {
    stdout
        .lines()
        .find_map(|l| l.split("durable writes = ").nth(1))
        .and_then(|n| n.trim().parse().ok())
        .ok_or_else(|| format!("workload stdout had no parseable durable-write count:\n{stdout}"))
}

/// Every kill point, or the boundary sample in smoke mode: the first
/// two writes (store creation), the middle, and the last two (final
/// artifact + manifest) — the places where off-by-one bugs live.
fn select_kill_points(writes: u64, smoke: bool) -> Vec<u64> {
    if !smoke {
        return (1..=writes).collect();
    }
    let mut points = vec![1, 2, writes / 2, writes - 1, writes];
    points.sort_unstable();
    points.dedup();
    points
}

/// Seeds a fresh store via a clean run, damages it with `corrupt`,
/// reruns the workload, and requires byte-equivalence with `clean`.
fn corruption_case<F>(
    bin: &Path,
    base: &Path,
    clean: &Path,
    label: &str,
    corrupt: F,
) -> Result<(), String>
where
    F: FnOnce(&Path) -> Result<PathBuf, String>,
{
    let dir = base.join(format!("corrupt-{label}"));
    reset_dir(&dir)?;
    run_workload(bin, &dir, None, 0)?;
    let victim = corrupt(&dir)?;
    eprintln!(
        "xtask chaos: corruption case `{label}` damaged {}",
        victim.display()
    );
    run_workload(bin, &dir, None, 0)?;
    assert_same_store(clean, &dir, &format!("corruption case `{label}`"))
}

/// Picks a deterministic checkpoint payload (first `.ck` file in
/// sorted order) to damage.
fn pick_payload(store: &Path) -> Result<PathBuf, String> {
    let mut payloads: Vec<PathBuf> = fs::read_dir(store)
        .map_err(|e| format!("read_dir {}: {e}", store.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "ck"))
        .collect();
    payloads.sort();
    payloads
        .into_iter()
        .next()
        .ok_or_else(|| format!("no checkpoint payloads in {}", store.display()))
}

/// Byte-compares two stores, ignoring quarantined debris, and
/// reports every differing path.
fn assert_same_store(clean: &Path, resumed: &Path, what: &str) -> Result<(), String> {
    let lhs = snapshot(clean)?;
    let rhs = snapshot(resumed)?;
    let mut diffs = Vec::new();
    for (name, bytes) in &lhs {
        match rhs.get(name) {
            Some(other) if other == bytes => {}
            Some(_) => diffs.push(format!("{name}: contents differ")),
            None => diffs.push(format!("{name}: missing after resume")),
        }
    }
    for name in rhs.keys() {
        if !lhs.contains_key(name) {
            diffs.push(format!("{name}: extra file after resume"));
        }
    }
    if diffs.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "{what}: resumed store differs from the clean run:\n  {}",
            diffs.join("\n  ")
        ))
    }
}

/// Reads every regular file in a store (skipping `quarantine/`) into
/// a sorted name → contents map.
fn snapshot(store: &Path) -> Result<BTreeMap<String, Vec<u8>>, String> {
    let mut map = BTreeMap::new();
    let entries = fs::read_dir(store).map_err(|e| format!("read_dir {}: {e}", store.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", store.display()))?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if name != QUARANTINE_DIR {
                return Err(format!("unexpected directory in store: {}", path.display()));
            }
            continue;
        }
        let mut bytes = Vec::new();
        fs::File::open(&path)
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .map_err(|e| format!("read {}: {e}", path.display()))?;
        map.insert(name, bytes);
    }
    Ok(map)
}

/// Threads variable cleared for deterministic baselines and pinned
/// for the cross-thread-count equivalence run.
const THREADS_ENV: &str = "THERMAL_THREADS";

/// Which snapshotting workload the restore-equivalence harness is
/// driving (`cargo xtask chaos --stream` / `--fleet`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotWorkload {
    /// The single-building chaos soak (`soak --ckpt`).
    Stream,
    /// The multi-building fleet soak (`fleet_soak --snap-every`).
    Fleet,
}

impl SnapshotWorkload {
    fn label(self) -> &'static str {
        match self {
            SnapshotWorkload::Stream => "stream",
            SnapshotWorkload::Fleet => "fleet",
        }
    }

    fn package(self) -> &'static str {
        match self {
            SnapshotWorkload::Stream => "thermal-bench",
            SnapshotWorkload::Fleet => "thermal-fleet",
        }
    }

    fn bin(self) -> &'static str {
        match self {
            SnapshotWorkload::Stream => "soak",
            SnapshotWorkload::Fleet => "fleet_soak",
        }
    }

    /// Workload arguments for one run rooted at `dir`. Everything is
    /// pinned (seed, scale, snapshot cadence) so every run of a case
    /// agrees byte-for-byte.
    fn args(self, dir: &Path) -> Vec<String> {
        let d = |p: PathBuf| p.to_string_lossy().into_owned();
        match self {
            SnapshotWorkload::Stream => vec![
                d(dir.join("report.json")),
                "--days".into(),
                "1".into(),
                "--seed".into(),
                WORKLOAD_SEED.into(),
                "--intensities".into(),
                "0,150".into(),
                "--ckpt".into(),
                d(dir.join("store")),
                "--snap-every".into(),
                "29".into(),
            ],
            SnapshotWorkload::Fleet => vec![
                d(dir.to_path_buf()),
                "--seed".into(),
                WORKLOAD_SEED.into(),
                "--buildings".into(),
                "4".into(),
                "--days".into(),
                "1".into(),
                "--targets".into(),
                "1,2".into(),
                "--snap-every".into(),
                "64".into(),
            ],
        }
    }

    /// The report files whose bytes carry the restore-equivalence
    /// contract, relative-name → absolute path.
    fn reports(self, dir: &Path) -> Result<BTreeMap<String, PathBuf>, String> {
        let mut map = BTreeMap::new();
        match self {
            SnapshotWorkload::Stream => {
                map.insert("report.json".to_owned(), dir.join("report.json"));
            }
            SnapshotWorkload::Fleet => {
                let entries =
                    fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
                for entry in entries {
                    let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
                    let path = entry.path();
                    if path.extension().is_some_and(|ext| ext == "json") {
                        map.insert(entry.file_name().to_string_lossy().into_owned(), path);
                    }
                }
                if map.is_empty() {
                    return Err(format!("no fleet reports under {}", dir.display()));
                }
            }
        }
        Ok(map)
    }

    /// Every checkpoint-store directory a run rooted at `dir` uses.
    fn stores(self, dir: &Path) -> Result<Vec<PathBuf>, String> {
        match self {
            SnapshotWorkload::Stream => Ok(vec![dir.join("store")]),
            SnapshotWorkload::Fleet => {
                let ckpt = dir.join("ckpt");
                let entries =
                    fs::read_dir(&ckpt).map_err(|e| format!("read_dir {}: {e}", ckpt.display()))?;
                let mut stores: Vec<PathBuf> = entries
                    .filter_map(|entry| entry.ok().map(|e| e.path()))
                    .filter(|p| p.is_dir())
                    .collect();
                stores.sort();
                Ok(stores)
            }
        }
    }

    /// Snapshot payload name prefixes this workload writes.
    fn snapshot_prefixes(self) -> &'static [&'static str] {
        match self {
            SnapshotWorkload::Stream => &["progress-", "intensity-"],
            SnapshotWorkload::Fleet => &["serve-"],
        }
    }
}

/// One row of the kill-point matrix report.
struct MatrixRow {
    case: String,
    status: &'static str,
}

/// Runs the snapshot/restore-equivalence harness for one workload:
/// census → repeat-run and thread-count baselines → kill sweep (every
/// durable write, or the boundary sample under `--smoke`) → torn- and
/// corrupt-snapshot cases. Writes a kill-point matrix report and the
/// collected quarantine logs under `target/chaos-<workload>/` for the
/// CI artifact upload.
///
/// # Errors
///
/// Returns a description of the first violated invariant.
pub fn run_snapshots(root: &Path, workload: SnapshotWorkload, smoke: bool) -> Result<(), String> {
    let label = workload.label();
    build_snapshot_workload(root, workload)?;
    let bin = root.join("target").join("release").join(format!(
        "{}{}",
        workload.bin(),
        std::env::consts::EXE_SUFFIX
    ));
    let base = root.join("target").join(format!("chaos-{label}"));
    reset_dir(&base)?;
    let mut matrix: Vec<MatrixRow> = Vec::new();

    // 1. Census: one clean run fixes the reference reports and the
    // durable-write count.
    let clean = base.join("clean");
    reset_dir(&clean)?;
    let stdout = run_snapshot_run(&bin, workload, &clean, None, 0, None)?;
    let writes = parse_durable_writes(&stdout)?;
    if writes < 4 {
        return Err(format!(
            "{label} workload committed only {writes} durable writes; the sweep would prove nothing"
        ));
    }
    eprintln!("xtask chaos --{label}: clean run committed {writes} durable writes");

    // 2. Uninterrupted baselines: a repeat run and a THERMAL_THREADS=4
    // run must already agree byte-for-byte, otherwise kill-point
    // comparisons would chase nondeterminism instead of crash bugs.
    for (case, threads) in [("repeat", None), ("threads-4", Some("4"))] {
        let dir = base.join(case);
        reset_dir(&dir)?;
        run_snapshot_run(&bin, workload, &dir, None, 0, threads)?;
        assert_same_reports(workload, &clean, &dir, case)?;
        matrix.push(MatrixRow {
            case: case.to_owned(),
            status: "ok",
        });
    }
    eprintln!("xtask chaos --{label}: repeat and threads-4 baselines are byte-identical");

    // 3. Kill sweep: crash at the k-th durable write, resume, compare
    // final reports against the uninterrupted run.
    let kill_points = select_kill_points(writes, smoke);
    eprintln!(
        "xtask chaos --{label}: sweeping {} kill point(s): {kill_points:?}",
        kill_points.len()
    );
    for &k in &kill_points {
        let dir = base.join(format!("k{k}"));
        reset_dir(&dir)?;
        run_snapshot_run(&bin, workload, &dir, Some(k), KILL_EXIT_CODE, None)?;
        run_snapshot_run(&bin, workload, &dir, None, 0, None)?;
        assert_same_reports(workload, &clean, &dir, &format!("kill point {k}"))?;
        matrix.push(MatrixRow {
            case: format!("kill-{k}"),
            status: "ok",
        });
    }
    eprintln!(
        "xtask chaos --{label}: crash→resume reports are byte-identical at every swept kill point"
    );

    // 4. Torn/corrupt snapshots: a mid-run kill leaves live snapshots
    // behind; damaging the newest one must be detected by checksum,
    // quarantined with a structured log entry, and recovered from an
    // older snapshot — never parsed.
    let mut quarantine_log = String::new();
    for (case, truncate) in [("bitflip-snapshot", false), ("truncate-snapshot", true)] {
        let dir = base.join(case);
        reset_dir(&dir)?;
        run_snapshot_run(&bin, workload, &dir, Some(writes - 2), KILL_EXIT_CODE, None)?;
        let victim = corrupt_newest_snapshot(workload, &dir, truncate)?;
        eprintln!(
            "xtask chaos --{label}: case `{case}` damaged {}",
            victim.display()
        );
        run_snapshot_run(&bin, workload, &dir, None, 0, None)?;
        assert_same_reports(workload, &clean, &dir, &format!("corruption case `{case}`"))?;
        let victim_name = victim
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let log = collect_quarantine_logs(workload, &dir)?;
        if !log.contains(&format!("name={victim_name}")) {
            return Err(format!(
                "corruption case `{case}`: quarantine log has no structured entry for \
                 {victim_name}:\n{log}"
            ));
        }
        quarantine_log.push_str(&format!("# case {case}\n{log}"));
        matrix.push(MatrixRow {
            case: case.to_owned(),
            status: "ok",
        });
    }
    // Torn manifest: truncate the first store's manifest mid-line; the
    // workload must recover and converge to the same report bytes.
    {
        let case = "truncate-manifest";
        let dir = base.join(case);
        reset_dir(&dir)?;
        run_snapshot_run(&bin, workload, &dir, Some(writes - 2), KILL_EXIT_CODE, None)?;
        let store = workload
            .stores(&dir)?
            .into_iter()
            .next()
            .ok_or_else(|| format!("no stores under {}", dir.display()))?;
        let manifest = store.join("manifest.txt");
        let bytes = fs::read(&manifest).map_err(|e| format!("read {}: {e}", manifest.display()))?;
        fs::write(&manifest, &bytes[..bytes.len() / 2])
            .map_err(|e| format!("truncate {}: {e}", manifest.display()))?;
        eprintln!(
            "xtask chaos --{label}: case `{case}` damaged {}",
            manifest.display()
        );
        run_snapshot_run(&bin, workload, &dir, None, 0, None)?;
        assert_same_reports(workload, &clean, &dir, &format!("corruption case `{case}`"))?;
        matrix.push(MatrixRow {
            case: case.to_owned(),
            status: "ok",
        });
    }
    eprintln!("xtask chaos --{label}: torn and corrupt snapshots quarantined and recovered");

    // 5. Artifacts for the CI upload: the kill-point matrix and the
    // structured quarantine logs the corruption cases produced.
    let mut matrix_json = String::from("{\n");
    matrix_json.push_str(&format!(
        "  \"workload\": \"{label}\",\n  \"smoke\": {smoke},\n  \"durable_writes\": {writes},\n  \"cases\": [\n"
    ));
    for (i, row) in matrix.iter().enumerate() {
        matrix_json.push_str(&format!(
            "    {{\"case\": \"{}\", \"status\": \"{}\"}}{}\n",
            row.case,
            row.status,
            if i + 1 < matrix.len() { "," } else { "" }
        ));
    }
    matrix_json.push_str("  ]\n}\n");
    let matrix_path = base.join("matrix.json");
    fs::write(&matrix_path, matrix_json)
        .map_err(|e| format!("write {}: {e}", matrix_path.display()))?;
    let qlog_path = base.join("quarantine-log.txt");
    fs::write(&qlog_path, quarantine_log)
        .map_err(|e| format!("write {}: {e}", qlog_path.display()))?;
    eprintln!(
        "xtask chaos --{label}: matrix = {}, quarantine log = {}",
        matrix_path.display(),
        qlog_path.display()
    );
    Ok(())
}

/// Builds the snapshotting workload binary once, in release mode.
fn build_snapshot_workload(root: &Path, workload: SnapshotWorkload) -> Result<(), String> {
    eprintln!(
        "xtask chaos --{}: building {} (release)",
        workload.label(),
        workload.bin()
    );
    let status = Command::new(env!("CARGO"))
        .args([
            "build",
            "--release",
            "--offline",
            "-p",
            workload.package(),
            "--bin",
            workload.bin(),
        ])
        .current_dir(root)
        .status()
        .map_err(|e| format!("could not start cargo build: {e}"))?;
    if !status.success() {
        return Err(format!("{} build failed with {status}", workload.bin()));
    }
    Ok(())
}

/// Runs the snapshotting workload rooted at `dir`, optionally with a
/// kill point and a pinned thread count, checking the exit code.
fn run_snapshot_run(
    bin: &Path,
    workload: SnapshotWorkload,
    dir: &Path,
    kill_at: Option<u64>,
    expect_code: i32,
    threads: Option<&str>,
) -> Result<String, String> {
    let mut cmd = Command::new(bin);
    cmd.args(workload.args(dir))
        .env_remove(KILL_AT_ENV)
        .env_remove(KILL_SEED_ENV)
        .env_remove(THREADS_ENV);
    if let Some(k) = kill_at {
        cmd.env(KILL_AT_ENV, k.to_string());
    }
    if let Some(t) = threads {
        cmd.env(THREADS_ENV, t);
    }
    let output = cmd
        .output()
        .map_err(|e| format!("could not start {}: {e}", bin.display()))?;
    let code = output.status.code();
    if code != Some(expect_code) {
        return Err(format!(
            "{} workload on {} (kill_at={kill_at:?}) exited with {code:?}, expected \
             {expect_code}\nstderr:\n{}",
            workload.label(),
            dir.display(),
            String::from_utf8_lossy(&output.stderr)
        ));
    }
    Ok(String::from_utf8_lossy(&output.stdout).into_owned())
}

/// Byte-compares the final reports of two runs of `workload`.
fn assert_same_reports(
    workload: SnapshotWorkload,
    clean: &Path,
    candidate: &Path,
    what: &str,
) -> Result<(), String> {
    let lhs = workload.reports(clean)?;
    let rhs = workload.reports(candidate)?;
    let mut diffs = Vec::new();
    for (name, path) in &lhs {
        match rhs.get(name) {
            Some(other) => {
                let a = fs::read(path).map_err(|e| format!("read {}: {e}", path.display()))?;
                let b = fs::read(other).map_err(|e| format!("read {}: {e}", other.display()))?;
                if a != b {
                    diffs.push(format!("{name}: contents differ"));
                }
            }
            None => diffs.push(format!("{name}: missing after resume")),
        }
    }
    for name in rhs.keys() {
        if !lhs.contains_key(name) {
            diffs.push(format!("{name}: extra report after resume"));
        }
    }
    if diffs.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "{what}: resumed reports differ from the uninterrupted run:\n  {}",
            diffs.join("\n  ")
        ))
    }
}

/// Damages the newest live snapshot payload any of the run's stores
/// holds (bit-flip or half-truncation) and returns its path.
fn corrupt_newest_snapshot(
    workload: SnapshotWorkload,
    dir: &Path,
    truncate: bool,
) -> Result<PathBuf, String> {
    let mut newest: Option<PathBuf> = None;
    for store in workload.stores(dir)? {
        let entries =
            fs::read_dir(&store).map_err(|e| format!("read_dir {}: {e}", store.display()))?;
        for entry in entries.filter_map(|e| e.ok().map(|e| e.path())) {
            let name = entry
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if workload
                .snapshot_prefixes()
                .iter()
                .any(|p| name.starts_with(p))
                && newest
                    .as_ref()
                    .and_then(|p| p.file_name().map(|n| n.to_string_lossy().into_owned()))
                    .is_none_or(|best| name > best)
            {
                newest = Some(entry);
            }
        }
    }
    let victim = newest.ok_or_else(|| {
        format!(
            "no live snapshot payloads under {} to corrupt (prefixes {:?})",
            dir.display(),
            workload.snapshot_prefixes()
        )
    })?;
    let bytes = fs::read(&victim).map_err(|e| format!("read {}: {e}", victim.display()))?;
    if truncate {
        fs::write(&victim, &bytes[..bytes.len() / 2])
            .map_err(|e| format!("truncate {}: {e}", victim.display()))?;
    } else {
        let mut flipped = bytes;
        if let Some(last) = flipped.last_mut() {
            *last ^= 0x01;
        }
        fs::write(&victim, &flipped).map_err(|e| format!("corrupt {}: {e}", victim.display()))?;
    }
    Ok(victim)
}

/// Concatenates every store's structured quarantine log under `dir`.
fn collect_quarantine_logs(workload: SnapshotWorkload, dir: &Path) -> Result<String, String> {
    let mut out = String::new();
    for store in workload.stores(dir)? {
        let log = store.join(QUARANTINE_DIR).join("log.txt");
        if let Ok(text) = fs::read_to_string(&log) {
            out.push_str(&text);
        }
    }
    Ok(out)
}

/// Deletes and recreates a directory.
fn reset_dir(dir: &Path) -> Result<(), String> {
    if dir.exists() {
        fs::remove_dir_all(dir).map_err(|e| format!("remove {}: {e}", dir.display()))?;
    }
    fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_point_selection_covers_boundaries() {
        assert_eq!(select_kill_points(20, false).len(), 20);
        assert_eq!(select_kill_points(20, true), vec![1, 2, 10, 19, 20]);
        // Tiny write counts dedup instead of repeating points.
        assert_eq!(select_kill_points(4, true), vec![1, 2, 3, 4]);
    }

    #[test]
    fn durable_write_count_is_parsed_from_report_line() {
        let out = "chaos-grid: fit restored=[]\nchaos-grid: durable writes = 20\nchaos-grid: ok\n";
        assert_eq!(parse_durable_writes(out), Ok(20));
        assert!(parse_durable_writes("no report").is_err());
    }
}
