//! Hand-rolled token-level lexer for the static-analysis engine.
//!
//! The container is offline, so `syn` is unavailable; this lexer is a
//! deliberately small subset of the Rust lexical grammar — exactly
//! enough for convention checking, not compilation:
//!
//! - identifiers (including raw `r#ident`), lifetimes, and the
//!   keyword set as plain [`TokenKind::Ident`] tokens;
//! - string, raw-string (any `#` depth), byte-string, char and byte
//!   literals as *atomic* tokens, so nothing inside a literal is ever
//!   mistaken for code;
//! - numeric literals including `1_000`, `0xFF`, `1.5e-3`;
//! - line comments, **nested** block comments and doc comments are
//!   stripped (the line-based predecessor could not nest);
//! - multi-character operators (`::`, `->`, `..=`, `>>=`, …) lexed as
//!   single [`TokenKind::Punct`] tokens by longest match, so `>>` in
//!   a turbofish is never confused with two closing angles by
//!   accident.
//!
//! Every token carries a 1-based `(line, column)` span (columns count
//! bytes, matching what editors display for ASCII source). The lexer
//! never fails: malformed input degrades to single-byte punct tokens,
//! which is the right behavior for a linter that must not crash on
//! the code it criticises.

/// Kind of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `HashMap`, `r#type`, `as`, …).
    Ident,
    /// Lifetime (`'a`, `'static`, `'_`).
    Lifetime,
    /// `"…"` or `b"…"` string literal (escapes resolved lexically,
    /// content opaque).
    Str,
    /// `r"…"`, `r#"…"#`, `br"…"` raw string literal at any `#` depth.
    RawStr,
    /// `'x'` or `b'\n'` char/byte literal.
    Char,
    /// Numeric literal.
    Num,
    /// Operator or delimiter, possibly multi-byte (`::`, `..=`, `{`).
    Punct,
}

/// One token with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Exact source text of the token.
    pub text: String,
    /// 1-based source line.
    pub line: usize,
    /// 1-based byte column on that line.
    pub col: usize,
}

impl Token {
    /// `true` when the token is an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// `true` when the token is punctuation with exactly this text.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == s
    }
}

/// A lexed source file.
#[derive(Debug)]
pub struct LexedFile {
    /// All tokens in source order (comments and whitespace stripped).
    pub tokens: Vec<Token>,
    /// Whether the first non-whitespace bytes open a module doc
    /// (`//!` or `/*!`).
    pub has_module_doc: bool,
}

/// Multi-byte operators, longest first so the scanner can take the
/// first match.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Scanner state: byte cursor plus human line/column tracking.
struct Cursor<'a> {
    bytes: &'a [u8],
    i: usize,
    line: usize,
    col: usize,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            bytes: src.as_bytes(),
            i: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.i + ahead).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.i..].starts_with(s.as_bytes())
    }

    /// Consumes one byte, updating line/column bookkeeping.
    fn bump(&mut self) {
        if let Some(&b) = self.bytes.get(self.i) {
            self.i += 1;
            if b == b'\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn eof(&self) -> bool {
        self.i >= self.bytes.len()
    }
}

/// Lexes a whole source file. Never fails — see the module doc.
pub fn lex(src: &str) -> LexedFile {
    let trimmed = src.trim_start();
    let has_module_doc = trimmed.starts_with("//!") || trimmed.starts_with("/*!");
    let mut c = Cursor::new(src);
    let mut tokens = Vec::new();
    while !c.eof() {
        let Some(b) = c.peek(0) else { break };
        // Whitespace.
        if b.is_ascii_whitespace() {
            c.bump();
            continue;
        }
        // Line comments (incl. doc comments).
        if c.starts_with("//") {
            while !c.eof() && c.peek(0) != Some(b'\n') {
                c.bump();
            }
            continue;
        }
        // Nested block comments.
        if c.starts_with("/*") {
            let mut depth = 0_usize;
            while !c.eof() {
                if c.starts_with("/*") {
                    depth += 1;
                    c.bump_n(2);
                } else if c.starts_with("*/") {
                    depth -= 1;
                    c.bump_n(2);
                    if depth == 0 {
                        break;
                    }
                } else {
                    c.bump();
                }
            }
            continue;
        }
        let (line, col) = (c.line, c.col);
        let start = c.i;
        // Raw strings / raw identifiers / byte literals / identifiers.
        if is_ident_start(b) {
            if let Some(tok) = lex_prefixed_literal(&mut c) {
                tokens.push(Token { line, col, ..tok });
                continue;
            }
            while c.peek(0).is_some_and(is_ident_continue) {
                c.bump();
            }
            tokens.push(token_at(TokenKind::Ident, &c, start, line, col));
            continue;
        }
        // Numbers.
        if b.is_ascii_digit() {
            lex_number(&mut c);
            tokens.push(token_at(TokenKind::Num, &c, start, line, col));
            continue;
        }
        // Strings.
        if b == b'"' {
            lex_quoted(&mut c);
            tokens.push(token_at(TokenKind::Str, &c, start, line, col));
            continue;
        }
        // Char literal or lifetime.
        if b == b'\'' {
            let kind = lex_char_or_lifetime(&mut c);
            tokens.push(token_at(kind, &c, start, line, col));
            continue;
        }
        // Multi-byte punctuation, longest match first.
        if let Some(p) = PUNCTS.iter().find(|p| c.starts_with(p)) {
            c.bump_n(p.len());
            tokens.push(token_at(TokenKind::Punct, &c, start, line, col));
            continue;
        }
        // Single-byte punctuation (also the malformed-input fallback).
        c.bump();
        tokens.push(token_at(TokenKind::Punct, &c, start, line, col));
    }
    LexedFile {
        tokens,
        has_module_doc,
    }
}

fn token_at(kind: TokenKind, c: &Cursor<'_>, start: usize, line: usize, col: usize) -> Token {
    Token {
        kind,
        text: String::from_utf8_lossy(&c.bytes[start..c.i]).into_owned(),
        line,
        col,
    }
}

/// Handles `r"…"`, `r#…#`-depth raw strings, `r#ident`, `b'…'`,
/// `b"…"`, and `br"…"` — all the literal forms that *start* with an
/// identifier byte. Returns `None` when the cursor actually sits on a
/// plain identifier.
fn lex_prefixed_literal(c: &mut Cursor<'_>) -> Option<Token> {
    let start = c.i;
    let b0 = c.peek(0)?;
    // b'…' byte char.
    if b0 == b'b' && c.peek(1) == Some(b'\'') {
        c.bump();
        lex_char_body(c);
        return Some(raw_token(TokenKind::Char, c, start));
    }
    // b"…" byte string.
    if b0 == b'b' && c.peek(1) == Some(b'"') {
        c.bump();
        lex_quoted(c);
        return Some(raw_token(TokenKind::Str, c, start));
    }
    // r / br raw strings at any # depth; r#ident raw identifiers.
    let hash_offset = match (b0, c.peek(1)) {
        (b'r', _) => 1,
        (b'b', Some(b'r')) => 2,
        _ => return None,
    };
    let mut hashes = 0;
    while c.peek(hash_offset + hashes) == Some(b'#') {
        hashes += 1;
    }
    match c.peek(hash_offset + hashes) {
        Some(b'"') => {
            c.bump_n(hash_offset + hashes + 1);
            let mut closer = vec![b'"'];
            closer.extend(std::iter::repeat_n(b'#', hashes));
            while !c.eof() && !c.bytes[c.i..].starts_with(&closer) {
                c.bump();
            }
            c.bump_n(closer.len().min(c.bytes.len() - c.i));
            Some(raw_token(TokenKind::RawStr, c, start))
        }
        // `r#ident` raw identifier: lex as a plain identifier.
        Some(bb) if hash_offset == 1 && hashes == 1 && is_ident_start(bb) => {
            c.bump_n(2);
            while c.peek(0).is_some_and(is_ident_continue) {
                c.bump();
            }
            Some(raw_token(TokenKind::Ident, c, start))
        }
        _ => None,
    }
}

fn raw_token(kind: TokenKind, c: &Cursor<'_>, start: usize) -> Token {
    Token {
        kind,
        text: String::from_utf8_lossy(&c.bytes[start..c.i]).into_owned(),
        line: 0,
        col: 0,
    }
}

/// Consumes a `"…"` body (opening quote under the cursor), honoring
/// backslash escapes. Unterminated strings run to end of file.
fn lex_quoted(c: &mut Cursor<'_>) {
    c.bump(); // opening quote
    while let Some(b) = c.peek(0) {
        match b {
            b'\\' => c.bump_n(2),
            b'"' => {
                c.bump();
                return;
            }
            _ => c.bump(),
        }
    }
}

/// Byte length of the UTF-8 sequence whose lead byte is `b` (1 for
/// ASCII and for invalid lead bytes, so malformed input still makes
/// progress).
fn utf8_len(b: u8) -> usize {
    match b {
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        0xf0..=0xf7 => 4,
        _ => 1,
    }
}

/// Consumes a `'…'` char-literal body (opening quote under cursor).
fn lex_char_body(c: &mut Cursor<'_>) {
    c.bump(); // opening quote
    match c.peek(0) {
        Some(b'\\') => {
            c.bump();
            if c.peek(0) == Some(b'u') {
                // \u{…}
                while !c.eof() && c.peek(0) != Some(b'}') && c.peek(0) != Some(b'\'') {
                    c.bump();
                }
                if c.peek(0) == Some(b'}') {
                    c.bump();
                }
            } else {
                c.bump();
            }
        }
        // A whole character, not a byte: `'°'` is two bytes of body.
        Some(b) => c.bump_n(utf8_len(b)),
        None => return,
    }
    if c.peek(0) == Some(b'\'') {
        c.bump();
    }
}

/// Distinguishes `'a'` / `'\n'` (char literal) from `'a` / `'static`
/// (lifetime) with bounded lookahead, then consumes the token.
fn lex_char_or_lifetime(c: &mut Cursor<'_>) -> TokenKind {
    // '\… is always a char literal.
    if c.peek(1) == Some(b'\\') {
        lex_char_body(c);
        return TokenKind::Char;
    }
    // 'x' (ident char then closing quote) is a char literal; 'x
    // followed by anything else is a lifetime. Non-ident chars ('(',
    // ' ') are char literals too.
    match c.peek(1) {
        Some(bb) if is_ident_start(bb) || bb.is_ascii_digit() => {
            if c.peek(1 + utf8_len(bb)) == Some(b'\'') {
                lex_char_body(c);
                TokenKind::Char
            } else {
                c.bump(); // quote
                while c.peek(0).is_some_and(is_ident_continue) {
                    c.bump();
                }
                TokenKind::Lifetime
            }
        }
        _ => {
            lex_char_body(c);
            TokenKind::Char
        }
    }
}

/// Consumes a numeric literal: decimal/underscore digits, base
/// prefixes, a fractional part (only when followed by a digit, so
/// ranges like `0..n` survive), and signed exponents.
fn lex_number(c: &mut Cursor<'_>) {
    let mut prev = 0_u8;
    while let Some(b) = c.peek(0) {
        let take = match b {
            b'0'..=b'9' | b'_' => true,
            b'a'..=b'd' | b'f'..=b'z' | b'A'..=b'D' | b'F'..=b'Z' => true,
            b'e' | b'E' => true,
            b'+' | b'-' => matches!(prev, b'e' | b'E'),
            b'.' => c.peek(1).is_some_and(|n| n.is_ascii_digit()) && !matches!(prev, b'.'),
            _ => false,
        };
        if !take {
            break;
        }
        prev = b;
        c.bump();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_keywords_and_puncts() {
        let toks = kinds("fn f(x: u32) -> u32 { x }");
        let texts: Vec<&str> = toks.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(
            texts,
            vec!["fn", "f", "(", "x", ":", "u32", ")", "->", "u32", "{", "x", "}"]
        );
        assert_eq!(toks[7].0, TokenKind::Punct);
        assert_eq!(toks[0].0, TokenKind::Ident);
    }

    #[test]
    fn multibyte_puncts_longest_match() {
        let texts: Vec<(TokenKind, String)> = kinds("a..=b >>= c :: d .. e");
        let ops: Vec<&str> = texts.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(ops, vec!["a", "..=", "b", ">>=", "c", "::", "d", "..", "e"]);
    }

    #[test]
    fn strings_are_atomic() {
        let toks = kinds(r#"let s = "x.unwrap() } { \" done";"#);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 1);
        // Nothing inside the string leaked out as tokens.
        assert!(!toks.iter().any(|(_, t)| t == "unwrap"));
        assert!(!toks.iter().any(|(_, t)| t == "{"));
    }

    #[test]
    fn raw_strings_any_hash_depth() {
        let src = "let a = r\"x}\"; let b = r##\"y\"# }\"##; let c = br#\"z\"#;";
        let toks = kinds(src);
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokenKind::RawStr).count(),
            3
        );
        // The brace inside the raw strings never surfaced.
        assert!(!toks.iter().any(|(_, t)| t == "}"));
    }

    #[test]
    fn raw_identifiers_are_idents() {
        let toks = kinds("let r#type = 1;");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "r#type"));
    }

    #[test]
    fn chars_vs_lifetimes() {
        let toks = kinds(r"fn f<'a>(x: &'a str) { let c = 'x'; let n = '\n'; let u = '\u{7f}'; }");
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Lifetime)
                .count(),
            2
        );
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokenKind::Char).count(),
            3
        );
    }

    #[test]
    fn multibyte_char_literals_stay_whole() {
        // Regression (found by the property tests): the char body must
        // consume whole characters, not single bytes — `'°'` is a
        // two-byte body and `b'°` must not split the sequence.
        let toks = kinds("let a = '°'; let b = 'é';");
        let chars: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Char)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(chars, vec!["'°'", "'é'"]);
        let toks = kinds("b'°((");
        assert!(toks
            .iter()
            .all(|(_, t)| std::str::from_utf8(t.as_bytes()).is_ok()));
        assert!(!toks.iter().any(|(_, t)| t.contains('\u{fffd}')));
    }

    #[test]
    fn nested_block_comments_strip() {
        let toks = kinds("a /* outer /* inner */ still comment */ b");
        let texts: Vec<&str> = toks.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(texts, vec!["a", "b"]);
    }

    #[test]
    fn numbers_with_exponents_and_ranges() {
        let toks = kinds("for i in 0..10 { let x = 1.5e-3 + 0xFF; }");
        let nums: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Num)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(nums, vec!["0", "10", "1.5e-3", "0xFF"]);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Punct && t == ".."));
    }

    #[test]
    fn method_on_float_literal_is_not_swallowed() {
        let toks = kinds("let x = 1.0.floor();");
        let texts: Vec<&str> = toks.iter().map(|(_, t)| t.as_str()).collect();
        assert!(texts.contains(&"1.0"));
        assert!(texts.contains(&"floor"));
    }

    #[test]
    fn spans_are_one_based_byte_columns() {
        let f = lex("ab cd\n  efg");
        assert_eq!((f.tokens[0].line, f.tokens[0].col), (1, 1));
        assert_eq!((f.tokens[1].line, f.tokens[1].col), (1, 4));
        assert_eq!((f.tokens[2].line, f.tokens[2].col), (2, 3));
    }

    #[test]
    fn module_doc_detection() {
        assert!(lex("//! doc\nfn f() {}\n").has_module_doc);
        assert!(lex("\n  //! doc\n").has_module_doc);
        assert!(lex("/*! doc */\n").has_module_doc);
        assert!(!lex("// plain\nfn f() {}\n").has_module_doc);
        assert!(!lex("fn f() {}\n").has_module_doc);
    }

    #[test]
    fn unterminated_inputs_do_not_hang_or_panic() {
        for src in ["\"abc", "r#\"abc", "/* abc", "'a", "b'", "r#"] {
            let _ = lex(src);
        }
    }
}
