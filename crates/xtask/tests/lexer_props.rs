//! Property-based tests of the lint engine's hand-rolled lexer: the
//! lexer must never panic or hang on arbitrary input, spans must point
//! at the bytes they claim, and well-formed token streams must survive
//! a lex round-trip unchanged (with comments stripped).

// Test fixtures: panicking on a broken fixture is the right failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use xtask::lexer::{lex, TokenKind};

/// Arbitrary printable-ish source soup, including quote and comment
/// openers that never close.
fn soup() -> impl Strategy<Value = String> {
    prop::collection::vec(0u8..96u8, 0..200).prop_map(|v| {
        v.into_iter()
            .map(|b| {
                // Bias into the interesting alphabet: idents, quotes,
                // braces, comment openers, newlines, unicode.
                let alphabet: &[char] = &[
                    'a', 'b', '_', '0', '7', ' ', '\n', '\t', '"', '\'', '#', 'r', '/', '*', '{',
                    '}', '[', ']', '(', ')', '.', ':', '<', '>', '=', '+', '-', '!', '&', '|', ';',
                    ',', '°', 'é',
                ];
                alphabet[(b as usize) % alphabet.len()]
            })
            .collect()
    })
}

/// A lowercase identifier, 1–7 letters.
fn word() -> impl Strategy<Value = String> {
    prop::collection::vec(0u8..26u8, 1..8)
        .prop_map(|v| v.into_iter().map(|b| char::from(b'a' + b)).collect())
}

/// A single token's worth of well-formed source text, paired with the
/// kind the lexer must assign it.
fn well_formed_token() -> impl Strategy<Value = (String, TokenKind)> {
    (0u8..5u8, word(), 0u64..100_000).prop_map(|(pick, word, num)| match pick {
        0 => (word, TokenKind::Ident),
        1 => (format!("{num}"), TokenKind::Num),
        2 => (format!("\"{word}\""), TokenKind::Str),
        3 => (format!("r#\"{word}\"#"), TokenKind::RawStr),
        _ => ("::".to_owned(), TokenKind::Punct),
    })
}

/// String-literal body made only of bytes that need no escaping but
/// look like code (braces, comment openers, dots).
fn literal_body() -> impl Strategy<Value = String> {
    prop::collection::vec(0u8..11u8, 0..40).prop_map(|v| {
        v.into_iter()
            .map(|b| {
                let alphabet: &[char] = &['a', '{', '}', '(', ')', '[', ']', '/', '*', '.', ' '];
                alphabet[(b as usize) % alphabet.len()]
            })
            .collect()
    })
}

proptest! {
    /// Total on arbitrary input: never panics, and every token's span
    /// points at source bytes whose line actually starts with the
    /// token's text at the claimed column.
    #[test]
    fn lexing_never_fails_and_spans_point_at_their_bytes(src in soup()) {
        let lexed = lex(&src);
        let lines: Vec<&str> = src.lines().collect();
        let mut last = (0usize, 0usize);
        for t in &lexed.tokens {
            prop_assert!(t.line >= 1 && t.col >= 1);
            prop_assert!(!t.text.is_empty());
            // Strictly increasing source order.
            prop_assert!((t.line, t.col) > last, "token order regressed at {:?}", t);
            last = (t.line, t.col);
            // The first line of the token's text occurs at its span.
            let line = lines.get(t.line - 1).copied().unwrap_or("");
            let first = t.text.lines().next().unwrap_or("");
            prop_assert!(
                line.len() >= t.col - 1,
                "column past end of line for {:?}",
                t
            );
            prop_assert!(
                line.as_bytes()[t.col - 1..].starts_with(first.as_bytes()),
                "span mismatch: token {:?} vs line {:?}",
                t,
                line
            );
        }
    }

    /// Deterministic: the same input lexes to the same tokens.
    #[test]
    fn lexing_is_deterministic(src in soup()) {
        let a = lex(&src);
        let b = lex(&src);
        prop_assert_eq!(a.tokens, b.tokens);
        prop_assert_eq!(a.has_module_doc, b.has_module_doc);
    }

    /// Round-trip: a stream of well-formed tokens joined by whitespace
    /// (and stripped comments) lexes back to exactly those tokens.
    #[test]
    fn well_formed_streams_round_trip(
        parts in prop::collection::vec(well_formed_token(), 0..24),
        with_comments in any::<bool>(),
    ) {
        let sep = if with_comments { " /* zap */ " } else { "\n" };
        let src: String = parts
            .iter()
            .map(|(text, _)| text.as_str())
            .collect::<Vec<_>>()
            .join(sep);
        let lexed = lex(&src);
        prop_assert_eq!(lexed.tokens.len(), parts.len());
        for (tok, (text, kind)) in lexed.tokens.iter().zip(&parts) {
            prop_assert_eq!(&tok.text, text);
            prop_assert_eq!(tok.kind, *kind);
        }
    }

    /// Literal atomicity: anything between plain quotes is one opaque
    /// token — brace soup inside a string never reaches the parser.
    #[test]
    fn string_bodies_are_atomic(body in literal_body()) {
        let src = format!("a = \"{body}\";");
        let lexed = lex(&src);
        let strings: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .collect();
        prop_assert_eq!(strings.len(), 1);
        prop_assert_eq!(&strings[0].text, &format!("\"{body}\""));
        // a, =, the string, ; — nothing inside the literal leaks out.
        prop_assert_eq!(lexed.tokens.len(), 4);
    }
}
