//! End-to-end self-test of the `cargo xtask lint` gate: the binary
//! must exit non-zero on a workspace containing a seeded violation
//! and zero once the violation is remediated.

// Test fixtures: panicking on a broken fixture is the right failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::{Path, PathBuf};
use std::process::Command;

struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn new(tag: &str) -> Fixture {
        let root =
            std::env::temp_dir().join(format!("xtask-selftest-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(root.join("crates/demo/src")).unwrap();
        std::fs::write(
            root.join("crates/demo/Cargo.toml"),
            "[package]\nname = \"demo\"\nversion = \"0.1.0\"\nedition = \"2021\"\n\n[lints]\nworkspace = true\n",
        )
        .unwrap();
        Fixture { root }
    }

    fn write_lib(&self, content: &str) {
        std::fs::write(self.root.join("crates/demo/src/lib.rs"), content).unwrap();
    }

    /// Writes any workspace-relative file, creating parent dirs — used
    /// to place fixtures at designated hot-path/clock module paths.
    /// Files under `crates/<name>/` get a minimal manifest too, since
    /// the walker only visits crate dirs that carry a `Cargo.toml`.
    fn write_file(&self, rel: &str, content: &str) {
        let path = self.root.join(rel);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(path, content).unwrap();
        if let Some(name) = rel
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
        {
            let manifest = self.root.join("crates").join(name).join("Cargo.toml");
            if !manifest.exists() {
                std::fs::write(
                    manifest,
                    format!(
                        "[package]\nname = \"{name}\"\nversion = \"0.1.0\"\nedition = \"2021\"\n\n[lints]\nworkspace = true\n"
                    ),
                )
                .unwrap();
            }
        }
    }

    fn lint(&self) -> (bool, String) {
        let (ok, _, stderr) = self.lint_args(&[]);
        (ok, stderr)
    }

    fn lint_args(&self, extra: &[&str]) -> (bool, String, String) {
        let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
            .args(["lint", "--root"])
            .arg(&self.root)
            .args(extra)
            .output()
            .expect("xtask binary runs");
        (
            out.status.success(),
            String::from_utf8_lossy(&out.stdout).into_owned(),
            String::from_utf8_lossy(&out.stderr).into_owned(),
        )
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

#[test]
fn seeded_violation_fails_and_clean_tree_passes() {
    let fx = Fixture::new("seeded");
    fx.write_lib("//! Demo crate.\n\n/// Doc.\npub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n");
    let (ok, stderr) = fx.lint();
    assert!(!ok, "lint must fail on a seeded unwrap: {stderr}");
    assert!(
        stderr.contains("forbidden-call"),
        "stderr names the rule: {stderr}"
    );

    fx.write_lib(
        "//! Demo crate.\n\n/// Doc.\npub fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n",
    );
    let (ok, stderr) = fx.lint();
    assert!(ok, "lint must pass once remediated: {stderr}");
}

#[test]
fn allowlist_suppresses_seeded_violation_but_stale_entries_fail() {
    let fx = Fixture::new("allow");
    fx.write_lib("//! Demo crate.\n\n/// Doc.\npub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n");
    std::fs::create_dir_all(fx.root.join("xtask")).unwrap();
    std::fs::write(
        fx.root.join("xtask/lint-allow.toml"),
        "[[allow]]\npath = \"crates/demo/src/lib.rs\"\npattern = \".unwrap()\"\nreason = \"seeded fixture\"\n",
    )
    .unwrap();
    let (ok, stderr) = fx.lint();
    assert!(ok, "allowlisted violation must pass: {stderr}");

    // Remediate the source but keep the entry: now it is stale.
    fx.write_lib(
        "//! Demo crate.\n\n/// Doc.\npub fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n",
    );
    let (ok, stderr) = fx.lint();
    assert!(!ok, "stale allowlist entry must fail the gate");
    assert!(
        stderr.contains("stale-allow"),
        "stderr names the rule: {stderr}"
    );
}

/// Every new rule family fires on a seeded fixture with a
/// span-accurate `file:line:column` diagnostic naming the rule.
#[test]
fn each_new_rule_fires_with_an_accurate_span() {
    let cases: &[(&str, &str, &str, &str)] = &[
        (
            "crates/demo/src/lib.rs",
            "//! Demo.\nuse std::collections::HashMap;\n/// D.\npub fn f() -> HashMap<u32, u32> { HashMap::new() }\n",
            "unordered-container",
            "lib.rs:2:23",
        ),
        (
            "crates/demo/src/lib.rs",
            "//! Demo.\n/// D.\npub fn f() -> std::time::Instant {\n    std::time::Instant::now()\n}\n",
            "ambient-authority",
            "lib.rs:4:16",
        ),
        (
            "crates/demo/src/lib.rs",
            "//! Demo.\n/// D.\npub fn f(m: &std::collections::BTreeMap<u32, f64>) -> f64 {\n    m.values().sum()\n}\n",
            "float-reduction-order",
            "lib.rs:4:16",
        ),
        (
            "crates/stream/src/service.rs",
            "//! Demo hot path.\n/// D.\npub fn f(xs: &[f64], i: usize) -> f64 {\n    xs[i]\n}\n",
            "hot-path-index",
            "service.rs:4:7",
        ),
    ];
    for (rel, source, rule, span) in cases {
        let fx = Fixture::new(&format!("rule-{rule}"));
        fx.write_file(rel, source);
        let (ok, stderr) = fx.lint();
        assert!(!ok, "{rule} fixture must fail the gate: {stderr}");
        assert!(stderr.contains(rule), "stderr names {rule}: {stderr}");
        assert!(
            stderr.contains(span),
            "diagnostic carries span {span}: {stderr}"
        );
    }

    let fx = Fixture::new("rule-hot-path-arith");
    fx.write_file(
        "crates/stream/src/service.rs",
        "//! Demo hot path.\n/// D.\npub fn f(xs: &[f64], i: usize) -> f64 {\n    xs[i + 1]\n}\n",
    );
    let (ok, stderr) = fx.lint();
    assert!(!ok, "hot-path-arith fixture must fail: {stderr}");
    assert!(
        stderr.contains("hot-path-arith"),
        "names the rule: {stderr}"
    );
    assert!(
        stderr.contains("service.rs:4:10"),
        "span points at the `+`: {stderr}"
    );
}

/// The same hot-path code outside a designated module passes, and a
/// designated clock module may read `Instant::now`.
#[test]
fn designations_scope_the_new_rules() {
    let fx = Fixture::new("designations");
    fx.write_lib("//! Demo.\n/// D.\npub fn f(xs: &[f64], i: usize) -> f64 {\n    xs[i + 1]\n}\n");
    let (ok, stderr) = fx.lint();
    assert!(ok, "indexing outside hot-path modules is fine: {stderr}");

    let fx = Fixture::new("clock");
    fx.write_file(
        "crates/bench/src/bin/timer.rs",
        "//! Demo clock module.\nfn main() {\n    let _ = std::time::Instant::now();\n}\n",
    );
    let (ok, stderr) = fx.lint();
    assert!(ok, "CLOCK_MODULES may read wall clocks: {stderr}");
}

/// Baseline lifecycle: seed → bootstrap → clean → remediate → the now
/// stale entry fails → regenerating shrinks; growing is refused.
#[test]
fn baseline_ratchet_only_shrinks() {
    let fx = Fixture::new("ratchet");
    let one = "//! Demo hot path.\n/// D.\npub fn f(xs: &[f64], i: usize) -> f64 {\n    xs[i]\n}\n";
    let two = "//! Demo hot path.\n/// D.\npub fn f(xs: &[f64], i: usize) -> f64 {\n    xs[i]\n}\n/// D.\npub fn g(xs: &[f64], i: usize) -> f64 {\n    xs[i]\n}\n";
    let zero = "//! Demo hot path.\n/// D.\npub fn f(xs: &[f64], i: usize) -> f64 {\n    xs.get(i).copied().unwrap_or(0.0)\n}\n";

    fx.write_file("crates/stream/src/service.rs", one);
    let (ok, _) = fx.lint();
    assert!(!ok, "unbaselined violation fails");

    // Bootstrap: with no baseline on disk, --update-baseline records
    // the current findings and the gate goes green.
    let (ok, _, stderr) = fx.lint_args(&["--update-baseline"]);
    assert!(ok, "bootstrap update succeeds: {stderr}");
    let (ok, stderr) = fx.lint();
    assert!(ok, "baselined violation passes: {stderr}");

    // Growth is refused: a second violation cannot be absorbed.
    fx.write_file("crates/stream/src/service.rs", two);
    let (ok, _, stderr) = fx.lint_args(&["--update-baseline"]);
    assert!(!ok, "ratchet must refuse growth: {stderr}");
    assert!(
        stderr.contains("grow") || stderr.contains("ratchet"),
        "refusal names the ratchet: {stderr}"
    );

    // Remediation leaves the baseline entry stale, which fails...
    fx.write_file("crates/stream/src/service.rs", zero);
    let (ok, stderr) = fx.lint();
    assert!(!ok, "stale baseline entry fails the gate");
    assert!(
        stderr.contains("stale-allow"),
        "reported as stale: {stderr}"
    );

    // ...until the baseline is regenerated (shrinking is always OK).
    let (ok, _, stderr) = fx.lint_args(&["--update-baseline"]);
    assert!(ok, "shrinking update succeeds: {stderr}");
    let (ok, stderr) = fx.lint();
    assert!(ok, "empty baseline on a clean tree passes: {stderr}");
}

/// `--json` output is byte-identical across runs (the machine-readable
/// report is canonical).
#[test]
fn json_report_is_byte_identical_across_runs() {
    let fx = Fixture::new("json");
    fx.write_lib(
        "//! Demo.\nuse std::collections::HashSet;\n/// D.\npub fn f() -> HashSet<u32> { HashSet::new() }\n",
    );
    let (ok1, out1, _) = fx.lint_args(&["--json"]);
    let (ok2, out2, _) = fx.lint_args(&["--json"]);
    assert_eq!(ok1, ok2);
    assert_eq!(out1, out2, "lint --json must be deterministic");
    assert!(out1.contains("\"schema\": \"xtask-lint/1\""));
    assert!(out1.contains("unordered-container"));
}

/// Duplicate allowlist entries are themselves violations, reported
/// with both line numbers.
#[test]
fn duplicate_allowlist_entries_fail_with_line_numbers() {
    let fx = Fixture::new("dupe");
    fx.write_lib("//! Demo.\n/// D.\npub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n");
    fx.write_file(
        "xtask/lint-allow.toml",
        "[[allow]]\npath = \"crates/demo/src/lib.rs\"\npattern = \".unwrap()\"\nreason = \"r\"\n\n\
         [[allow]]\npath = \"crates/demo/src/lib.rs\"\npattern = \".unwrap()\"\nreason = \"again\"\n",
    );
    let (ok, stderr) = fx.lint();
    assert!(!ok, "duplicate allow entries must fail: {stderr}");
    assert!(
        stderr.contains("duplicate of the entry at line 1"),
        "diagnostic cites the first entry's line: {stderr}"
    );
    assert!(
        stderr.contains("lint-allow.toml:6"),
        "diagnostic cites the second entry's line: {stderr}"
    );
}

#[test]
fn real_workspace_is_clean() {
    // The acceptance gate: the remediated workspace itself passes.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["lint", "--root"])
        .arg(&root)
        .output()
        .expect("xtask binary runs");
    assert!(
        out.status.success(),
        "workspace must be lint-clean:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}
