//! End-to-end self-test of the `cargo xtask lint` gate: the binary
//! must exit non-zero on a workspace containing a seeded violation
//! and zero once the violation is remediated.

// Test fixtures: panicking on a broken fixture is the right failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::{Path, PathBuf};
use std::process::Command;

struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn new(tag: &str) -> Fixture {
        let root =
            std::env::temp_dir().join(format!("xtask-selftest-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(root.join("crates/demo/src")).unwrap();
        std::fs::write(
            root.join("crates/demo/Cargo.toml"),
            "[package]\nname = \"demo\"\nversion = \"0.1.0\"\nedition = \"2021\"\n\n[lints]\nworkspace = true\n",
        )
        .unwrap();
        Fixture { root }
    }

    fn write_lib(&self, content: &str) {
        std::fs::write(self.root.join("crates/demo/src/lib.rs"), content).unwrap();
    }

    fn lint(&self) -> (bool, String) {
        let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
            .args(["lint", "--root"])
            .arg(&self.root)
            .output()
            .expect("xtask binary runs");
        (
            out.status.success(),
            String::from_utf8_lossy(&out.stderr).into_owned(),
        )
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

#[test]
fn seeded_violation_fails_and_clean_tree_passes() {
    let fx = Fixture::new("seeded");
    fx.write_lib("//! Demo crate.\n\n/// Doc.\npub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n");
    let (ok, stderr) = fx.lint();
    assert!(!ok, "lint must fail on a seeded unwrap: {stderr}");
    assert!(
        stderr.contains("forbidden-call"),
        "stderr names the rule: {stderr}"
    );

    fx.write_lib(
        "//! Demo crate.\n\n/// Doc.\npub fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n",
    );
    let (ok, stderr) = fx.lint();
    assert!(ok, "lint must pass once remediated: {stderr}");
}

#[test]
fn allowlist_suppresses_seeded_violation_but_stale_entries_fail() {
    let fx = Fixture::new("allow");
    fx.write_lib("//! Demo crate.\n\n/// Doc.\npub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n");
    std::fs::create_dir_all(fx.root.join("xtask")).unwrap();
    std::fs::write(
        fx.root.join("xtask/lint-allow.toml"),
        "[[allow]]\npath = \"crates/demo/src/lib.rs\"\npattern = \".unwrap()\"\nreason = \"seeded fixture\"\n",
    )
    .unwrap();
    let (ok, stderr) = fx.lint();
    assert!(ok, "allowlisted violation must pass: {stderr}");

    // Remediate the source but keep the entry: now it is stale.
    fx.write_lib(
        "//! Demo crate.\n\n/// Doc.\npub fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n",
    );
    let (ok, stderr) = fx.lint();
    assert!(!ok, "stale allowlist entry must fail the gate");
    assert!(
        stderr.contains("stale-allow"),
        "stderr names the rule: {stderr}"
    );
}

#[test]
fn real_workspace_is_clean() {
    // The acceptance gate: the remediated workspace itself passes.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["lint", "--root"])
        .arg(&root)
        .output()
        .expect("xtask binary runs");
    assert!(
        out.status.success(),
        "workspace must be lint-clean:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}
