//! Householder QR decomposition for least-squares solves.
//!
//! The numerically stable work-horse behind the identification step.

use crate::{LinalgError, Matrix, Result, Vector};

/// Householder QR decomposition of a tall (or square) matrix.
///
/// Factors `A = Q R` with `Q` orthonormal (`m × n`, thin form) and `R`
/// upper triangular (`n × n`). This is the numerically stable solver
/// behind the paper's least-squares identification step: the normal
/// equations of Eq. (3)/(4) are never formed; instead `min ‖Ax − b‖₂`
/// is solved as `R x = Qᵀ b`.
///
/// # Example
///
/// ```
/// use thermal_linalg::{Matrix, QrDecomposition, Vector};
///
/// # fn main() -> Result<(), thermal_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[
///     &[1.0, 1.0][..],
///     &[1.0, 2.0][..],
///     &[1.0, 3.0][..],
/// ])?;
/// let qr = QrDecomposition::new(&a)?;
/// // Fit y = 1 + 2 t exactly.
/// let y = Vector::from_slice(&[3.0, 5.0, 7.0]);
/// let beta = qr.solve(&y)?;
/// assert!((beta[0] - 1.0).abs() < 1e-10);
/// assert!((beta[1] - 2.0).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct QrDecomposition {
    /// Householder vectors stored below the diagonal of `R`, plus `R`
    /// itself on and above the diagonal. `m × n`.
    packed: Matrix,
    /// Householder scalar factors `tau_k`.
    tau: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl QrDecomposition {
    /// Computes the QR decomposition of `a`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::Underdetermined`] when `a` has fewer rows than
    ///   columns,
    /// * [`LinalgError::Empty`] when `a` has no entries,
    /// * [`LinalgError::NonFinite`] when `a` contains NaN or infinity.
    pub fn new(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m == 0 || n == 0 {
            return Err(LinalgError::Empty { op: "qr" });
        }
        if m < n {
            return Err(LinalgError::Underdetermined { rows: m, cols: n });
        }
        if !a.is_finite() {
            return Err(LinalgError::NonFinite { op: "qr" });
        }

        let mut r = a.clone();
        let mut tau = vec![0.0; n];
        // Reflector workspace: w[j - k - 1] = τ (vᵀ R)[j] for the
        // trailing columns of the current step.
        let mut w = vec![0.0; n];

        for k in 0..n {
            // Build the Householder reflector for column k, rows k..m.
            let mut norm = 0.0_f64;
            for i in k..m {
                norm = norm.hypot(r[(i, k)]);
            }
            if norm == 0.0 {
                tau[k] = 0.0;
                continue;
            }
            let alpha = if r[(k, k)] >= 0.0 { -norm } else { norm };
            let v0 = r[(k, k)] - alpha;
            // Normalise so v[k] == 1 implicitly; store v[i]/v0 below the
            // diagonal.
            for i in (k + 1)..m {
                let scaled = r[(i, k)] / v0;
                r[(i, k)] = scaled;
            }
            tau[k] = -v0 / alpha;
            r[(k, k)] = alpha;

            // Apply the reflector to the trailing columns, streaming
            // the packed matrix row by row (the trailing block is
            // walked twice, both times in row-major order): first
            // accumulate w = vᵀ R, then rank-1 update R -= v (τ w).
            let width = n - k - 1;
            if width == 0 {
                continue;
            }
            let wk = &mut w[..width];
            wk.copy_from_slice(&r.row(k)[k + 1..]);
            for i in (k + 1)..m {
                let vik = r.row(i)[k];
                let rrow = &r.row(i)[k + 1..];
                for (acc, rij) in wk.iter_mut().zip(rrow) {
                    *acc += vik * rij;
                }
            }
            for acc in wk.iter_mut() {
                *acc *= tau[k];
            }
            for (rkj, t) in r.row_mut(k)[k + 1..].iter_mut().zip(wk.iter()) {
                *rkj -= t;
            }
            for i in (k + 1)..m {
                let row = r.row_mut(i);
                let vik = row[k];
                for (rij, t) in row[k + 1..].iter_mut().zip(wk.iter()) {
                    *rij -= t * vik;
                }
            }
        }

        Ok(QrDecomposition {
            packed: r,
            tau,
            rows: m,
            cols: n,
        })
    }

    /// Number of rows of the factored matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns of the factored matrix.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The upper-triangular factor `R` (`n × n`).
    pub fn r(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.cols, |i, j| {
            if j >= i {
                self.packed[(i, j)]
            } else {
                0.0
            }
        })
    }

    /// The thin orthonormal factor `Q` (`m × n`), materialised by
    /// applying the stored reflectors to the identity.
    pub fn q(&self) -> Matrix {
        let (m, n) = (self.rows, self.cols);
        let mut q = Matrix::zeros(m, n);
        for i in 0..n {
            q[(i, i)] = 1.0;
        }
        // Apply H_k ... H_1 in reverse to form Q = H_1 ... H_n * I_thin,
        // streaming rows of Q (same two-pass shape as the factoriser).
        let mut w = vec![0.0; n];
        for k in (0..n).rev() {
            if self.tau[k] == 0.0 {
                continue;
            }
            w.copy_from_slice(q.row(k));
            for i in (k + 1)..m {
                let vik = self.packed.row(i)[k];
                for (acc, qij) in w.iter_mut().zip(q.row(i)) {
                    *acc += vik * qij;
                }
            }
            for acc in w.iter_mut() {
                *acc *= self.tau[k];
            }
            for (qkj, t) in q.row_mut(k).iter_mut().zip(w.iter()) {
                *qkj -= t;
            }
            for i in (k + 1)..m {
                let vik = self.packed.row(i)[k];
                for (qij, t) in q.row_mut(i).iter_mut().zip(w.iter()) {
                    *qij -= t * vik;
                }
            }
        }
        q
    }

    /// Applies `Qᵀ` to a vector of length `m`, returning the first `n`
    /// components (enough for least squares).
    fn qt_apply(&self, b: &Vector) -> Vec<f64> {
        let (m, n) = (self.rows, self.cols);
        let mut y: Vec<f64> = b.as_slice().to_vec();
        for k in 0..n {
            if self.tau[k] == 0.0 {
                continue;
            }
            let mut dot = y[k];
            for i in (k + 1)..m {
                dot += self.packed[(i, k)] * y[i];
            }
            let t = self.tau[k] * dot;
            y[k] -= t;
            for i in (k + 1)..m {
                y[i] -= t * self.packed[(i, k)];
            }
        }
        y.truncate(n);
        y
    }

    /// Solves the least-squares problem `min ‖A x − b‖₂`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::ShapeMismatch`] when `b.len() != rows`,
    /// * [`LinalgError::Singular`] when `A` is column-rank-deficient,
    /// * [`LinalgError::NonFinite`] when `b` contains NaN or infinity.
    pub fn solve(&self, b: &Vector) -> Result<Vector> {
        if b.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "qr solve",
                lhs: (self.rows, self.cols),
                rhs: (b.len(), 1),
            });
        }
        if !b.is_finite() {
            return Err(LinalgError::NonFinite { op: "qr solve" });
        }
        let y = self.qt_apply(b);
        self.back_substitute(&y).map(Vector::from)
    }

    /// Solves `min ‖A X − B‖_F` column by column; the independent
    /// right-hand sides fan out across `thermal-par` workers (column
    /// `j`'s solution never depends on scheduling, so the result is
    /// bitwise identical at any thread count).
    ///
    /// # Errors
    ///
    /// Same conditions as [`QrDecomposition::solve`], applied per
    /// column of `B`; with several failing columns the error of the
    /// lowest column index is reported.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let work = b.cols() * self.rows * self.cols;
        self.solve_matrix_with_threads(b, crate::kernel_threads(work))
    }

    /// [`QrDecomposition::solve_matrix`] with an explicit worker count
    /// (`threads == 1` is the sequential path).
    ///
    /// # Errors
    ///
    /// Same conditions as [`QrDecomposition::solve_matrix`].
    pub fn solve_matrix_with_threads(&self, b: &Matrix, threads: usize) -> Result<Matrix> {
        if b.rows() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "qr solve_matrix",
                lhs: (self.rows, self.cols),
                rhs: b.shape(),
            });
        }
        let col_idx: Vec<usize> = (0..b.cols()).collect();
        let solutions =
            thermal_par::try_parallel_map_with(threads, &col_idx, |&j| self.solve(&b.column(j)))?;
        let mut out = Matrix::zeros(self.cols, b.cols());
        for (j, x) in solutions.iter().enumerate() {
            for i in 0..self.cols {
                out[(i, j)] = x[i];
            }
        }
        Ok(out)
    }

    /// Back substitution `R x = y`.
    fn back_substitute(&self, y: &[f64]) -> Result<Vec<f64>> {
        let n = self.cols;
        // Relative singularity threshold against the largest diagonal.
        let max_diag = (0..n)
            .map(|i| self.packed[(i, i)].abs())
            .fold(0.0_f64, f64::max);
        let tol = max_diag * 1e-13;
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in (i + 1)..n {
                s -= self.packed[(i, j)] * x[j];
            }
            let d = self.packed[(i, i)];
            if d.abs() <= tol {
                return Err(LinalgError::Singular { index: i });
            }
            x[i] = s / d;
        }
        Ok(x)
    }

    /// Absolute value of `det(A)` for a square factored matrix
    /// (product of `|R|` diagonal entries).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] when the factored matrix was
    /// not square.
    pub fn abs_determinant(&self) -> Result<f64> {
        if self.rows != self.cols {
            return Err(LinalgError::NotSquare {
                shape: (self.rows, self.cols),
            });
        }
        Ok((0..self.cols).map(|i| self.packed[(i, i)].abs()).product())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(qr: &QrDecomposition) -> Matrix {
        qr.q().matmul(&qr.r()).unwrap()
    }

    #[test]
    fn factors_reconstruct_input() {
        let a = Matrix::from_rows(&[
            &[2.0, -1.0, 0.5][..],
            &[0.0, 3.5, 1.0][..],
            &[-1.0, 2.0, 4.0][..],
            &[0.5, 0.5, 0.5][..],
        ])
        .unwrap();
        let qr = QrDecomposition::new(&a).unwrap();
        assert!(reconstruct(&qr).approx_eq(&a, 1e-12));
    }

    #[test]
    fn q_is_orthonormal() {
        let a = Matrix::from_fn(5, 3, |r, c| ((r * 7 + c * 3) % 5) as f64 - 2.0);
        let qr = QrDecomposition::new(&a).unwrap();
        let q = qr.q();
        let qtq = q.transpose().matmul(&q).unwrap();
        assert!(qtq.approx_eq(&Matrix::identity(3), 1e-12));
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = Matrix::from_fn(4, 4, |r, c| 1.0 / ((r + c + 1) as f64));
        let qr = QrDecomposition::new(&a).unwrap();
        let r = qr.r();
        for i in 0..4 {
            for j in 0..i {
                assert_eq!(r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn solves_square_system_exactly() {
        let a = Matrix::from_rows(&[&[4.0, 1.0][..], &[1.0, 3.0][..]]).unwrap();
        let b = Vector::from_slice(&[9.0, 7.0]);
        let x = QrDecomposition::new(&a).unwrap().solve(&b).unwrap();
        // Solution of [4 1; 1 3] x = [9; 7] is x = [20/11; 19/11].
        assert!((x[0] - 20.0 / 11.0).abs() < 1e-12);
        assert!((x[1] - 19.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn least_squares_residual_is_orthogonal_to_columns() {
        let a = Matrix::from_rows(&[
            &[1.0, 0.0][..],
            &[1.0, 1.0][..],
            &[1.0, 2.0][..],
            &[1.0, 3.0][..],
        ])
        .unwrap();
        let b = Vector::from_slice(&[1.0, 2.0, 2.0, 4.0]);
        let x = QrDecomposition::new(&a).unwrap().solve(&b).unwrap();
        let r = &b - &a.matvec(&x).unwrap();
        for c in 0..a.cols() {
            assert!(a.column(c).dot(&r).unwrap().abs() < 1e-10);
        }
    }

    #[test]
    fn solve_matrix_matches_columnwise_solve() {
        let a = Matrix::from_fn(4, 2, |r, c| {
            (r + 1) as f64 * (c + 1) as f64 + (r % 2) as f64
        });
        let b = Matrix::from_fn(4, 3, |r, c| (r as f64 - c as f64).sin());
        let qr = QrDecomposition::new(&a).unwrap();
        let x = qr.solve_matrix(&b).unwrap();
        for j in 0..3 {
            let xj = qr.solve(&b.column(j)).unwrap();
            for i in 0..2 {
                assert!((x[(i, j)] - xj[i]).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn detects_rank_deficiency() {
        // Second column is twice the first.
        let a = Matrix::from_rows(&[&[1.0, 2.0][..], &[2.0, 4.0][..], &[3.0, 6.0][..]]).unwrap();
        let qr = QrDecomposition::new(&a).unwrap();
        let b = Vector::from_slice(&[1.0, 2.0, 3.0]);
        assert!(matches!(qr.solve(&b), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(matches!(
            QrDecomposition::new(&Matrix::zeros(0, 0)),
            Err(LinalgError::Empty { .. })
        ));
        assert!(matches!(
            QrDecomposition::new(&Matrix::zeros(2, 3)),
            Err(LinalgError::Underdetermined { .. })
        ));
        let mut bad = Matrix::zeros(2, 2);
        bad[(0, 0)] = f64::NAN;
        assert!(matches!(
            QrDecomposition::new(&bad),
            Err(LinalgError::NonFinite { .. })
        ));
        let qr = QrDecomposition::new(&Matrix::identity(2)).unwrap();
        assert!(qr.solve(&Vector::zeros(3)).is_err());
        assert!(qr
            .solve(&Vector::from_slice(&[f64::INFINITY, 0.0]))
            .is_err());
    }

    #[test]
    fn abs_determinant_of_known_matrix() {
        let a = Matrix::from_rows(&[&[3.0, 0.0][..], &[0.0, 2.0][..]]).unwrap();
        let qr = QrDecomposition::new(&a).unwrap();
        assert!((qr.abs_determinant().unwrap() - 6.0).abs() < 1e-12);
        let tall =
            QrDecomposition::new(&Matrix::from_fn(3, 2, |r, c| (r + c) as f64 + 1.0)).unwrap();
        assert!(tall.abs_determinant().is_err());
    }

    #[test]
    fn handles_zero_column_gracefully() {
        // First column all zeros: decomposition succeeds, solve reports
        // singularity.
        let a = Matrix::from_rows(&[&[0.0, 1.0][..], &[0.0, 2.0][..], &[0.0, 3.0][..]]).unwrap();
        let qr = QrDecomposition::new(&a).unwrap();
        assert!(qr.solve(&Vector::from_slice(&[1.0, 1.0, 1.0])).is_err());
    }
}
