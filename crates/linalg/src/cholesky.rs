//! Cholesky factorisation of symmetric positive-definite matrices.
//!
//! Backs the ridge-regularised normal equations of the identification
//! stage and the Gaussian-process mutual-information selector.

use crate::{LinalgError, Matrix, Result, Vector};

/// Cholesky decomposition `A = L Lᵀ` of a symmetric positive-definite
/// matrix.
///
/// Used by the ridge-regularised normal equations
/// (`(XᵀX + λI) β = Xᵀy`) of the identification stage and by the
/// Gaussian-process mutual-information sensor selector, where
/// conditional variances reduce to Schur complements of covariance
/// blocks.
///
/// # Example
///
/// ```
/// use thermal_linalg::{CholeskyDecomposition, Matrix, Vector};
///
/// # fn main() -> Result<(), thermal_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[4.0, 2.0][..], &[2.0, 3.0][..]])?;
/// let chol = CholeskyDecomposition::new(&a)?;
/// let x = chol.solve(&Vector::from_slice(&[2.0, 1.0]))?;
/// // Verify A x = b.
/// let b = a.matvec(&x)?;
/// assert!((b[0] - 2.0).abs() < 1e-12 && (b[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CholeskyDecomposition {
    /// Lower-triangular factor, stored densely.
    l: Matrix,
}

impl CholeskyDecomposition {
    /// Factors the symmetric positive-definite matrix `a`.
    ///
    /// Only the lower triangle of `a` is read; symmetry of the upper
    /// triangle is trusted (callers holding near-symmetric matrices
    /// should symmetrise first).
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] for non-square input,
    /// * [`LinalgError::Empty`] for a `0 × 0` input,
    /// * [`LinalgError::NonFinite`] for NaN/∞ entries,
    /// * [`LinalgError::NotPositiveDefinite`] when a pivot is not
    ///   strictly positive.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::Empty { op: "cholesky" });
        }
        if !a.is_finite() {
            return Err(LinalgError::NonFinite { op: "cholesky" });
        }
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            let mut d = a[(j, j)];
            for k in 0..j {
                d -= l[(j, k)] * l[(j, k)];
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(LinalgError::NotPositiveDefinite { index: j, pivot: d });
            }
            let dsqrt = d.sqrt();
            l[(j, j)] = dsqrt;
            for i in (j + 1)..n {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = s / dsqrt;
            }
        }
        Ok(CholeskyDecomposition { l })
    }

    /// Rebuilds a decomposition from a previously extracted factor
    /// `L` (snapshot restore path): the factor must be square,
    /// non-empty, finite, and carry a strictly positive diagonal.
    /// Entries above the diagonal are trusted to be zero — `L` comes
    /// from [`CholeskyDecomposition::l`], which never writes them.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] for a non-square factor,
    /// * [`LinalgError::Empty`] for a `0 × 0` factor,
    /// * [`LinalgError::NonFinite`] for NaN/∞ entries,
    /// * [`LinalgError::NotPositiveDefinite`] for a non-positive
    ///   diagonal entry.
    pub fn from_factor(l: Matrix) -> Result<Self> {
        if !l.is_square() {
            return Err(LinalgError::NotSquare { shape: l.shape() });
        }
        if l.rows() == 0 {
            return Err(LinalgError::Empty {
                op: "cholesky from_factor",
            });
        }
        if !l.is_finite() {
            return Err(LinalgError::NonFinite {
                op: "cholesky from_factor",
            });
        }
        for j in 0..l.rows() {
            let pivot = l[(j, j)];
            if pivot <= 0.0 {
                return Err(LinalgError::NotPositiveDefinite { index: j, pivot });
            }
        }
        Ok(CholeskyDecomposition { l })
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solves `A x = b` via forward and back substitution.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `b.len() != dim()`.
    pub fn solve(&self, b: &Vector) -> Result<Vector> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Forward: L y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for k in 0..i {
                s -= self.l[(i, k)] * y[k];
            }
            y[i] = s / self.l[(i, i)];
        }
        // Back: Lᵀ x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for k in (i + 1)..n {
                s -= self.l[(k, i)] * x[k];
            }
            x[i] = s / self.l[(i, i)];
        }
        Ok(Vector::from(x))
    }

    /// Solves `A X = B` column by column.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `B.rows() != dim()`.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky solve_matrix",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let x = self.solve(&b.column(j))?;
            for i in 0..n {
                out[(i, j)] = x[i];
            }
        }
        Ok(out)
    }

    /// Determinant of `A` (square of the product of `L`'s diagonal).
    pub fn determinant(&self) -> f64 {
        let p: f64 = (0..self.dim()).map(|i| self.l[(i, i)]).product();
        p * p
    }

    /// Natural log-determinant of `A`, computed stably as
    /// `2 Σ ln L_ii` (used by the GP mutual-information objective).
    pub fn log_determinant(&self) -> f64 {
        2.0 * (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>()
    }

    /// Inverse of `A` (solve against the identity). Prefer
    /// [`CholeskyDecomposition::solve`] when a solve suffices.
    ///
    /// # Errors
    ///
    /// Propagates any [`LinalgError`] from the underlying solve.
    pub fn inverse(&self) -> Result<Matrix> {
        let n = self.dim();
        self.solve_matrix(&Matrix::identity(n))
    }

    /// Rescales the factorisation from `A` to `factor · A` in place
    /// (by scaling `L` with `√factor`).
    ///
    /// This is the forgetting step of a recursive least-squares
    /// estimator: the information matrix decays as `P ← λ P` each
    /// slot before the new observation is folded in with
    /// [`CholeskyDecomposition::rank_one_update`].
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidData`] unless `factor` is finite
    /// and strictly positive.
    pub fn scale(&mut self, factor: f64) -> Result<()> {
        if !factor.is_finite() || factor <= 0.0 {
            return Err(LinalgError::InvalidData {
                reason: "cholesky scale factor must be finite and positive",
            });
        }
        let root = factor.sqrt();
        let n = self.dim();
        for i in 0..n {
            for j in 0..=i {
                self.l[(i, j)] *= root;
            }
        }
        Ok(())
    }

    /// Rank-1 update: replaces the factorisation of `A` with one of
    /// `A + x xᵀ` in `O(n²)`, without refactorising.
    ///
    /// Uses the LINPACK `dchud` Givens sweep: each step rotates the
    /// diagonal pivot against the carried vector, so the factor stays
    /// lower-triangular with a positive diagonal. An update of an SPD
    /// matrix is always SPD, hence this cannot lose positive
    /// definiteness.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::ShapeMismatch`] when `x.len() != dim()`,
    /// * [`LinalgError::NonFinite`] for NaN/∞ entries in `x`.
    pub fn rank_one_update(&mut self, x: &Vector) -> Result<()> {
        let mut workspace = Vec::new();
        self.rank_one_update_with(x.as_slice(), &mut workspace)
    }

    /// Rank-1 update taking a slice and a caller-owned workspace, so
    /// steady-state callers (the RLS estimator, the sweep cache) can
    /// run the Givens sweep without heap allocation.
    ///
    /// The workspace is cleared and refilled with a copy of `x`; its
    /// capacity is retained across calls. Arithmetic is identical to
    /// [`CholeskyDecomposition::rank_one_update`].
    ///
    /// # Errors
    ///
    /// * [`LinalgError::ShapeMismatch`] when `x.len() != dim()`,
    /// * [`LinalgError::NonFinite`] for NaN/∞ entries in `x`.
    pub fn rank_one_update_with(&mut self, x: &[f64], workspace: &mut Vec<f64>) -> Result<()> {
        let n = self.dim();
        if x.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky rank-1 update",
                lhs: (n, n),
                rhs: (x.len(), 1),
            });
        }
        if !x.iter().all(|v| v.is_finite()) {
            return Err(LinalgError::NonFinite {
                op: "cholesky rank-1 update",
            });
        }
        workspace.clear();
        workspace.extend_from_slice(x);
        let w = workspace.as_mut_slice();
        for k in 0..n {
            let pivot = self.l[(k, k)];
            let r = pivot.hypot(w[k]);
            let c = r / pivot;
            let s = w[k] / pivot;
            self.l[(k, k)] = r;
            for i in (k + 1)..n {
                self.l[(i, k)] = (self.l[(i, k)] + s * w[i]) / c;
                w[i] = c * w[i] - s * self.l[(i, k)];
            }
        }
        Ok(())
    }

    /// Rank-1 downdate: replaces the factorisation of `A` with one of
    /// `A - x xᵀ` in `O(n²)`, without refactorising.
    ///
    /// The downdated matrix may not be positive definite; the sweep
    /// runs on a scratch copy and commits only on success, so a
    /// failed downdate leaves the factorisation untouched.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::ShapeMismatch`] when `x.len() != dim()`,
    /// * [`LinalgError::NonFinite`] for NaN/∞ entries in `x`,
    /// * [`LinalgError::NotPositiveDefinite`] when `A - x xᵀ` is not
    ///   positive definite (the factorisation is left unchanged).
    pub fn rank_one_downdate(&mut self, x: &Vector) -> Result<()> {
        let n = self.dim();
        if x.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky rank-1 downdate",
                lhs: (n, n),
                rhs: (x.len(), 1),
            });
        }
        if !x.is_finite() {
            return Err(LinalgError::NonFinite {
                op: "cholesky rank-1 downdate",
            });
        }
        let mut l = self.l.clone();
        let mut w = x.as_slice().to_vec();
        for k in 0..n {
            let pivot = l[(k, k)];
            let d = pivot * pivot - w[k] * w[k];
            if d <= 0.0 || !d.is_finite() {
                return Err(LinalgError::NotPositiveDefinite { index: k, pivot: d });
            }
            let r = d.sqrt();
            let c = r / pivot;
            let s = w[k] / pivot;
            l[(k, k)] = r;
            for i in (k + 1)..n {
                l[(i, k)] = (l[(i, k)] - s * w[i]) / c;
                w[i] = c * w[i] - s * l[(i, k)];
            }
        }
        self.l = l;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        Matrix::from_rows(&[
            &[4.0, 2.0, 0.6][..],
            &[2.0, 5.0, 1.0][..],
            &[0.6, 1.0, 3.0][..],
        ])
        .unwrap()
    }

    #[test]
    fn factor_reconstructs_matrix() {
        let a = spd3();
        let chol = CholeskyDecomposition::new(&a).unwrap();
        let llt = chol.l().matmul(&chol.l().transpose()).unwrap();
        assert!(llt.approx_eq(&a, 1e-12));
    }

    #[test]
    fn l_is_lower_triangular_with_positive_diagonal() {
        let chol = CholeskyDecomposition::new(&spd3()).unwrap();
        let l = chol.l();
        for i in 0..3 {
            assert!(l[(i, i)] > 0.0);
            for j in (i + 1)..3 {
                assert_eq!(l[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn solve_satisfies_system() {
        let a = spd3();
        let chol = CholeskyDecomposition::new(&a).unwrap();
        let b = Vector::from_slice(&[1.0, -2.0, 0.5]);
        let x = chol.solve(&b).unwrap();
        let back = a.matvec(&x).unwrap();
        for i in 0..3 {
            assert!((back[i] - b[i]).abs() < 1e-12);
        }
        assert!(chol.solve(&Vector::zeros(2)).is_err());
    }

    #[test]
    fn solve_matrix_and_inverse() {
        let a = spd3();
        let chol = CholeskyDecomposition::new(&a).unwrap();
        let inv = chol.inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(3), 1e-10));
        assert!(chol.solve_matrix(&Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn determinant_matches_known_value() {
        let a = Matrix::from_rows(&[&[2.0, 0.0][..], &[0.0, 8.0][..]]).unwrap();
        let chol = CholeskyDecomposition::new(&a).unwrap();
        assert!((chol.determinant() - 16.0).abs() < 1e-12);
        assert!((chol.log_determinant() - 16.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn rejects_non_spd() {
        let indef = Matrix::from_rows(&[&[1.0, 2.0][..], &[2.0, 1.0][..]]).unwrap();
        assert!(matches!(
            CholeskyDecomposition::new(&indef),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
        let zero = Matrix::zeros(2, 2);
        assert!(CholeskyDecomposition::new(&zero).is_err());
    }

    #[test]
    fn rejects_bad_shapes_and_nan() {
        assert!(matches!(
            CholeskyDecomposition::new(&Matrix::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
        assert!(matches!(
            CholeskyDecomposition::new(&Matrix::zeros(0, 0)),
            Err(LinalgError::Empty { .. })
        ));
        let mut nan = Matrix::identity(2);
        nan[(1, 1)] = f64::NAN;
        assert!(matches!(
            CholeskyDecomposition::new(&nan),
            Err(LinalgError::NonFinite { .. })
        ));
    }

    #[test]
    fn rank_one_update_matches_refactorisation() {
        let a = spd3();
        let x = Vector::from_slice(&[0.7, -1.1, 0.4]);
        let mut chol = CholeskyDecomposition::new(&a).unwrap();
        chol.rank_one_update(&x).unwrap();
        let mut bumped = a.clone();
        for i in 0..3 {
            for j in 0..3 {
                bumped[(i, j)] += x[i] * x[j];
            }
        }
        let fresh = CholeskyDecomposition::new(&bumped).unwrap();
        assert!(chol.l().approx_eq(fresh.l(), 1e-12));
    }

    #[test]
    fn rank_one_downdate_inverts_update() {
        let a = spd3();
        let x = Vector::from_slice(&[0.3, 0.9, -0.5]);
        let mut chol = CholeskyDecomposition::new(&a).unwrap();
        chol.rank_one_update(&x).unwrap();
        chol.rank_one_downdate(&x).unwrap();
        let original = CholeskyDecomposition::new(&a).unwrap();
        assert!(chol.l().approx_eq(original.l(), 1e-10));
    }

    #[test]
    fn failed_downdate_leaves_factor_untouched() {
        let a = spd3();
        let mut chol = CholeskyDecomposition::new(&a).unwrap();
        let before = chol.l().clone();
        // Removing 10·e0 e0ᵀ makes the (0,0) pivot negative.
        let too_big = Vector::from_slice(&[10.0, 0.0, 0.0]);
        assert!(matches!(
            chol.rank_one_downdate(&too_big),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
        assert_eq!(chol.l(), &before, "failed downdate must not commit");
    }

    #[test]
    fn rank_one_rejects_bad_vectors() {
        let mut chol = CholeskyDecomposition::new(&spd3()).unwrap();
        assert!(matches!(
            chol.rank_one_update(&Vector::zeros(2)),
            Err(LinalgError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            chol.rank_one_downdate(&Vector::zeros(4)),
            Err(LinalgError::ShapeMismatch { .. })
        ));
        let nan = Vector::from_slice(&[0.0, f64::NAN, 0.0]);
        assert!(matches!(
            chol.rank_one_update(&nan),
            Err(LinalgError::NonFinite { .. })
        ));
    }

    #[test]
    fn scale_matches_refactorisation() {
        let a = spd3();
        let mut chol = CholeskyDecomposition::new(&a).unwrap();
        chol.scale(0.25).unwrap();
        let mut shrunk = a.clone();
        for i in 0..3 {
            for j in 0..3 {
                shrunk[(i, j)] *= 0.25;
            }
        }
        let fresh = CholeskyDecomposition::new(&shrunk).unwrap();
        assert!(chol.l().approx_eq(fresh.l(), 1e-12));
        assert!(chol.scale(0.0).is_err());
        assert!(chol.scale(-1.0).is_err());
        assert!(chol.scale(f64::NAN).is_err());
    }

    #[test]
    fn one_by_one_matrix() {
        let a = Matrix::from_rows(&[&[9.0][..]]).unwrap();
        let chol = CholeskyDecomposition::new(&a).unwrap();
        assert_eq!(chol.l()[(0, 0)], 3.0);
        assert_eq!(chol.determinant(), 9.0);
        let x = chol.solve(&Vector::from_slice(&[18.0])).unwrap();
        assert_eq!(x[0], 2.0);
    }
}
