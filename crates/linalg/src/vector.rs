//! Dense `f64` column vector container and arithmetic.

use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

use crate::{LinalgError, Result};

/// A dense column vector of `f64` values.
///
/// `Vector` is a thin, owned wrapper around `Vec<f64>` that adds the
/// arithmetic the rest of the workspace needs (dot products, norms,
/// element-wise combination) while keeping conversion to and from
/// plain slices free.
///
/// # Example
///
/// ```
/// use thermal_linalg::Vector;
///
/// let a = Vector::from_slice(&[3.0, 4.0]);
/// assert_eq!(a.norm2(), 5.0);
/// let b = &a + &Vector::from_slice(&[1.0, -4.0]);
/// assert_eq!(b.as_slice(), &[4.0, 0.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Vector {
    data: Vec<f64>,
}

impl Vector {
    /// Creates a vector of `len` zeros.
    ///
    /// ```
    /// use thermal_linalg::Vector;
    /// let z = Vector::zeros(3);
    /// assert_eq!(z.as_slice(), &[0.0, 0.0, 0.0]);
    /// ```
    pub fn zeros(len: usize) -> Self {
        Vector {
            data: vec![0.0; len],
        }
    }

    /// Creates a vector whose entries are all `value`.
    pub fn filled(len: usize, value: f64) -> Self {
        Vector {
            data: vec![value; len],
        }
    }

    /// Creates a vector by copying a slice.
    pub fn from_slice(values: &[f64]) -> Self {
        Vector {
            data: values.to_vec(),
        }
    }

    /// Creates a vector from a generating function of the index.
    ///
    /// ```
    /// use thermal_linalg::Vector;
    /// let v = Vector::from_fn(4, |i| i as f64 * 2.0);
    /// assert_eq!(v.as_slice(), &[0.0, 2.0, 4.0, 6.0]);
    /// ```
    pub fn from_fn(len: usize, f: impl FnMut(usize) -> f64) -> Self {
        Vector {
            data: (0..len).map(f).collect(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the vector has no entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the underlying storage as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the underlying storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the vector, returning the underlying storage.
    pub fn into_inner(self) -> Vec<f64> {
        self.data
    }

    /// Returns entry `i`, or `None` when out of bounds.
    pub fn get(&self, i: usize) -> Option<f64> {
        self.data.get(i).copied()
    }

    /// Iterates over entries by value.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.data.iter().copied()
    }

    /// Dot product with another vector.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when lengths differ.
    pub fn dot(&self, other: &Vector) -> Result<f64> {
        if self.len() != other.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "dot",
                lhs: (self.len(), 1),
                rhs: (other.len(), 1),
            });
        }
        Ok(self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum())
    }

    /// Euclidean (L2) norm.
    pub fn norm2(&self) -> f64 {
        // Scaled to avoid overflow on pathological magnitudes.
        let maxabs = self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
        if maxabs == 0.0 {
            return 0.0;
        }
        let ssq: f64 = self.data.iter().map(|v| (v / maxabs).powi(2)).sum();
        maxabs * ssq.sqrt()
    }

    /// Maximum absolute entry (L∞ norm); `0.0` for an empty vector.
    pub fn norm_inf(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// Sum of entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of the entries.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] for an empty vector.
    pub fn mean(&self) -> Result<f64> {
        if self.is_empty() {
            return Err(LinalgError::Empty { op: "mean" });
        }
        Ok(self.sum() / self.len() as f64)
    }

    /// Multiplies every entry by `s`, returning a new vector.
    pub fn scaled(&self, s: f64) -> Vector {
        Vector {
            data: self.data.iter().map(|v| v * s).collect(),
        }
    }

    /// In-place `self += alpha * other` (axpy).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when lengths differ.
    pub fn axpy(&mut self, alpha: f64, other: &Vector) -> Result<()> {
        if self.len() != other.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "axpy",
                lhs: (self.len(), 1),
                rhs: (other.len(), 1),
            });
        }
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// `true` when every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl Index<usize> for Vector {
    type Output = f64;

    fn index(&self, i: usize) -> &f64 {
        &self.data[i]
    }
}

impl IndexMut<usize> for Vector {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.data[i]
    }
}

impl From<Vec<f64>> for Vector {
    fn from(data: Vec<f64>) -> Self {
        Vector { data }
    }
}

impl From<Vector> for Vec<f64> {
    fn from(v: Vector) -> Self {
        v.data
    }
}

impl AsRef<[f64]> for Vector {
    fn as_ref(&self) -> &[f64] {
        &self.data
    }
}

impl FromIterator<f64> for Vector {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Vector {
            data: iter.into_iter().collect(),
        }
    }
}

impl Extend<f64> for Vector {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        self.data.extend(iter);
    }
}

impl fmt::Display for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.data.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.6}")?;
        }
        write!(f, "]")
    }
}

macro_rules! impl_elementwise {
    ($trait:ident, $method:ident, $op:tt, $name:expr) => {
        impl $trait<&Vector> for &Vector {
            type Output = Vector;

            fn $method(self, rhs: &Vector) -> Vector {
                assert_eq!(
                    self.len(),
                    rhs.len(),
                    concat!($name, ": vector lengths differ")
                );
                Vector {
                    data: self
                        .data
                        .iter()
                        .zip(&rhs.data)
                        .map(|(a, b)| a $op b)
                        .collect(),
                }
            }
        }
    };
}

impl_elementwise!(Add, add, +, "add");
impl_elementwise!(Sub, sub, -, "sub");

impl AddAssign<&Vector> for Vector {
    fn add_assign(&mut self, rhs: &Vector) {
        assert_eq!(self.len(), rhs.len(), "add_assign: vector lengths differ");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }
}

impl SubAssign<&Vector> for Vector {
    fn sub_assign(&mut self, rhs: &Vector) {
        assert_eq!(self.len(), rhs.len(), "sub_assign: vector lengths differ");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a -= b;
        }
    }
}

impl Mul<f64> for &Vector {
    type Output = Vector;

    fn mul(self, s: f64) -> Vector {
        self.scaled(s)
    }
}

impl Neg for &Vector {
    type Output = Vector;

    fn neg(self) -> Vector {
        self.scaled(-1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let v = Vector::from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(v.len(), 3);
        assert!(!v.is_empty());
        assert_eq!(v[1], 2.0);
        assert_eq!(v.get(2), Some(3.0));
        assert_eq!(v.get(3), None);
    }

    #[test]
    fn zeros_and_filled() {
        assert_eq!(Vector::zeros(2).as_slice(), &[0.0, 0.0]);
        assert_eq!(Vector::filled(2, 7.5).as_slice(), &[7.5, 7.5]);
        assert!(Vector::zeros(0).is_empty());
    }

    #[test]
    fn dot_product() {
        let a = Vector::from_slice(&[1.0, 2.0, 3.0]);
        let b = Vector::from_slice(&[4.0, -5.0, 6.0]);
        assert_eq!(a.dot(&b).unwrap(), 12.0);
    }

    #[test]
    fn dot_rejects_mismatched_lengths() {
        let a = Vector::from_slice(&[1.0]);
        let b = Vector::from_slice(&[1.0, 2.0]);
        assert!(matches!(
            a.dot(&b),
            Err(LinalgError::ShapeMismatch { op: "dot", .. })
        ));
    }

    #[test]
    fn norms() {
        let v = Vector::from_slice(&[3.0, -4.0]);
        assert!((v.norm2() - 5.0).abs() < 1e-12);
        assert_eq!(v.norm_inf(), 4.0);
        assert_eq!(Vector::zeros(3).norm2(), 0.0);
        assert_eq!(Vector::zeros(0).norm2(), 0.0);
    }

    #[test]
    fn norm2_is_overflow_safe() {
        let v = Vector::from_slice(&[1e200, 1e200]);
        assert!(v.norm2().is_finite());
        assert!((v.norm2() - 2.0_f64.sqrt() * 1e200).abs() / 1e200 < 1e-10);
    }

    #[test]
    fn mean_and_sum() {
        let v = Vector::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(v.sum(), 10.0);
        assert_eq!(v.mean().unwrap(), 2.5);
        assert!(matches!(
            Vector::zeros(0).mean(),
            Err(LinalgError::Empty { .. })
        ));
    }

    #[test]
    fn arithmetic_operators() {
        let a = Vector::from_slice(&[1.0, 2.0]);
        let b = Vector::from_slice(&[3.0, 5.0]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 7.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 3.0]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, 4.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0]);

        let mut c = a.clone();
        c += &b;
        assert_eq!(c.as_slice(), &[4.0, 7.0]);
        c -= &b;
        assert_eq!(c.as_slice(), a.as_slice());
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Vector::from_slice(&[1.0, 1.0]);
        let b = Vector::from_slice(&[2.0, -2.0]);
        a.axpy(0.5, &b).unwrap();
        assert_eq!(a.as_slice(), &[2.0, 0.0]);
        assert!(a.axpy(1.0, &Vector::zeros(3)).is_err());
    }

    #[test]
    fn conversions_and_iteration() {
        let v: Vector = vec![1.0, 2.0].into();
        let back: Vec<f64> = v.clone().into();
        assert_eq!(back, vec![1.0, 2.0]);
        let collected: Vector = v.iter().map(|x| x * 10.0).collect();
        assert_eq!(collected.as_slice(), &[10.0, 20.0]);
        let mut ext = Vector::zeros(0);
        ext.extend([1.0, 2.0]);
        assert_eq!(ext.len(), 2);
    }

    #[test]
    fn is_finite_detects_nan_and_inf() {
        assert!(Vector::from_slice(&[1.0, 2.0]).is_finite());
        assert!(!Vector::from_slice(&[1.0, f64::NAN]).is_finite());
        assert!(!Vector::from_slice(&[f64::INFINITY]).is_finite());
    }

    #[test]
    fn display_is_nonempty() {
        let v = Vector::from_slice(&[1.0]);
        assert!(v.to_string().starts_with('['));
        assert_eq!(Vector::zeros(0).to_string(), "[]");
    }
}
