//! Checked float→integer conversions.
//!
//! The workspace bans raw `as` float→int casts in numerical code
//! (`cargo xtask lint`, rule `float-int-cast`): they silently
//! truncate, saturate, and map NaN to zero, which turns numerical
//! bugs into wrong-but-plausible indices. These helpers make the
//! clamping explicit and centralize the two sanctioned raw casts
//! behind documented bounds checks (see `xtask/lint-allow.toml`).

/// Floors `x` and converts to an index clamped to `[0, max]`.
///
/// Non-finite or negative inputs clamp to `0`; inputs beyond `max`
/// clamp to `max`. Use when the surrounding arithmetic already bounds
/// `x` and clamping merely makes that bound explicit.
#[must_use]
pub fn floor_to_index(x: f64, max: usize) -> usize {
    float_to_index(x.floor(), max)
}

/// Ceils `x` and converts to an index clamped to `[0, max]`.
///
/// Non-finite or negative inputs clamp to `0`.
#[must_use]
pub fn ceil_to_index(x: f64, max: usize) -> usize {
    float_to_index(x.ceil(), max)
}

/// Rounds `x` to the nearest integer and converts to an index clamped
/// to `[0, max]`.
///
/// Non-finite or negative inputs clamp to `0`.
#[must_use]
pub fn round_to_index(x: f64, max: usize) -> usize {
    float_to_index(x.round(), max)
}

/// Floors `x` and converts to `i64`, saturating at the `i64` range.
///
/// NaN maps to `0` (callers that must distinguish NaN should test for
/// it first; the sanctioned uses convert slot offsets that are finite
/// by construction).
#[must_use]
#[allow(clippy::cast_possible_truncation)] // clamped to ±2^53 first, so the cast is exact
pub fn floor_to_i64(x: f64) -> i64 {
    if x.is_nan() {
        return 0;
    }
    let bound = 9_007_199_254_740_992.0_f64; // 2^53, exactly representable
    x.floor().clamp(-bound, bound) as i64
}

#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)] // non-negative and ≤ 2^53 here
fn float_to_index(x: f64, max: usize) -> usize {
    if x.is_nan() || x <= 0.0 {
        return 0;
    }
    let bound = 9_007_199_254_740_992.0_f64; // 2^53, exactly representable
    let clamped = x.min(bound);
    (clamped as u64).min(max as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamps_to_bounds() {
        assert_eq!(floor_to_index(3.9, 10), 3);
        assert_eq!(ceil_to_index(3.1, 10), 4);
        assert_eq!(round_to_index(3.5, 10), 4);
        assert_eq!(floor_to_index(42.0, 10), 10);
        assert_eq!(floor_to_index(-1.0, 10), 0);
    }

    #[test]
    fn non_finite_inputs_are_safe() {
        assert_eq!(floor_to_index(f64::NAN, 5), 0);
        assert_eq!(floor_to_index(f64::INFINITY, 5), 5);
        assert_eq!(floor_to_index(f64::NEG_INFINITY, 5), 0);
        assert_eq!(floor_to_i64(f64::NAN), 0);
    }

    #[test]
    fn i64_floor_saturates() {
        assert_eq!(floor_to_i64(2.9), 2);
        assert_eq!(floor_to_i64(-2.1), -3);
        assert!(floor_to_i64(1e300) > 0);
        assert!(floor_to_i64(-1e300) < 0);
    }
}
