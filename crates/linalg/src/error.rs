//! Typed errors for the linear-algebra kernels.

use std::fmt;

/// Errors produced by the linear-algebra kernels.
///
/// Every fallible public function in this crate returns
/// [`LinalgError`]; the variants carry enough context (dimensions,
/// indices) for a caller to report a useful message without string
/// parsing.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Two operands had incompatible shapes for the requested
    /// operation (e.g. multiplying a `2×3` by a `2×3`).
    ShapeMismatch {
        /// Human-readable name of the offending operation.
        op: &'static str,
        /// Shape of the left/first operand, `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right/second operand, `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// A matrix that must be square was not.
    NotSquare {
        /// Actual shape, `(rows, cols)`.
        shape: (usize, usize),
    },
    /// A factorisation or solve encountered a (numerically) singular
    /// matrix.
    Singular {
        /// Pivot or diagonal index at which singularity was detected.
        index: usize,
    },
    /// Cholesky required a positive-definite matrix but a non-positive
    /// pivot was found.
    NotPositiveDefinite {
        /// Diagonal index of the offending pivot.
        index: usize,
        /// Value of the offending pivot.
        pivot: f64,
    },
    /// An operation received an empty matrix or vector where data was
    /// required.
    Empty {
        /// Human-readable name of the offending operation.
        op: &'static str,
    },
    /// A least-squares problem was under-determined (fewer rows than
    /// columns).
    Underdetermined {
        /// Number of rows (observations).
        rows: usize,
        /// Number of columns (unknowns).
        cols: usize,
    },
    /// An iterative algorithm failed to converge within its iteration
    /// budget.
    NoConvergence {
        /// Algorithm name.
        algorithm: &'static str,
        /// Number of iterations performed.
        iterations: usize,
    },
    /// An input contained a NaN or infinity where finite data is
    /// required.
    NonFinite {
        /// Human-readable name of the offending operation.
        op: &'static str,
    },
    /// A construction received inconsistent raw data (e.g. a buffer
    /// whose length does not match `rows * cols`).
    InvalidData {
        /// Explanation of the inconsistency.
        reason: &'static str,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: left is {}x{}, right is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::NotSquare { shape } => {
                write!(f, "matrix must be square, got {}x{}", shape.0, shape.1)
            }
            LinalgError::Singular { index } => {
                write!(f, "matrix is singular (zero pivot at index {index})")
            }
            LinalgError::NotPositiveDefinite { index, pivot } => write!(
                f,
                "matrix is not positive definite (pivot {pivot:e} at index {index})"
            ),
            LinalgError::Empty { op } => write!(f, "empty input to {op}"),
            LinalgError::Underdetermined { rows, cols } => write!(
                f,
                "least-squares problem is under-determined ({rows} rows < {cols} cols)"
            ),
            LinalgError::NoConvergence {
                algorithm,
                iterations,
            } => write!(
                f,
                "{algorithm} did not converge after {iterations} iterations"
            ),
            LinalgError::NonFinite { op } => {
                write!(f, "non-finite value encountered in {op}")
            }
            LinalgError::InvalidData { reason } => write!(f, "invalid data: {reason}"),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<(LinalgError, &str)> = vec![
            (
                LinalgError::ShapeMismatch {
                    op: "matmul",
                    lhs: (2, 3),
                    rhs: (2, 3),
                },
                "matmul",
            ),
            (LinalgError::NotSquare { shape: (2, 3) }, "square"),
            (LinalgError::Singular { index: 4 }, "singular"),
            (
                LinalgError::NotPositiveDefinite {
                    index: 1,
                    pivot: -0.5,
                },
                "positive definite",
            ),
            (LinalgError::Empty { op: "mean" }, "empty"),
            (
                LinalgError::Underdetermined { rows: 2, cols: 5 },
                "under-determined",
            ),
            (
                LinalgError::NoConvergence {
                    algorithm: "jacobi",
                    iterations: 100,
                },
                "converge",
            ),
            (LinalgError::NonFinite { op: "qr" }, "non-finite"),
            (
                LinalgError::InvalidData {
                    reason: "buffer length",
                },
                "invalid data",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(
                msg.contains(needle),
                "message {msg:?} should contain {needle:?}"
            );
            assert!(
                !msg.ends_with('.'),
                "message {msg:?} should not end with punctuation"
            );
        }
    }

    #[test]
    fn error_is_send_sync_and_std_error() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<LinalgError>();
    }
}
