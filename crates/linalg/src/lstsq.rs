//! Least-squares solvers.
//!
//! The identification problem of the paper (Eq. 3–4) is an ordinary
//! linear least-squares problem once the regressor matrix is
//! assembled: the MATLAB CVX/SeDuMi pipeline of the original work is
//! replaced by a Householder-QR solve ([`solve`] / [`solve_matrix`]),
//! which reaches the same global optimum of the convex objective.
//! A ridge-regularised variant ([`solve_ridge`] /
//! [`solve_ridge_matrix`]) is provided for the rank-deficient regimes
//! the paper's over-fitting discussion (Fig. 5, top) brushes against
//! with short training horizons.

use crate::{CholeskyDecomposition, LinalgError, Matrix, QrDecomposition, Result, Vector};

/// Solves `min_x ‖A x − b‖₂` via Householder QR.
///
/// # Errors
///
/// * [`LinalgError::Underdetermined`] when `A` has fewer rows than
///   columns,
/// * [`LinalgError::Singular`] when `A` is column-rank-deficient,
/// * [`LinalgError::ShapeMismatch`] when `b.len() != A.rows()`,
/// * [`LinalgError::NonFinite`] for NaN/∞ inputs.
///
/// # Example
///
/// ```
/// use thermal_linalg::{lstsq, Matrix, Vector};
///
/// # fn main() -> Result<(), thermal_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[1.0, 0.0][..], &[0.0, 1.0][..], &[1.0, 1.0][..]])?;
/// let b = Vector::from_slice(&[1.0, 2.0, 3.0]);
/// let x = lstsq::solve(&a, &b)?;
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn solve(a: &Matrix, b: &Vector) -> Result<Vector> {
    QrDecomposition::new(a)?.solve(b)
}

/// Solves `min_X ‖A X − B‖_F` (multi-right-hand-side least squares).
///
/// # Errors
///
/// Same conditions as [`solve`], applied per column of `B`.
pub fn solve_matrix(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    QrDecomposition::new(a)?.solve_matrix(b)
}

/// Solves the ridge problem `min_x ‖A x − b‖₂² + λ‖x‖₂²` via the
/// regularised normal equations `(AᵀA + λI) x = Aᵀ b` and Cholesky.
///
/// `lambda` must be non-negative; `lambda == 0` falls back to the QR
/// path of [`solve`] for numerical robustness.
///
/// # Errors
///
/// * [`LinalgError::InvalidData`] when `lambda` is negative or not
///   finite,
/// * [`LinalgError::ShapeMismatch`] when `b.len() != A.rows()`,
/// * the QR/Cholesky error conditions of the underlying solvers.
pub fn solve_ridge(a: &Matrix, b: &Vector, lambda: f64) -> Result<Vector> {
    if !(lambda.is_finite() && lambda >= 0.0) {
        return Err(LinalgError::InvalidData {
            reason: "ridge parameter must be finite and non-negative",
        });
    }
    if lambda == 0.0 {
        return solve(a, b);
    }
    if b.len() != a.rows() {
        return Err(LinalgError::ShapeMismatch {
            op: "ridge",
            lhs: a.shape(),
            rhs: (b.len(), 1),
        });
    }
    if !a.is_finite() || !b.is_finite() {
        return Err(LinalgError::NonFinite { op: "ridge" });
    }
    let mut gram = a.gram();
    for i in 0..gram.rows() {
        gram[(i, i)] += lambda;
    }
    let atb = a.transpose_matvec(b)?;
    CholeskyDecomposition::new(&gram)?.solve(&atb)
}

/// Multi-right-hand-side ridge regression: solves
/// `min_X ‖A X − B‖_F² + λ‖X‖_F²`.
///
/// Factors the regularised Gram matrix once and reuses it across all
/// columns of `B`, which is what makes the per-sensor identification
/// loop of the paper cheap.
///
/// # Errors
///
/// Same conditions as [`solve_ridge`].
pub fn solve_ridge_matrix(a: &Matrix, b: &Matrix, lambda: f64) -> Result<Matrix> {
    if !(lambda.is_finite() && lambda >= 0.0) {
        return Err(LinalgError::InvalidData {
            reason: "ridge parameter must be finite and non-negative",
        });
    }
    if lambda == 0.0 {
        return solve_matrix(a, b);
    }
    if b.rows() != a.rows() {
        return Err(LinalgError::ShapeMismatch {
            op: "ridge",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    if !a.is_finite() || !b.is_finite() {
        return Err(LinalgError::NonFinite { op: "ridge" });
    }
    let mut gram = a.gram();
    for i in 0..gram.rows() {
        gram[(i, i)] += lambda;
    }
    let atb = a.transpose_matmul(b)?;
    CholeskyDecomposition::new(&gram)?.solve_matrix(&atb)
}

/// Residual vector `b − A x`.
///
/// # Errors
///
/// Returns [`LinalgError::ShapeMismatch`] on incompatible shapes.
pub fn residual(a: &Matrix, x: &Vector, b: &Vector) -> Result<Vector> {
    let ax = a.matvec(x)?;
    if ax.len() != b.len() {
        return Err(LinalgError::ShapeMismatch {
            op: "residual",
            lhs: (ax.len(), 1),
            rhs: (b.len(), 1),
        });
    }
    Ok(b - &ax)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_fit_recovers_coefficients() {
        let a = Matrix::from_rows(&[
            &[1.0, 2.0][..],
            &[2.0, 1.0][..],
            &[3.0, 3.0][..],
            &[0.0, 1.0][..],
        ])
        .unwrap();
        let truth = Vector::from_slice(&[1.5, -0.5]);
        let b = a.matvec(&truth).unwrap();
        let x = solve(&a, &b).unwrap();
        assert!((&x - &truth).norm2() < 1e-12);
    }

    #[test]
    fn ridge_shrinks_toward_zero() {
        let a = Matrix::from_rows(&[&[1.0][..], &[1.0][..], &[1.0][..]]).unwrap();
        let b = Vector::from_slice(&[3.0, 3.0, 3.0]);
        let x0 = solve_ridge(&a, &b, 0.0).unwrap();
        let x1 = solve_ridge(&a, &b, 3.0).unwrap();
        assert!((x0[0] - 3.0).abs() < 1e-12);
        // (3 + 3) x = 9 -> x = 1.5
        assert!((x1[0] - 1.5).abs() < 1e-12);
        assert!(x1[0].abs() < x0[0].abs());
    }

    #[test]
    fn ridge_handles_rank_deficiency() {
        // Plain LS fails on collinear columns; ridge succeeds.
        let a = Matrix::from_rows(&[&[1.0, 2.0][..], &[2.0, 4.0][..], &[3.0, 6.0][..]]).unwrap();
        let b = Vector::from_slice(&[1.0, 2.0, 3.0]);
        assert!(solve(&a, &b).is_err());
        let x = solve_ridge(&a, &b, 1e-6).unwrap();
        // Prediction should still be accurate even if x itself is not unique.
        let pred = a.matvec(&x).unwrap();
        assert!((&pred - &b).norm2() < 1e-3);
    }

    #[test]
    fn ridge_matrix_matches_per_column() {
        let a = Matrix::from_fn(6, 3, |r, c| ((r * 3 + c) as f64).cos());
        let b = Matrix::from_fn(6, 2, |r, c| ((r + c) as f64).sin());
        let lambda = 0.1;
        let x = solve_ridge_matrix(&a, &b, lambda).unwrap();
        for j in 0..2 {
            let xj = solve_ridge(&a, &b.column(j), lambda).unwrap();
            for i in 0..3 {
                assert!((x[(i, j)] - xj[i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn rejects_negative_or_nan_lambda() {
        let a = Matrix::identity(2);
        let b = Vector::zeros(2);
        assert!(solve_ridge(&a, &b, -1.0).is_err());
        assert!(solve_ridge(&a, &b, f64::NAN).is_err());
        assert!(solve_ridge_matrix(&a, &Matrix::zeros(2, 1), -1.0).is_err());
    }

    #[test]
    fn shape_mismatches_rejected() {
        let a = Matrix::identity(2);
        assert!(solve_ridge(&a, &Vector::zeros(3), 1.0).is_err());
        assert!(solve_ridge_matrix(&a, &Matrix::zeros(3, 1), 1.0).is_err());
    }

    #[test]
    fn residual_is_zero_for_exact_solution() {
        let a = Matrix::identity(3);
        let x = Vector::from_slice(&[1.0, 2.0, 3.0]);
        let r = residual(&a, &x, &x).unwrap();
        assert_eq!(r.norm2(), 0.0);
    }
}
