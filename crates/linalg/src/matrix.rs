//! Dense row-major `f64` matrix container and arithmetic.
//!
//! The shared data structure under every kernel in this crate.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

use serde::{Deserialize, Serialize};

use crate::{LinalgError, Result, Vector};

/// A dense, row-major matrix of `f64` values.
///
/// The type is deliberately simple: owned contiguous storage, checked
/// constructors, and the handful of operations the thermal-modeling
/// pipeline needs (products, transpose, slicing by row/column index
/// sets). Heavy factorisations live in dedicated types
/// ([`crate::QrDecomposition`], [`crate::CholeskyDecomposition`],
/// [`crate::SymmetricEigen`], [`crate::LuDecomposition`]).
///
/// # Example
///
/// ```
/// use thermal_linalg::Matrix;
///
/// # fn main() -> Result<(), thermal_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[1.0, 2.0][..], &[3.0, 4.0][..]])?;
/// let b = a.matmul(&a.transpose())?;
/// assert_eq!(b[(0, 0)], 5.0);
/// assert_eq!(b[(1, 1)], 25.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    ///
    /// ```
    /// use thermal_linalg::Matrix;
    /// let i = Matrix::identity(2);
    /// assert_eq!(i[(0, 0)], 1.0);
    /// assert_eq!(i[(0, 1)], 0.0);
    /// ```
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidData`] when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::InvalidData {
                reason: "buffer length does not equal rows * cols",
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] for zero rows and
    /// [`LinalgError::InvalidData`] when rows have differing lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        let Some(first) = rows.first() else {
            return Err(LinalgError::Empty { op: "from_rows" });
        };
        let cols = first.len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            if row.len() != cols {
                return Err(LinalgError::InvalidData {
                    reason: "rows have differing lengths",
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Creates a matrix from a generating function of `(row, col)`.
    ///
    /// ```
    /// use thermal_linalg::Matrix;
    /// let m = Matrix::from_fn(2, 2, |r, c| (r * 10 + c) as f64);
    /// assert_eq!(m[(1, 0)], 10.0);
    /// ```
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a square matrix with `diag` on the diagonal.
    pub fn from_diagonal(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `true` when the matrix holds no entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// `true` when the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows the row-major backing storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Consumes the matrix, returning the row-major backing storage.
    pub fn into_inner(self) -> Vec<f64> {
        self.data
    }

    /// Returns entry `(r, c)`, or `None` when out of bounds.
    pub fn get(&self, r: usize, c: usize) -> Option<f64> {
        if r < self.rows && c < self.cols {
            Some(self.data[r * self.cols + c])
        } else {
            None
        }
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics when `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics when `r` is out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new [`Vector`].
    ///
    /// # Panics
    ///
    /// Panics when `c` is out of bounds.
    pub fn column(&self, c: usize) -> Vector {
        assert!(c < self.cols, "col index {c} out of bounds ({})", self.cols);
        Vector::from_fn(self.rows, |r| self.data[r * self.cols + c])
    }

    /// Copies the main diagonal into a new [`Vector`].
    pub fn diagonal(&self) -> Vector {
        let n = self.rows.min(self.cols);
        Vector::from_fn(n, |i| self[(i, i)])
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Matrix product `self * rhs`.
    ///
    /// The kernel is cache-blocked over the inner dimension and, for
    /// large products, fans out over row panels of the result via the
    /// deterministic `thermal-par` executor; every output row is
    /// accumulated in the same order regardless of thread count, so
    /// the result is bitwise identical at any parallelism.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when inner dimensions
    /// differ.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        let work = self.rows * self.cols * rhs.cols;
        self.matmul_with_threads(rhs, crate::kernel_threads(work))
    }

    /// [`Matrix::matmul`] with an explicit worker count — the
    /// differential-testing surface of the determinism contract
    /// (`threads == 1` is the sequential path).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when inner dimensions
    /// differ.
    pub fn matmul_with_threads(&self, rhs: &Matrix, threads: usize) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        if self.rows == 0 || rhs.cols == 0 {
            return Ok(out);
        }
        let panel_rows = self.rows.div_ceil(threads.max(1)).max(1);
        let n = rhs.cols;
        thermal_par::parallel_chunks_mut_with(
            threads,
            &mut out.data,
            panel_rows * n,
            |p, panel| {
                matmul_panel(self, rhs, p * panel_rows, panel);
            },
        );
        Ok(out)
    }

    /// Product with the transpose of `rhs`: `self * rhsᵀ`, i.e.
    /// `out[i][j] = ⟨self.row(i), rhs.row(j)⟩` — both operands are
    /// walked row-major, which is what the pairwise-similarity kernels
    /// want. Large products fan out over row panels deterministically.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when column counts
    /// differ.
    pub fn matmul_transpose_b(&self, rhs: &Matrix) -> Result<Matrix> {
        let work = self.rows * self.cols * rhs.rows;
        self.matmul_transpose_b_with_threads(rhs, crate::kernel_threads(work))
    }

    /// [`Matrix::matmul_transpose_b`] with an explicit worker count
    /// (`threads == 1` is the sequential path).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when column counts
    /// differ.
    pub fn matmul_transpose_b_with_threads(&self, rhs: &Matrix, threads: usize) -> Result<Matrix> {
        if self.cols != rhs.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul_transpose_b",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        if self.rows == 0 || rhs.rows == 0 {
            return Ok(out);
        }
        let n = rhs.rows;
        let panel_rows = self.rows.div_ceil(threads.max(1)).max(1);
        thermal_par::parallel_chunks_mut_with(
            threads,
            &mut out.data,
            panel_rows * n,
            |p, panel| {
                let i0 = p * panel_rows;
                for (r, orow) in panel.chunks_mut(n).enumerate() {
                    let arow = self.row(i0 + r);
                    for (o, j) in orow.iter_mut().zip(0..n) {
                        *o = dot(arow, rhs.row(j));
                    }
                }
            },
        );
        Ok(out)
    }

    /// Product of the transpose of `self` with `rhs`: `selfᵀ * rhs`,
    /// computed by streaming both operands row-major (no transpose is
    /// ever materialised). This is the `AᵀB` half of the
    /// normal-equation solvers.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when row counts differ.
    pub fn transpose_matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.rows != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "transpose_matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let (p, q) = (self.cols, rhs.cols);
        let mut out = Matrix::zeros(p, q);
        if p == 0 || q == 0 {
            return Ok(out);
        }
        let threads = crate::kernel_threads(self.rows * p * q);
        let block_rows = p.div_ceil(threads.max(1)).max(1);
        thermal_par::parallel_chunks_mut_with(
            threads,
            &mut out.data,
            block_rows * q,
            |blk, out_block| {
                let i0 = blk * block_rows;
                let ni = out_block.len() / q;
                // Accumulate over the sample rows in ascending order for
                // every output entry — identical at any block partition.
                for r in 0..self.rows {
                    let srow = self.row(r);
                    let rrow = rhs.row(r);
                    for li in 0..ni {
                        let a = srow[i0 + li];
                        if a == 0.0 {
                            continue;
                        }
                        for (o, b) in out_block[li * q..(li + 1) * q].iter_mut().zip(rrow) {
                            *o += a * b;
                        }
                    }
                }
            },
        );
        Ok(out)
    }

    /// Product of the transpose of `self` with a vector: `selfᵀ v`,
    /// streaming `self` row-major.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `v.len() != rows`.
    pub fn transpose_matvec(&self, v: &Vector) -> Result<Vector> {
        if self.rows != v.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "transpose_matvec",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        let mut out = vec![0.0; self.cols];
        for (r, row) in self.iter_rows().enumerate() {
            let s = v[r];
            if s == 0.0 {
                continue;
            }
            for (o, a) in out.iter_mut().zip(row) {
                *o += s * a;
            }
        }
        Ok(Vector::from(out))
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `v.len() != cols`.
    pub fn matvec(&self, v: &Vector) -> Result<Vector> {
        if self.cols != v.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        Ok(Vector::from_fn(self.rows, |r| {
            self.row(r)
                .iter()
                .zip(v.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        }))
    }

    /// `Aᵀ A` computed directly (used by normal-equation solvers).
    ///
    /// Only the upper triangle is accumulated (then mirrored), each
    /// entry in ascending sample order, so the symmetric result is
    /// bitwise identical at any worker count.
    pub fn gram(&self) -> Matrix {
        // Upper-triangular work: rows * cols² / 2 multiply-adds.
        let work = self.rows * self.cols * self.cols / 2;
        self.gram_with_threads(crate::kernel_threads(work))
    }

    /// [`Matrix::gram`] with an explicit worker count (`threads == 1`
    /// is the sequential path).
    pub fn gram_with_threads(&self, threads: usize) -> Matrix {
        let p = self.cols;
        let mut out = Matrix::zeros(p, p);
        if p == 0 {
            return out;
        }
        let block_rows = p.div_ceil(threads.max(1)).max(1);
        thermal_par::parallel_chunks_mut_with(
            threads,
            &mut out.data,
            block_rows * p,
            |blk, out_block| {
                let i0 = blk * block_rows;
                let ni = out_block.len() / p;
                // One streaming pass over the sample rows per output block;
                // every (i, j) accumulates in ascending row order.
                for r in 0..self.rows {
                    let row = self.row(r);
                    for li in 0..ni {
                        let i = i0 + li;
                        let a = row[i];
                        if a == 0.0 {
                            continue;
                        }
                        let orow = &mut out_block[li * p..(li + 1) * p];
                        for j in i..p {
                            orow[j] += a * row[j];
                        }
                    }
                }
            },
        );
        // Mirror the upper triangle.
        for i in 0..p {
            for j in 0..i {
                out.data[i * p + j] = out.data[j * p + i];
            }
        }
        out
    }

    /// Element-wise scaling by `s`, returning a new matrix.
    pub fn scaled(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| v * s).collect(),
        }
    }

    /// Extracts the sub-matrix with the given row and column indices
    /// (in the given order; duplicates allowed).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidData`] when any index is out of
    /// bounds.
    pub fn submatrix(&self, row_idx: &[usize], col_idx: &[usize]) -> Result<Matrix> {
        for &r in row_idx {
            if r >= self.rows {
                return Err(LinalgError::InvalidData {
                    reason: "row index out of bounds in submatrix",
                });
            }
        }
        for &c in col_idx {
            if c >= self.cols {
                return Err(LinalgError::InvalidData {
                    reason: "column index out of bounds in submatrix",
                });
            }
        }
        Ok(Matrix::from_fn(row_idx.len(), col_idx.len(), |r, c| {
            self[(row_idx[r], col_idx[c])]
        }))
    }

    /// Selects columns by index, keeping all rows.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidData`] when any index is out of
    /// bounds.
    pub fn select_columns(&self, col_idx: &[usize]) -> Result<Matrix> {
        let all_rows: Vec<usize> = (0..self.rows).collect();
        self.submatrix(&all_rows, col_idx)
    }

    /// Horizontally concatenates `self` with `rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when row counts differ.
    pub fn hstack(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.rows != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "hstack",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, self.cols + rhs.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(rhs.row(r));
        }
        Ok(out)
    }

    /// Vertically concatenates `self` with `rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when column counts
    /// differ.
    pub fn vstack(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "vstack",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut data = Vec::with_capacity(self.data.len() + rhs.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&rhs.data);
        Ok(Matrix {
            rows: self.rows + rhs.rows,
            cols: self.cols,
            data,
        })
    }

    /// Frobenius norm (root of the sum of squared entries).
    pub fn norm_frobenius(&self) -> f64 {
        Vector::from_slice(&self.data).norm2()
    }

    /// Maximum absolute entry.
    pub fn norm_max(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// `true` when every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// `true` when `|self - other|` is entry-wise below `tol`.
    ///
    /// Shapes must match; mismatched shapes return `false`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Symmetry check up to tolerance `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Iterates over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> + '_ {
        self.data.chunks_exact(self.cols.max(1))
    }
}

/// Inner-dimension tile for the blocked product: a `MATMUL_KC × cols`
/// panel of the right-hand side (≤ ~32 KiB of `f64` at typical widths)
/// stays cache-resident while every row of the output panel sweeps it.
const MATMUL_KC: usize = 64;

/// Computes output rows `i0 ..` of `a * b` into `panel` (a row-major
/// slice of `b.cols`-wide rows). The inner dimension is visited in
/// ascending order for every output entry — tiling and row-panel
/// splits never change the accumulation order, which is what makes
/// the parallel product bitwise deterministic.
fn matmul_panel(a: &Matrix, b: &Matrix, i0: usize, panel: &mut [f64]) {
    let n = b.cols;
    for k0 in (0..a.cols).step_by(MATMUL_KC) {
        let k1 = (k0 + MATMUL_KC).min(a.cols);
        for (r, orow) in panel.chunks_mut(n).enumerate() {
            let arow = a.row(i0 + r);
            for k in k0..k1 {
                let av = arow[k];
                if av == 0.0 {
                    continue;
                }
                let brow = &b.data[k * n..(k + 1) * n];
                for (o, bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
    }
}

/// Dot product of two equal-length slices, accumulated left to right.
fn dot(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b) {
        acc += x * y;
    }
    acc
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r}, {c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r}, {c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &mut self.data[r * self.cols + c]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "add: matrix shapes differ");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "sub: matrix shapes differ");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, s: f64) -> Matrix {
        self.scaled(s)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{}x{}]", self.rows, self.cols)?;
        for r in 0..self.rows {
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:>10.4}", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m22() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0][..], &[3.0, 4.0][..]]).unwrap()
    }

    #[test]
    fn construction_checks_buffer_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(matches!(
            Matrix::from_vec(2, 2, vec![1.0; 3]),
            Err(LinalgError::InvalidData { .. })
        ));
    }

    #[test]
    fn from_rows_checks_consistency() {
        assert!(matches!(
            Matrix::from_rows(&[]),
            Err(LinalgError::Empty { .. })
        ));
        assert!(matches!(
            Matrix::from_rows(&[&[1.0][..], &[1.0, 2.0][..]]),
            Err(LinalgError::InvalidData { .. })
        ));
    }

    #[test]
    fn identity_and_diagonal() {
        let i = Matrix::identity(3);
        assert!(i.is_square());
        assert_eq!(i.diagonal().as_slice(), &[1.0, 1.0, 1.0]);
        let d = Matrix::from_diagonal(&[2.0, 5.0]);
        assert_eq!(d[(0, 0)], 2.0);
        assert_eq!(d[(0, 1)], 0.0);
        assert_eq!(d[(1, 1)], 5.0);
    }

    #[test]
    fn indexing_and_rows_cols() {
        let m = m22();
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.column(0).as_slice(), &[1.0, 3.0]);
        assert_eq!(m.get(5, 0), None);
        assert_eq!(m.get(1, 1), Some(4.0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let m = m22();
        let _ = m[(2, 0)];
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f64);
        let t = m.transpose();
        assert_eq!(t.shape(), (2, 3));
        assert_eq!(t[(0, 2)], 4.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = m22();
        let b = Matrix::from_rows(&[&[0.0, 1.0][..], &[1.0, 0.0][..]]).unwrap();
        let p = a.matmul(&b).unwrap();
        assert_eq!(
            p,
            Matrix::from_rows(&[&[2.0, 1.0][..], &[4.0, 3.0][..]]).unwrap()
        );
        assert!(a.matmul(&Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn matvec_known_product() {
        let a = m22();
        let v = Vector::from_slice(&[1.0, -1.0]);
        assert_eq!(a.matvec(&v).unwrap().as_slice(), &[-1.0, -1.0]);
        assert!(a.matvec(&Vector::zeros(3)).is_err());
    }

    #[test]
    fn gram_equals_explicit_ata() {
        let a = Matrix::from_fn(4, 3, |r, c| (r as f64 + 1.0) * (c as f64 - 1.0) + 0.5);
        let g = a.gram();
        let explicit = a.transpose().matmul(&a).unwrap();
        assert!(g.approx_eq(&explicit, 1e-12));
        assert!(g.is_symmetric(0.0));
    }

    #[test]
    fn submatrix_and_select_columns() {
        let m = Matrix::from_fn(3, 3, |r, c| (r * 3 + c) as f64);
        let s = m.submatrix(&[0, 2], &[1, 2]).unwrap();
        assert_eq!(
            s,
            Matrix::from_rows(&[&[1.0, 2.0][..], &[7.0, 8.0][..]]).unwrap()
        );
        let c = m.select_columns(&[2, 0]).unwrap();
        assert_eq!(c.column(0).as_slice(), &[2.0, 5.0, 8.0]);
        assert!(m.submatrix(&[3], &[0]).is_err());
        assert!(m.submatrix(&[0], &[3]).is_err());
    }

    #[test]
    fn stacking() {
        let a = m22();
        let h = a.hstack(&a).unwrap();
        assert_eq!(h.shape(), (2, 4));
        assert_eq!(h.row(0), &[1.0, 2.0, 1.0, 2.0]);
        let v = a.vstack(&a).unwrap();
        assert_eq!(v.shape(), (4, 2));
        assert_eq!(v.column(0).as_slice(), &[1.0, 3.0, 1.0, 3.0]);
        assert!(a.hstack(&Matrix::zeros(3, 2)).is_err());
        assert!(a.vstack(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn norms_and_finite() {
        let m = Matrix::from_rows(&[&[3.0, 0.0][..], &[0.0, 4.0][..]]).unwrap();
        assert!((m.norm_frobenius() - 5.0).abs() < 1e-12);
        assert_eq!(m.norm_max(), 4.0);
        assert!(m.is_finite());
        let mut bad = m.clone();
        bad[(0, 0)] = f64::NAN;
        assert!(!bad.is_finite());
    }

    #[test]
    fn symmetry_check() {
        let s = Matrix::from_rows(&[&[1.0, 2.0][..], &[2.0, 3.0][..]]).unwrap();
        assert!(s.is_symmetric(0.0));
        assert!(!m22().is_symmetric(1e-9));
        assert!(!Matrix::zeros(2, 3).is_symmetric(1.0));
    }

    #[test]
    fn elementwise_operators() {
        let a = m22();
        let sum = &a + &a;
        assert_eq!(sum[(1, 1)], 8.0);
        let diff = &sum - &a;
        assert_eq!(diff, a);
        let scaled = &a * 0.5;
        assert_eq!(scaled[(0, 1)], 1.0);
    }

    #[test]
    fn iter_rows_covers_all_rows() {
        let m = Matrix::from_fn(3, 2, |r, _| r as f64);
        let rows: Vec<&[f64]> = m.iter_rows().collect();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2], &[2.0, 2.0]);
    }

    #[test]
    fn display_contains_shape() {
        assert!(m22().to_string().contains("[2x2]"));
    }
}
