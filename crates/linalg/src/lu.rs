//! LU factorisation with partial pivoting for general square solves.
//!
//! The workspace's general-purpose solver, used where the matrix is
//! not known to be symmetric positive-definite.

use crate::{LinalgError, Matrix, Result, Vector};

/// LU decomposition with partial pivoting, `P A = L U`.
///
/// The general-purpose square solver of the workspace; used where the
/// matrix is not known to be symmetric positive-definite (e.g. the
/// `(I − A)` steady-state solves in the simulator's validation tools).
///
/// # Example
///
/// ```
/// use thermal_linalg::{LuDecomposition, Matrix, Vector};
///
/// # fn main() -> Result<(), thermal_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[0.0, 2.0][..], &[3.0, 1.0][..]])?;
/// let lu = LuDecomposition::new(&a)?;
/// let x = lu.solve(&Vector::from_slice(&[4.0, 5.0]))?;
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LuDecomposition {
    /// Combined L (below diagonal, unit diagonal implicit) and U (on
    /// and above diagonal).
    packed: Matrix,
    /// Row permutation: row `i` of the factored matrix corresponds to
    /// row `perm[i]` of the original.
    perm: Vec<usize>,
    /// Parity of the permutation (+1.0 or -1.0), for the determinant.
    sign: f64,
}

impl LuDecomposition {
    /// Factors the square matrix `a` with partial pivoting.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] for non-square input,
    /// * [`LinalgError::Empty`] for a `0 × 0` input,
    /// * [`LinalgError::NonFinite`] for NaN/∞ entries,
    /// * [`LinalgError::Singular`] when no usable pivot exists.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::Empty { op: "lu" });
        }
        if !a.is_finite() {
            return Err(LinalgError::NonFinite { op: "lu" });
        }
        let mut m = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        let scale = m.norm_max();
        let tol = scale * 1e-14;

        for k in 0..n {
            // Find pivot.
            let (pivot_row, pivot_val) = (k..n)
                .map(|i| (i, m[(i, k)].abs()))
                .fold((k, -1.0), |acc, cur| if cur.1 > acc.1 { cur } else { acc });
            if pivot_val <= tol {
                return Err(LinalgError::Singular { index: k });
            }
            if pivot_row != k {
                for j in 0..n {
                    let tmp = m[(k, j)];
                    m[(k, j)] = m[(pivot_row, j)];
                    m[(pivot_row, j)] = tmp;
                }
                perm.swap(k, pivot_row);
                sign = -sign;
            }
            let pivot = m[(k, k)];
            for i in (k + 1)..n {
                let factor = m[(i, k)] / pivot;
                m[(i, k)] = factor;
                for j in (k + 1)..n {
                    let mkj = m[(k, j)];
                    m[(i, j)] -= factor * mkj;
                }
            }
        }

        Ok(LuDecomposition {
            packed: m,
            perm,
            sign,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.packed.rows()
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `b.len() != dim()`.
    pub fn solve(&self, b: &Vector) -> Result<Vector> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "lu solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Apply permutation, then forward substitution with unit L.
        let mut y: Vec<f64> = (0..n).map(|i| b[self.perm[i]]).collect();
        for i in 0..n {
            for k in 0..i {
                let lik = self.packed[(i, k)];
                y[i] -= lik * y[k];
            }
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                let uik = self.packed[(i, k)];
                let yk = y[k];
                y[i] -= uik * yk;
            }
            y[i] /= self.packed[(i, i)];
        }
        Ok(Vector::from(y))
    }

    /// Solves `A X = B` column by column.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `B.rows() != dim()`.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "lu solve_matrix",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let x = self.solve(&b.column(j))?;
            for i in 0..n {
                out[(i, j)] = x[i];
            }
        }
        Ok(out)
    }

    /// Determinant of the original matrix.
    pub fn determinant(&self) -> f64 {
        self.sign
            * (0..self.dim())
                .map(|i| self.packed[(i, i)])
                .product::<f64>()
    }

    /// Inverse of the original matrix. Prefer
    /// [`LuDecomposition::solve`] when a solve suffices.
    ///
    /// # Errors
    ///
    /// Propagates any [`LinalgError`] from the underlying solve.
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a3() -> Matrix {
        Matrix::from_rows(&[
            &[2.0, 1.0, 1.0][..],
            &[4.0, -6.0, 0.0][..],
            &[-2.0, 7.0, 2.0][..],
        ])
        .unwrap()
    }

    #[test]
    fn solve_known_system() {
        let a = a3();
        let b = Vector::from_slice(&[5.0, -2.0, 9.0]);
        let x = LuDecomposition::new(&a).unwrap().solve(&b).unwrap();
        let back = a.matvec(&x).unwrap();
        for i in 0..3 {
            assert!((back[i] - b[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0][..], &[1.0, 0.0][..]]).unwrap();
        let lu = LuDecomposition::new(&a).unwrap();
        let x = lu.solve(&Vector::from_slice(&[3.0, 7.0])).unwrap();
        assert_eq!(x.as_slice(), &[7.0, 3.0]);
        assert!((lu.determinant() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn determinant_matches_cofactor_expansion() {
        // det(a3) computed by hand: 2(-12-0) -1(8-0) +1(28-12) = -24-8+16 = -16.
        let lu = LuDecomposition::new(&a3()).unwrap();
        assert!((lu.determinant() + 16.0).abs() < 1e-10);
    }

    #[test]
    fn inverse_roundtrip() {
        let a = a3();
        let inv = LuDecomposition::new(&a).unwrap().inverse().unwrap();
        assert!(a
            .matmul(&inv)
            .unwrap()
            .approx_eq(&Matrix::identity(3), 1e-10));
    }

    #[test]
    fn rejects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0][..], &[2.0, 4.0][..]]).unwrap();
        assert!(matches!(
            LuDecomposition::new(&a),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(LuDecomposition::new(&Matrix::zeros(2, 3)).is_err());
        assert!(LuDecomposition::new(&Matrix::zeros(0, 0)).is_err());
        let mut nan = Matrix::identity(2);
        nan[(0, 1)] = f64::NAN;
        assert!(LuDecomposition::new(&nan).is_err());
        let lu = LuDecomposition::new(&Matrix::identity(2)).unwrap();
        assert!(lu.solve(&Vector::zeros(3)).is_err());
        assert!(lu.solve_matrix(&Matrix::zeros(3, 1)).is_err());
    }
}
