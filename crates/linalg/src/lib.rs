//! Dense linear algebra and statistics kernels for the
//! `auditorium-thermal` workspace.
//!
//! The crate implements, from scratch, exactly the numerical tools the
//! ICDCS'14 auditorium-modeling pipeline needs:
//!
//! * [`Matrix`] / [`Vector`] — small dense row-major containers,
//! * [`QrDecomposition`] — Householder QR, the least-squares work-horse
//!   behind the paper's model-identification step (Eq. 3–4),
//! * [`CholeskyDecomposition`] — SPD factorisation used by the
//!   ridge-regularised normal equations and the Gaussian-process
//!   mutual-information sensor selector,
//! * [`LuDecomposition`] — general square solves, determinants and
//!   inverses,
//! * [`SymmetricEigen`] — a cyclic Jacobi eigensolver for the graph
//!   Laplacians of the spectral-clustering stage,
//! * [`lstsq`] — least-squares solvers (plain and ridge),
//! * [`stats`] — means, covariance and correlation matrices,
//!   percentiles and empirical CDFs used throughout the evaluation.
//!
//! Everything is `f64`. The dense kernels on the identification hot
//! path (`matmul`, `gram`, the Householder sweep) are cache-blocked
//! and row-streamed, and the large products fan out over row panels
//! via the deterministic `thermal-par` executor: outputs are bitwise
//! identical for any thread count (see `DESIGN.md` § performance), and
//! `THERMAL_THREADS=1` forces the sequential path.
//!
//! # Example
//!
//! ```
//! use thermal_linalg::{Matrix, Vector, lstsq};
//!
//! # fn main() -> Result<(), thermal_linalg::LinalgError> {
//! // Fit y = 2 x0 - x1 by least squares.
//! let x = Matrix::from_rows(&[
//!     &[1.0, 0.0][..],
//!     &[0.0, 1.0][..],
//!     &[1.0, 1.0][..],
//!     &[2.0, 1.0][..],
//! ])?;
//! let y = Vector::from_slice(&[2.0, -1.0, 1.0, 3.0]);
//! let beta = lstsq::solve(&x, &y)?;
//! assert!((beta[0] - 2.0).abs() < 1e-10);
//! assert!((beta[1] + 1.0).abs() < 1e-10);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cast;
mod cholesky;
mod error;
mod lu;
mod matrix;
mod qr;
mod symmetric_eigen;
mod vector;

pub mod lstsq;
pub mod stats;

pub use cholesky::CholeskyDecomposition;
pub use error::LinalgError;
pub use lu::LuDecomposition;
pub use matrix::Matrix;
pub use qr::QrDecomposition;
pub use symmetric_eigen::SymmetricEigen;
pub use vector::Vector;

/// Convenient crate-wide result alias.
pub type Result<T> = std::result::Result<T, LinalgError>;

/// Flop count below which a kernel stays on the calling thread, per
/// extra worker: scoped-thread spawn costs tens of microseconds, so a
/// worker must amortise ~2ⁱ⁷ multiply-adds to pay for itself.
const PAR_MIN_WORK_PER_THREAD: usize = 1 << 17;

/// Worker count for a kernel performing `work` multiply-adds: the
/// configured [`thermal_par::thread_count`], capped so every worker
/// has at least [`PAR_MIN_WORK_PER_THREAD`] to do. Returns 1 (the
/// inline sequential path) for small problems.
pub(crate) fn kernel_threads(work: usize) -> usize {
    thermal_par::thread_count().min((work / PAR_MIN_WORK_PER_THREAD).max(1))
}
