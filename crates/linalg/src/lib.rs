//! Dense linear algebra and statistics kernels for the
//! `auditorium-thermal` workspace.
//!
//! The crate implements, from scratch, exactly the numerical tools the
//! ICDCS'14 auditorium-modeling pipeline needs:
//!
//! * [`Matrix`] / [`Vector`] — small dense row-major containers,
//! * [`QrDecomposition`] — Householder QR, the least-squares work-horse
//!   behind the paper's model-identification step (Eq. 3–4),
//! * [`CholeskyDecomposition`] — SPD factorisation used by the
//!   ridge-regularised normal equations and the Gaussian-process
//!   mutual-information sensor selector,
//! * [`LuDecomposition`] — general square solves, determinants and
//!   inverses,
//! * [`SymmetricEigen`] — a cyclic Jacobi eigensolver for the graph
//!   Laplacians of the spectral-clustering stage,
//! * [`lstsq`] — least-squares solvers (plain and ridge),
//! * [`stats`] — means, covariance and correlation matrices,
//!   percentiles and empirical CDFs used throughout the evaluation.
//!
//! Everything is `f64`; the matrices in this problem domain are tiny
//! (tens of rows/columns for states, tens of thousands of sample rows),
//! so clarity and numerical robustness are preferred over blocking or
//! SIMD tricks.
//!
//! # Example
//!
//! ```
//! use thermal_linalg::{Matrix, Vector, lstsq};
//!
//! # fn main() -> Result<(), thermal_linalg::LinalgError> {
//! // Fit y = 2 x0 - x1 by least squares.
//! let x = Matrix::from_rows(&[
//!     &[1.0, 0.0][..],
//!     &[0.0, 1.0][..],
//!     &[1.0, 1.0][..],
//!     &[2.0, 1.0][..],
//! ])?;
//! let y = Vector::from_slice(&[2.0, -1.0, 1.0, 3.0]);
//! let beta = lstsq::solve(&x, &y)?;
//! assert!((beta[0] - 2.0).abs() < 1e-10);
//! assert!((beta[1] + 1.0).abs() < 1e-10);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cast;
mod cholesky;
mod error;
mod lu;
mod matrix;
mod qr;
mod symmetric_eigen;
mod vector;

pub mod lstsq;
pub mod stats;

pub use cholesky::CholeskyDecomposition;
pub use error::LinalgError;
pub use lu::LuDecomposition;
pub use matrix::Matrix;
pub use qr::QrDecomposition;
pub use symmetric_eigen::SymmetricEigen;
pub use vector::Vector;

/// Convenient crate-wide result alias.
pub type Result<T> = std::result::Result<T, LinalgError>;
