//! Cyclic Jacobi eigensolver for real symmetric matrices.
//!
//! Supplies the sorted Laplacian eigenpairs the spectral-clustering
//! stage embeds sensors with.

use crate::{LinalgError, Matrix, Result, Vector};

/// Eigendecomposition of a real symmetric matrix via the cyclic Jacobi
/// method.
///
/// Produces all eigenvalues and an orthonormal set of eigenvectors,
/// sorted by ascending eigenvalue — the order the spectral-clustering
/// stage needs (the smallest Laplacian eigenvectors span the cluster
/// indicator space, and the paper's *eigengap* rule
/// `argmax_i (log λ_{i+1} − log λ_i)` reads the sorted spectrum).
///
/// Jacobi iteration is quadratically convergent, unconditionally
/// stable, and perfectly adequate at the `n ≈ 27` sensor-count scale
/// of the auditorium.
///
/// # Example
///
/// ```
/// use thermal_linalg::{Matrix, SymmetricEigen};
///
/// # fn main() -> Result<(), thermal_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0][..], &[1.0, 2.0][..]])?;
/// let eig = SymmetricEigen::new(&a)?;
/// assert!((eig.eigenvalues()[0] - 1.0).abs() < 1e-12);
/// assert!((eig.eigenvalues()[1] - 3.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    eigenvalues: Vec<f64>,
    /// Column `j` holds the eigenvector for `eigenvalues[j]`.
    eigenvectors: Matrix,
}

/// Hard cap on Jacobi sweeps; convergence is typically < 15 sweeps for
/// the matrices in this workspace.
const MAX_SWEEPS: usize = 100;

impl SymmetricEigen {
    /// Computes the eigendecomposition of the symmetric matrix `a`.
    ///
    /// The input is checked for symmetry up to a scaled tolerance; use
    /// [`SymmetricEigen::new_symmetrized`] to silently average away
    /// small asymmetries.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] for non-square input,
    /// * [`LinalgError::Empty`] for a `0 × 0` input,
    /// * [`LinalgError::NonFinite`] for NaN/∞ entries,
    /// * [`LinalgError::InvalidData`] when the matrix is not symmetric,
    /// * [`LinalgError::NoConvergence`] if Jacobi sweeps fail to reduce
    ///   the off-diagonal norm (practically unreachable).
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        if a.rows() == 0 {
            return Err(LinalgError::Empty {
                op: "symmetric eigen",
            });
        }
        if !a.is_finite() {
            return Err(LinalgError::NonFinite {
                op: "symmetric eigen",
            });
        }
        let tol = a.norm_max().max(1.0) * 1e-10;
        if !a.is_symmetric(tol) {
            return Err(LinalgError::InvalidData {
                reason: "matrix is not symmetric",
            });
        }
        Self::decompose(a.clone())
    }

    /// Like [`SymmetricEigen::new`] but first replaces `a` by
    /// `(a + aᵀ)/2`, forgiving round-off asymmetry from upstream
    /// computations (e.g. empirically estimated covariance matrices).
    ///
    /// # Errors
    ///
    /// Same as [`SymmetricEigen::new`] except the symmetry check.
    pub fn new_symmetrized(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        if a.rows() == 0 {
            return Err(LinalgError::Empty {
                op: "symmetric eigen",
            });
        }
        if !a.is_finite() {
            return Err(LinalgError::NonFinite {
                op: "symmetric eigen",
            });
        }
        let sym = Matrix::from_fn(a.rows(), a.cols(), |i, j| 0.5 * (a[(i, j)] + a[(j, i)]));
        Self::decompose(sym)
    }

    fn decompose(mut m: Matrix) -> Result<Self> {
        let n = m.rows();
        let mut v = Matrix::identity(n);

        let off_norm = |m: &Matrix| -> f64 {
            let mut s = 0.0;
            for i in 0..n {
                for j in (i + 1)..n {
                    s += m[(i, j)] * m[(i, j)];
                }
            }
            s.sqrt()
        };

        let frob = m.norm_frobenius().max(f64::MIN_POSITIVE);
        let target = frob * 1e-14;

        let mut converged = false;
        for _sweep in 0..MAX_SWEEPS {
            if off_norm(&m) <= target {
                converged = true;
                break;
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = m[(p, q)];
                    if apq.abs() <= target / (n as f64) {
                        continue;
                    }
                    let app = m[(p, p)];
                    let aqq = m[(q, q)];
                    // Stable rotation computation (Golub & Van Loan).
                    let theta = (aqq - app) / (2.0 * apq);
                    let t = if theta >= 0.0 {
                        1.0 / (theta + (1.0 + theta * theta).sqrt())
                    } else {
                        1.0 / (theta - (1.0 + theta * theta).sqrt())
                    };
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = t * c;

                    // Update rows/columns p and q of m.
                    for k in 0..n {
                        let mkp = m[(k, p)];
                        let mkq = m[(k, q)];
                        m[(k, p)] = c * mkp - s * mkq;
                        m[(k, q)] = s * mkp + c * mkq;
                    }
                    for k in 0..n {
                        let mpk = m[(p, k)];
                        let mqk = m[(q, k)];
                        m[(p, k)] = c * mpk - s * mqk;
                        m[(q, k)] = s * mpk + c * mqk;
                    }
                    // Accumulate eigenvectors.
                    for k in 0..n {
                        let vkp = v[(k, p)];
                        let vkq = v[(k, q)];
                        v[(k, p)] = c * vkp - s * vkq;
                        v[(k, q)] = s * vkp + c * vkq;
                    }
                }
            }
        }
        if !converged && off_norm(&m) > target {
            return Err(LinalgError::NoConvergence {
                algorithm: "jacobi eigensolver",
                iterations: MAX_SWEEPS,
            });
        }

        // Sort ascending by eigenvalue, permuting eigenvector columns.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&i, &j| m[(i, i)].total_cmp(&m[(j, j)]));
        let eigenvalues: Vec<f64> = order.iter().map(|&i| m[(i, i)]).collect();
        let eigenvectors = Matrix::from_fn(n, n, |r, c| v[(r, order[c])]);

        Ok(SymmetricEigen {
            eigenvalues,
            eigenvectors,
        })
    }

    /// Eigenvalues in ascending order.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Orthonormal eigenvectors; column `j` pairs with
    /// `eigenvalues()[j]`.
    pub fn eigenvectors(&self) -> &Matrix {
        &self.eigenvectors
    }

    /// Eigenvector for the `j`-th smallest eigenvalue.
    ///
    /// # Panics
    ///
    /// Panics when `j` is out of range.
    pub fn eigenvector(&self, j: usize) -> Vector {
        self.eigenvectors.column(j)
    }

    /// The first `k` eigenvectors as an `n × k` matrix — the spectral
    /// embedding used by spectral clustering.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidData`] when `k` exceeds the
    /// dimension.
    pub fn embedding(&self, k: usize) -> Result<Matrix> {
        let n = self.eigenvalues.len();
        if k > n {
            return Err(LinalgError::InvalidData {
                reason: "requested more eigenvectors than the matrix dimension",
            });
        }
        let idx: Vec<usize> = (0..k).collect();
        self.eigenvectors.select_columns(&idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_eigenvalues_are_sorted_diagonal() {
        let a = Matrix::from_diagonal(&[3.0, -1.0, 2.0]);
        let eig = SymmetricEigen::new(&a).unwrap();
        assert_eq!(eig.eigenvalues(), &[-1.0, 2.0, 3.0]);
    }

    #[test]
    fn known_2x2() {
        let a = Matrix::from_rows(&[&[0.0, 1.0][..], &[1.0, 0.0][..]]).unwrap();
        let eig = SymmetricEigen::new(&a).unwrap();
        assert!((eig.eigenvalues()[0] + 1.0).abs() < 1e-12);
        assert!((eig.eigenvalues()[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn eigen_residuals_are_small() {
        let a = Matrix::from_rows(&[
            &[4.0, 1.0, 0.5, 0.0][..],
            &[1.0, 3.0, 0.2, 0.7][..],
            &[0.5, 0.2, 2.0, -0.3][..],
            &[0.0, 0.7, -0.3, 1.0][..],
        ])
        .unwrap();
        let eig = SymmetricEigen::new(&a).unwrap();
        for j in 0..4 {
            let v = eig.eigenvector(j);
            let av = a.matvec(&v).unwrap();
            let lv = v.scaled(eig.eigenvalues()[j]);
            assert!((&av - &lv).norm2() < 1e-10, "residual too large for j={j}");
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = Matrix::from_fn(5, 5, |i, j| 1.0 / ((i + j + 1) as f64));
        let eig = SymmetricEigen::new(&a).unwrap();
        let v = eig.eigenvectors();
        let vtv = v.transpose().matmul(v).unwrap();
        assert!(vtv.approx_eq(&Matrix::identity(5), 1e-10));
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let a = Matrix::from_rows(&[
            &[2.0, -1.0, 0.0][..],
            &[-1.0, 2.0, -1.0][..],
            &[0.0, -1.0, 2.0][..],
        ])
        .unwrap();
        let eig = SymmetricEigen::new(&a).unwrap();
        let trace: f64 = (0..3).map(|i| a[(i, i)]).sum();
        let sum: f64 = eig.eigenvalues().iter().sum();
        assert!((trace - sum).abs() < 1e-10);
    }

    #[test]
    fn laplacian_of_disconnected_graph_has_two_zero_eigenvalues() {
        // Two disconnected edges: {0,1} and {2,3}.
        let l = Matrix::from_rows(&[
            &[1.0, -1.0, 0.0, 0.0][..],
            &[-1.0, 1.0, 0.0, 0.0][..],
            &[0.0, 0.0, 1.0, -1.0][..],
            &[0.0, 0.0, -1.0, 1.0][..],
        ])
        .unwrap();
        let eig = SymmetricEigen::new(&l).unwrap();
        assert!(eig.eigenvalues()[0].abs() < 1e-12);
        assert!(eig.eigenvalues()[1].abs() < 1e-12);
        assert!((eig.eigenvalues()[2] - 2.0).abs() < 1e-12);
        assert!((eig.eigenvalues()[3] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn embedding_returns_first_k_columns() {
        let a = Matrix::from_diagonal(&[1.0, 2.0, 3.0]);
        let eig = SymmetricEigen::new(&a).unwrap();
        let e = eig.embedding(2).unwrap();
        assert_eq!(e.shape(), (3, 2));
        assert!(eig.embedding(4).is_err());
    }

    #[test]
    fn symmetrized_constructor_forgives_roundoff() {
        let mut a = Matrix::from_rows(&[&[1.0, 0.5][..], &[0.5 + 1e-12, 1.0][..]]).unwrap();
        assert!(SymmetricEigen::new_symmetrized(&a).is_ok());
        a[(1, 0)] = 0.9; // grossly asymmetric: strict constructor rejects
        assert!(matches!(
            SymmetricEigen::new(&a),
            Err(LinalgError::InvalidData { .. })
        ));
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(SymmetricEigen::new(&Matrix::zeros(2, 3)).is_err());
        assert!(SymmetricEigen::new(&Matrix::zeros(0, 0)).is_err());
        let mut nan = Matrix::identity(2);
        nan[(0, 0)] = f64::NAN;
        assert!(SymmetricEigen::new(&nan).is_err());
        assert!(SymmetricEigen::new_symmetrized(&nan).is_err());
    }

    #[test]
    fn one_by_one() {
        let eig = SymmetricEigen::new(&Matrix::from_diagonal(&[5.0])).unwrap();
        assert_eq!(eig.eigenvalues(), &[5.0]);
        assert_eq!(eig.eigenvector(0).as_slice(), &[1.0]);
    }
}
