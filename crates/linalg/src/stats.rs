//! Statistics kernels: means, variances, covariance and correlation
//! matrices, percentiles, RMS and empirical CDFs.
//!
//! These are the measurement tools of the paper's evaluation: every
//! table and figure is a percentile, an RMS, a CDF or a correlation
//! map over temperature series, all computed here.

use crate::{LinalgError, Matrix, Result};

/// Arithmetic mean of a slice.
///
/// # Errors
///
/// Returns [`LinalgError::Empty`] for empty input.
pub fn mean(values: &[f64]) -> Result<f64> {
    if values.is_empty() {
        return Err(LinalgError::Empty { op: "mean" });
    }
    Ok(values.iter().sum::<f64>() / values.len() as f64)
}

/// Unbiased sample variance (denominator `n − 1`).
///
/// # Errors
///
/// Returns [`LinalgError::Empty`] when fewer than two values are
/// provided.
pub fn variance(values: &[f64]) -> Result<f64> {
    if values.len() < 2 {
        return Err(LinalgError::Empty { op: "variance" });
    }
    let m = mean(values)?;
    Ok(values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64)
}

/// Sample standard deviation.
///
/// # Errors
///
/// Same as [`variance`].
pub fn std_dev(values: &[f64]) -> Result<f64> {
    variance(values).map(f64::sqrt)
}

/// Root-mean-square of a slice — the error summary used by Table I and
/// Figures 3–5 of the paper.
///
/// # Errors
///
/// Returns [`LinalgError::Empty`] for empty input.
pub fn rms(values: &[f64]) -> Result<f64> {
    if values.is_empty() {
        return Err(LinalgError::Empty { op: "rms" });
    }
    Ok((values.iter().map(|v| v * v).sum::<f64>() / values.len() as f64).sqrt())
}

/// Percentile with linear interpolation between order statistics
/// (the "linear" / type-7 method), `p` in `[0, 100]`.
///
/// The paper reports its headline numbers at the 90th (model error)
/// and 99th (selection error) percentiles.
///
/// # Errors
///
/// * [`LinalgError::Empty`] for empty input,
/// * [`LinalgError::InvalidData`] for `p` outside `[0, 100]` or NaN
///   values in the data.
///
/// # Example
///
/// ```
/// use thermal_linalg::stats::percentile;
///
/// # fn main() -> Result<(), thermal_linalg::LinalgError> {
/// let data = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(percentile(&data, 50.0)?, 2.5);
/// assert_eq!(percentile(&data, 100.0)?, 4.0);
/// # Ok(())
/// # }
/// ```
pub fn percentile(values: &[f64], p: f64) -> Result<f64> {
    if values.is_empty() {
        return Err(LinalgError::Empty { op: "percentile" });
    }
    if !(0.0..=100.0).contains(&p) {
        return Err(LinalgError::InvalidData {
            reason: "percentile must be in [0, 100]",
        });
    }
    if values.iter().any(|v| v.is_nan()) {
        return Err(LinalgError::NonFinite { op: "percentile" });
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    if n == 1 {
        return Ok(sorted[0]);
    }
    let rank = p / 100.0 * (n - 1) as f64;
    let lo = crate::cast::floor_to_index(rank, n - 1);
    let hi = crate::cast::ceil_to_index(rank, n - 1);
    let frac = rank - lo as f64;
    Ok(sorted[lo] + frac * (sorted[hi] - sorted[lo]))
}

/// Median (50th percentile).
///
/// # Errors
///
/// Same as [`percentile`].
pub fn median(values: &[f64]) -> Result<f64> {
    percentile(values, 50.0)
}

/// An empirical cumulative distribution function over a finite sample.
///
/// Stores the sorted sample; evaluation is `P(X ≤ x)` with
/// right-continuous steps. Used to render the CDF plots of
/// Figures 3, 7 and 8.
#[derive(Debug, Clone, PartialEq)]
pub struct EmpiricalCdf {
    sorted: Vec<f64>,
}

impl EmpiricalCdf {
    /// Builds the ECDF from a sample.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::Empty`] for an empty sample,
    /// * [`LinalgError::NonFinite`] when the sample contains NaN.
    pub fn new(values: &[f64]) -> Result<Self> {
        if values.is_empty() {
            return Err(LinalgError::Empty { op: "ecdf" });
        }
        if values.iter().any(|v| v.is_nan()) {
            return Err(LinalgError::NonFinite { op: "ecdf" });
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        Ok(EmpiricalCdf { sorted })
    }

    /// Number of sample points.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `true` when the sample is empty (unreachable via `new`).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Evaluates `P(X ≤ x)`.
    pub fn eval(&self, x: f64) -> f64 {
        // partition_point returns count of elements <= x when we test `v <= x`.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF (quantile) at probability `q ∈ [0, 1]` with linear
    /// interpolation.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidData`] for `q` outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Result<f64> {
        if !(0.0..=1.0).contains(&q) {
            return Err(LinalgError::InvalidData {
                reason: "quantile probability must be in [0, 1]",
            });
        }
        percentile(&self.sorted, q * 100.0)
    }

    /// The sorted sample underlying the ECDF.
    pub fn sorted_values(&self) -> &[f64] {
        &self.sorted
    }

    /// Renders the ECDF as `(x, P(X ≤ x))` pairs at each distinct
    /// sample point — the exact polyline of the paper's CDF figures.
    pub fn steps(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        let mut out = Vec::with_capacity(self.sorted.len());
        for (i, &x) in self.sorted.iter().enumerate() {
            if i + 1 < self.sorted.len() && self.sorted[i + 1] == x {
                continue; // keep only the last (highest-probability) step per x
            }
            out.push((x, (i + 1) as f64 / n));
        }
        out
    }
}

/// Pearson correlation coefficient between two equal-length slices.
///
/// Returns `0.0` when either series is constant (zero variance), a
/// convention that keeps degenerate (dead) sensors maximally
/// dissimilar from live ones in the clustering stage.
///
/// # Errors
///
/// * [`LinalgError::ShapeMismatch`] when lengths differ,
/// * [`LinalgError::Empty`] when fewer than two samples are given.
pub fn pearson(a: &[f64], b: &[f64]) -> Result<f64> {
    if a.len() != b.len() {
        return Err(LinalgError::ShapeMismatch {
            op: "pearson",
            lhs: (a.len(), 1),
            rhs: (b.len(), 1),
        });
    }
    if a.len() < 2 {
        return Err(LinalgError::Empty { op: "pearson" });
    }
    let ma = mean(a)?;
    let mb = mean(b)?;
    let mut num = 0.0;
    let mut da = 0.0;
    let mut db = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        let dx = x - ma;
        let dy = y - mb;
        num += dx * dy;
        da += dx * dx;
        db += dy * dy;
    }
    if da == 0.0 || db == 0.0 {
        return Ok(0.0);
    }
    // Clamp against round-off drifting a hair outside [-1, 1].
    Ok((num / (da.sqrt() * db.sqrt())).clamp(-1.0, 1.0))
}

/// Sample covariance matrix of the columns of `data`
/// (`rows` = observations, `cols` = variables; denominator `n − 1`).
///
/// # Errors
///
/// Returns [`LinalgError::Empty`] when fewer than two rows are given.
pub fn covariance_matrix(data: &Matrix) -> Result<Matrix> {
    let (n, p) = data.shape();
    if n < 2 {
        return Err(LinalgError::Empty { op: "covariance" });
    }
    let means: Vec<f64> = (0..p).map(|j| data.column(j).sum() / n as f64).collect();
    let mut cov = Matrix::zeros(p, p);
    for r in 0..n {
        let row = data.row(r);
        for i in 0..p {
            let di = row[i] - means[i];
            for j in i..p {
                cov[(i, j)] += di * (row[j] - means[j]);
            }
        }
    }
    let denom = (n - 1) as f64;
    for i in 0..p {
        for j in i..p {
            cov[(i, j)] /= denom;
            cov[(j, i)] = cov[(i, j)];
        }
    }
    Ok(cov)
}

/// Pearson correlation matrix of the columns of `data`.
///
/// Constant columns receive zero correlation with everything (and
/// `1.0` with themselves), matching [`pearson`]'s convention.
///
/// # Errors
///
/// Same as [`covariance_matrix`].
pub fn correlation_matrix(data: &Matrix) -> Result<Matrix> {
    let cov = covariance_matrix(data)?;
    let p = cov.rows();
    let mut corr = Matrix::zeros(p, p);
    for i in 0..p {
        corr[(i, i)] = 1.0;
        for j in (i + 1)..p {
            let d = (cov[(i, i)] * cov[(j, j)]).sqrt();
            let c = if d == 0.0 {
                0.0
            } else {
                (cov[(i, j)] / d).clamp(-1.0, 1.0)
            };
            corr[(i, j)] = c;
            corr[(j, i)] = c;
        }
    }
    Ok(corr)
}

/// Euclidean distance between two equal-length slices.
///
/// # Errors
///
/// Returns [`LinalgError::ShapeMismatch`] when lengths differ.
pub fn euclidean_distance(a: &[f64], b: &[f64]) -> Result<f64> {
    if a.len() != b.len() {
        return Err(LinalgError::ShapeMismatch {
            op: "euclidean distance",
            lhs: (a.len(), 1),
            rhs: (b.len(), 1),
        });
    }
    Ok(a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_std() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&v).unwrap(), 5.0);
        assert!((variance(&v).unwrap() - 32.0 / 7.0).abs() < 1e-12);
        assert!((std_dev(&v).unwrap() - (32.0_f64 / 7.0).sqrt()).abs() < 1e-12);
        assert!(mean(&[]).is_err());
        assert!(variance(&[1.0]).is_err());
    }

    #[test]
    fn rms_known_values() {
        assert!((rms(&[3.0, 4.0]).unwrap() - (12.5_f64).sqrt()).abs() < 1e-12);
        assert_eq!(rms(&[0.0, 0.0]).unwrap(), 0.0);
        assert!(rms(&[]).is_err());
    }

    #[test]
    fn percentile_interpolates_linearly() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0).unwrap(), 1.0);
        assert_eq!(percentile(&v, 100.0).unwrap(), 4.0);
        assert_eq!(percentile(&v, 50.0).unwrap(), 2.5);
        assert!((percentile(&v, 90.0).unwrap() - 3.7).abs() < 1e-12);
        assert_eq!(percentile(&[7.0], 35.0).unwrap(), 7.0);
        assert_eq!(median(&v).unwrap(), 2.5);
    }

    #[test]
    fn percentile_is_order_invariant() {
        let a = [5.0, 1.0, 3.0];
        let b = [1.0, 3.0, 5.0];
        assert_eq!(percentile(&a, 73.0).unwrap(), percentile(&b, 73.0).unwrap());
    }

    #[test]
    fn percentile_rejects_bad_inputs() {
        assert!(percentile(&[], 50.0).is_err());
        assert!(percentile(&[1.0], -0.1).is_err());
        assert!(percentile(&[1.0], 100.1).is_err());
        assert!(percentile(&[f64::NAN], 50.0).is_err());
    }

    #[test]
    fn ecdf_eval_and_steps() {
        let cdf = EmpiricalCdf::new(&[1.0, 2.0, 2.0, 3.0]).unwrap();
        assert_eq!(cdf.len(), 4);
        assert_eq!(cdf.eval(0.5), 0.0);
        assert_eq!(cdf.eval(1.0), 0.25);
        assert_eq!(cdf.eval(2.0), 0.75);
        assert_eq!(cdf.eval(10.0), 1.0);
        let steps = cdf.steps();
        assert_eq!(steps, vec![(1.0, 0.25), (2.0, 0.75), (3.0, 1.0)]);
        assert!((cdf.quantile(0.5).unwrap() - 2.0).abs() < 1e-12);
        assert!(cdf.quantile(1.5).is_err());
        assert!(EmpiricalCdf::new(&[]).is_err());
        assert!(EmpiricalCdf::new(&[f64::NAN]).is_err());
    }

    #[test]
    fn pearson_perfect_and_anti_correlation() {
        let a = [1.0, 2.0, 3.0];
        assert!((pearson(&a, &[2.0, 4.0, 6.0]).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&a, &[3.0, 2.0, 1.0]).unwrap() + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&a, &[5.0, 5.0, 5.0]).unwrap(), 0.0);
        assert!(pearson(&a, &[1.0]).is_err());
        assert!(pearson(&[1.0], &[1.0]).is_err());
    }

    #[test]
    fn covariance_matrix_known() {
        // Two perfectly correlated columns: cov = [[1, 2], [2, 4]].
        let data = Matrix::from_rows(&[&[0.0, 0.0][..], &[1.0, 2.0][..], &[2.0, 4.0][..]]).unwrap();
        let cov = covariance_matrix(&data).unwrap();
        assert!((cov[(0, 0)] - 1.0).abs() < 1e-12);
        assert!((cov[(0, 1)] - 2.0).abs() < 1e-12);
        assert!((cov[(1, 1)] - 4.0).abs() < 1e-12);
        assert!(cov.is_symmetric(0.0));
        assert!(covariance_matrix(&Matrix::zeros(1, 2)).is_err());
    }

    #[test]
    fn correlation_matrix_diagonal_is_one() {
        let data = Matrix::from_rows(&[
            &[1.0, 9.0, 5.0][..],
            &[2.0, 7.0, 5.0][..],
            &[3.0, 8.0, 5.0][..],
            &[4.0, 5.0, 5.0][..],
        ])
        .unwrap();
        let corr = correlation_matrix(&data).unwrap();
        for i in 0..3 {
            assert_eq!(corr[(i, i)], 1.0);
            for j in 0..3 {
                assert!(corr[(i, j)] >= -1.0 && corr[(i, j)] <= 1.0);
            }
        }
        // Column 2 is constant: zero correlation with others.
        assert_eq!(corr[(0, 2)], 0.0);
        assert_eq!(corr[(2, 1)], 0.0);
    }

    #[test]
    fn euclidean_distance_known() {
        assert_eq!(euclidean_distance(&[0.0, 0.0], &[3.0, 4.0]).unwrap(), 5.0);
        assert!(euclidean_distance(&[1.0], &[1.0, 2.0]).is_err());
    }
}
