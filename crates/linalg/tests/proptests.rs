//! Property-based tests for the linear-algebra kernels.

// Test fixtures: panicking on a broken fixture is the right failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use proptest::prelude::*;
use thermal_linalg::{
    lstsq, stats, CholeskyDecomposition, LuDecomposition, Matrix, QrDecomposition, SymmetricEigen,
    Vector,
};

/// Strategy: a finite `rows × cols` matrix with entries in [-10, 10].
fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-10.0_f64..10.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data).expect("sized buffer"))
}

/// Strategy: a random SPD matrix built as `MᵀM + εI`.
fn spd_strategy(n: usize) -> impl Strategy<Value = Matrix> {
    matrix_strategy(n + 2, n).prop_map(move |m| {
        let mut g = m.gram();
        for i in 0..n {
            g[(i, i)] += 0.5;
        }
        g
    })
}

/// Strategy: a random symmetric matrix `(M + Mᵀ)/2`.
fn symmetric_strategy(n: usize) -> impl Strategy<Value = Matrix> {
    matrix_strategy(n, n)
        .prop_map(move |m| Matrix::from_fn(n, n, |i, j| 0.5 * (m[(i, j)] + m[(j, i)])))
}

proptest! {
    #[test]
    fn qr_reconstructs_input(a in matrix_strategy(6, 4)) {
        let qr = QrDecomposition::new(&a).unwrap();
        let recon = qr.q().matmul(&qr.r()).unwrap();
        prop_assert!(recon.approx_eq(&a, 1e-9));
    }

    #[test]
    fn qr_q_is_orthonormal(a in matrix_strategy(7, 3)) {
        let qr = QrDecomposition::new(&a).unwrap();
        let q = qr.q();
        let qtq = q.transpose().matmul(&q).unwrap();
        prop_assert!(qtq.approx_eq(&Matrix::identity(3), 1e-9));
    }

    #[test]
    fn least_squares_residual_orthogonal_to_column_space(
        a in matrix_strategy(8, 3),
        b in prop::collection::vec(-10.0_f64..10.0, 8),
    ) {
        let b = Vector::from_slice(&b);
        // Skip (rare) rank-deficient draws.
        let Ok(x) = lstsq::solve(&a, &b) else { return Ok(()); };
        let r = &b - &a.matvec(&x).unwrap();
        for c in 0..a.cols() {
            prop_assert!(a.column(c).dot(&r).unwrap().abs() < 1e-7);
        }
    }

    #[test]
    fn cholesky_roundtrip(a in spd_strategy(4)) {
        let chol = CholeskyDecomposition::new(&a).unwrap();
        let recon = chol.l().matmul(&chol.l().transpose()).unwrap();
        prop_assert!(recon.approx_eq(&a, 1e-8 * a.norm_max().max(1.0)));
    }

    #[test]
    fn cholesky_solve_satisfies_system(
        a in spd_strategy(3),
        b in prop::collection::vec(-5.0_f64..5.0, 3),
    ) {
        let b = Vector::from_slice(&b);
        let x = CholeskyDecomposition::new(&a).unwrap().solve(&b).unwrap();
        let back = a.matvec(&x).unwrap();
        prop_assert!((&back - &b).norm2() < 1e-7 * b.norm2().max(1.0));
    }

    #[test]
    fn lu_solve_satisfies_system(
        a in matrix_strategy(4, 4),
        b in prop::collection::vec(-5.0_f64..5.0, 4),
    ) {
        let Ok(lu) = LuDecomposition::new(&a) else { return Ok(()); };
        let b = Vector::from_slice(&b);
        let x = lu.solve(&b).unwrap();
        let back = a.matvec(&x).unwrap();
        // Condition number can be large for random draws; use a loose bound.
        prop_assert!((&back - &b).norm2() < 1e-5 * b.norm2().max(1.0) + 1e-5);
    }

    #[test]
    fn eigen_residuals_small(a in symmetric_strategy(5)) {
        let eig = SymmetricEigen::new_symmetrized(&a).unwrap();
        for j in 0..5 {
            let v = eig.eigenvector(j);
            let av = a.matvec(&v).unwrap();
            let lv = v.scaled(eig.eigenvalues()[j]);
            prop_assert!((&av - &lv).norm2() < 1e-8 * a.norm_max().max(1.0));
        }
    }

    #[test]
    fn eigenvalues_sorted_and_trace_preserved(a in symmetric_strategy(4)) {
        let eig = SymmetricEigen::new_symmetrized(&a).unwrap();
        let vals = eig.eigenvalues();
        for w in vals.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-12);
        }
        let trace: f64 = (0..4).map(|i| a[(i, i)]).sum();
        let sum: f64 = vals.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-8 * trace.abs().max(1.0));
    }

    #[test]
    fn pearson_in_unit_interval(
        a in prop::collection::vec(-100.0_f64..100.0, 2..40),
    ) {
        let b: Vec<f64> = a.iter().map(|x| x * 0.7 + 1.0).collect();
        let r = stats::pearson(&a, &b).unwrap();
        prop_assert!((-1.0..=1.0).contains(&r));
    }

    #[test]
    fn correlation_matrix_entries_bounded(m in matrix_strategy(10, 4)) {
        let corr = stats::correlation_matrix(&m).unwrap();
        for i in 0..4 {
            prop_assert!((corr[(i, i)] - 1.0).abs() < 1e-12 || corr[(i, i)] == 1.0);
            for j in 0..4 {
                prop_assert!((-1.0..=1.0).contains(&corr[(i, j)]));
                prop_assert!((corr[(i, j)] - corr[(j, i)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn percentile_monotone_in_p(
        v in prop::collection::vec(-50.0_f64..50.0, 1..30),
        p1 in 0.0_f64..100.0,
        p2 in 0.0_f64..100.0,
    ) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let a = stats::percentile(&v, lo).unwrap();
        let b = stats::percentile(&v, hi).unwrap();
        prop_assert!(a <= b + 1e-12);
    }

    #[test]
    fn percentile_within_range(
        v in prop::collection::vec(-50.0_f64..50.0, 1..30),
        p in 0.0_f64..100.0,
    ) {
        let q = stats::percentile(&v, p).unwrap();
        let min = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(q >= min - 1e-12 && q <= max + 1e-12);
    }

    #[test]
    fn ecdf_is_monotone_and_bounded(
        v in prop::collection::vec(-50.0_f64..50.0, 1..30),
        x1 in -60.0_f64..60.0,
        x2 in -60.0_f64..60.0,
    ) {
        let cdf = stats::EmpiricalCdf::new(&v).unwrap();
        let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
        let a = cdf.eval(lo);
        let b = cdf.eval(hi);
        prop_assert!(a <= b);
        prop_assert!((0.0..=1.0).contains(&a) && (0.0..=1.0).contains(&b));
    }

    #[test]
    fn matmul_associative(
        a in matrix_strategy(3, 4),
        b in matrix_strategy(4, 2),
        c in matrix_strategy(2, 3),
    ) {
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        prop_assert!(left.approx_eq(&right, 1e-8));
    }

    #[test]
    fn transpose_involution(a in matrix_strategy(5, 3)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn gram_matches_explicit(a in matrix_strategy(6, 3)) {
        let g = a.gram();
        let explicit = a.transpose().matmul(&a).unwrap();
        prop_assert!(g.approx_eq(&explicit, 1e-9));
    }

    #[test]
    fn matmul_bitwise_identical_across_thread_counts(
        a in matrix_strategy(9, 7),
        b in matrix_strategy(7, 5),
        threads in 2_usize..8,
    ) {
        let seq = a.matmul_with_threads(&b, 1).unwrap();
        let par = a.matmul_with_threads(&b, threads).unwrap();
        prop_assert_eq!(seq, par);
    }

    #[test]
    fn gram_bitwise_identical_across_thread_counts(
        a in matrix_strategy(12, 6),
        threads in 2_usize..8,
    ) {
        let seq = a.gram_with_threads(1);
        let par = a.gram_with_threads(threads);
        prop_assert_eq!(seq, par);
    }

    #[test]
    fn matmul_transpose_b_bitwise_identical_across_thread_counts(
        a in matrix_strategy(8, 6),
        b in matrix_strategy(5, 6),
        threads in 2_usize..8,
    ) {
        let seq = a.matmul_transpose_b_with_threads(&b, 1).unwrap();
        let par = a.matmul_transpose_b_with_threads(&b, threads).unwrap();
        prop_assert_eq!(seq, par);
    }

    #[test]
    fn solve_matrix_bitwise_identical_across_thread_counts(
        a in matrix_strategy(9, 4),
        b in matrix_strategy(9, 3),
        threads in 2_usize..8,
    ) {
        let Ok(qr) = QrDecomposition::new(&a) else { return Ok(()); };
        let Ok(seq) = qr.solve_matrix_with_threads(&b, 1) else { return Ok(()); };
        let par = qr.solve_matrix_with_threads(&b, threads).unwrap();
        prop_assert_eq!(seq, par);
    }

    #[test]
    fn matmul_transpose_b_matches_explicit_transpose(
        a in matrix_strategy(6, 4),
        b in matrix_strategy(5, 4),
    ) {
        let fused = a.matmul_transpose_b(&b).unwrap();
        let explicit = a.matmul(&b.transpose()).unwrap();
        prop_assert!(fused.approx_eq(&explicit, 1e-9));
    }

    #[test]
    fn transpose_matmul_matches_explicit_transpose(
        a in matrix_strategy(7, 4),
        b in matrix_strategy(7, 3),
    ) {
        let fused = a.transpose_matmul(&b).unwrap();
        let explicit = a.transpose().matmul(&b).unwrap();
        prop_assert!(fused.approx_eq(&explicit, 1e-9));
    }

    #[test]
    fn transpose_matvec_matches_explicit_transpose(
        a in matrix_strategy(8, 5),
        v in prop::collection::vec(-10.0_f64..10.0, 8),
    ) {
        let v = Vector::from_slice(&v);
        let fused = a.transpose_matvec(&v).unwrap();
        let explicit = a.transpose().matvec(&v).unwrap();
        prop_assert!((&fused - &explicit).norm2() < 1e-9);
    }

    #[test]
    fn ridge_solution_norm_decreases_with_lambda(
        a in matrix_strategy(8, 3),
        b in prop::collection::vec(-5.0_f64..5.0, 8),
    ) {
        let b = Vector::from_slice(&b);
        let Ok(x_small) = lstsq::solve_ridge(&a, &b, 1e-3) else { return Ok(()); };
        let Ok(x_large) = lstsq::solve_ridge(&a, &b, 1e3) else { return Ok(()); };
        prop_assert!(x_large.norm2() <= x_small.norm2() + 1e-9);
    }
}

// Rank-1 maintenance of the Cholesky factor: the O(n²) update path
// must agree with an O(n³) refactorisation of the explicitly-modified
// matrix, over random well-conditioned SPD draws.
proptest! {
    #[test]
    fn rank_one_update_matches_refactorization(
        a in spd_strategy(4),
        x in prop::collection::vec(-5.0_f64..5.0, 4),
    ) {
        let x = Vector::from_slice(&x);
        let mut chol = CholeskyDecomposition::new(&a).unwrap();
        chol.rank_one_update(&x).unwrap();
        // A + xxᵀ, refactorised from scratch.
        let bumped = Matrix::from_fn(4, 4, |i, j| a[(i, j)] + x[i] * x[j]);
        let recon = chol.l().matmul(&chol.l().transpose()).unwrap();
        prop_assert!(
            recon.approx_eq(&bumped, 1e-8 * bumped.norm_max().max(1.0)),
            "update drifted from refactorisation"
        );
    }

    #[test]
    fn rank_one_downdate_inverts_update(
        a in spd_strategy(4),
        x in prop::collection::vec(-5.0_f64..5.0, 4),
    ) {
        let x = Vector::from_slice(&x);
        let mut chol = CholeskyDecomposition::new(&a).unwrap();
        chol.rank_one_update(&x).unwrap();
        chol.rank_one_downdate(&x).unwrap();
        let recon = chol.l().matmul(&chol.l().transpose()).unwrap();
        prop_assert!(
            recon.approx_eq(&a, 1e-7 * a.norm_max().max(1.0)),
            "downdate did not invert the update"
        );
    }

    #[test]
    fn scale_matches_scaled_refactorization(
        a in spd_strategy(4),
        lambda in 0.5_f64..1.0,
    ) {
        let mut chol = CholeskyDecomposition::new(&a).unwrap();
        chol.scale(lambda).unwrap();
        let scaled = Matrix::from_fn(4, 4, |i, j| lambda * a[(i, j)]);
        let recon = chol.l().matmul(&chol.l().transpose()).unwrap();
        prop_assert!(
            recon.approx_eq(&scaled, 1e-9 * scaled.norm_max().max(1.0)),
            "scale drifted from refactorisation"
        );
    }
}
