//! The supervised cell runner: resume, retry, deadline, breaker.
//!
//! A *cell* is one unit of recomputable work in a grid or pipeline —
//! identified by a stable name, producing a byte payload (encoded via
//! [`crate::codec`]). [`run_cell`] wraps the execution of one cell
//! with the full robustness ladder:
//!
//! 1. **Resume** — a verified checkpoint under the cell's name short-
//!    circuits execution entirely ([`CellOutcome::Restored`]).
//! 2. **Circuit breaker** — a cell whose persisted consecutive-failure
//!    count has reached [`CellPolicy::breaker_threshold`] is *not*
//!    attempted again; it yields [`CellOutcome::Quarantined`] so the
//!    rest of the grid still completes. Failure counts live in the
//!    manifest, so a cell that crash-loops the whole process is still
//!    recognized across restarts.
//! 3. **Deadline** — with [`CellPolicy::deadline_ms`] set, the cell
//!    body runs on a helper thread and the runner waits at most that
//!    long. Rust cannot kill a thread, so a hung body is abandoned
//!    (it leaks until it returns) and the attempt counts as a
//!    failure; this bounds the *runner's* latency, which is what grid
//!    progress needs.
//! 4. **Bounded deterministic retry** — up to
//!    [`CellPolicy::max_attempts`] tries with exponential backoff
//!    (`backoff_base_ms << (attempt-1)`). The schedule is a pure
//!    function of the policy; no jitter, no wall-clock dependence in
//!    any persisted output.
//!
//! On success the payload is committed to the store (atomic write +
//! manifest update) *before* the outcome is returned, so a crash
//! immediately after a cell completes never loses its work.

use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use crate::error::CkptError;
use crate::store::CheckpointStore;

/// Supervision parameters for [`run_cell`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellPolicy {
    /// Maximum execution attempts per `run_cell` call (≥ 1).
    pub max_attempts: u32,
    /// Base backoff before retry `n` is `backoff_base_ms << (n-1)`.
    pub backoff_base_ms: u64,
    /// Per-attempt wall-clock deadline; `None` runs the body inline
    /// with no timeout (no helper thread).
    pub deadline_ms: Option<u64>,
    /// Persisted consecutive-failure count at which the breaker opens
    /// and the cell is skipped without execution.
    pub breaker_threshold: u32,
}

impl Default for CellPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 2,
            backoff_base_ms: 10,
            deadline_ms: None,
            breaker_threshold: 6,
        }
    }
}

/// How a supervised cell concluded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellOutcome {
    /// A verified checkpoint existed; the cell body never ran.
    Restored(Vec<u8>),
    /// The cell body ran (possibly after retries) and its payload was
    /// committed to the store.
    Computed(Vec<u8>),
    /// The cell did not produce a payload: the breaker was open or
    /// every attempt failed. The grid should continue without it.
    Quarantined {
        /// Cell name, for reporting.
        name: String,
        /// Attempts made in *this* call (0 when the breaker was open).
        attempts: u32,
        /// Persisted consecutive-failure count after this call.
        failures: u32,
        /// Last failure message (or why the breaker is open).
        reason: String,
    },
}

impl CellOutcome {
    /// The payload, when one exists (restored or computed).
    pub fn bytes(&self) -> Option<&[u8]> {
        match self {
            Self::Restored(b) | Self::Computed(b) => Some(b),
            Self::Quarantined { .. } => None,
        }
    }

    /// True when the payload came from a checkpoint, not execution.
    pub fn was_restored(&self) -> bool {
        matches!(self, Self::Restored(_))
    }
}

/// Executes one supervised cell: resume from checkpoint if possible,
/// otherwise run `work` under the policy's deadline/retry/breaker
/// rules and commit the result.
///
/// `work` returns the cell's encoded payload or a failure message.
/// It must be `'static` because deadline supervision runs it on a
/// helper thread; share context via `Arc`. `Err` is only returned
/// for store I/O failures — cell failures surface as
/// [`CellOutcome::Quarantined`].
pub fn run_cell<W>(
    store: &mut CheckpointStore,
    name: &str,
    policy: &CellPolicy,
    work: W,
) -> Result<CellOutcome, CkptError>
where
    W: Fn() -> Result<Vec<u8>, String> + Send + Sync + 'static,
{
    if let Some(bytes) = store.get(name)? {
        store.clear_failures(name)?;
        return Ok(CellOutcome::Restored(bytes));
    }

    let prior = store.failure_count(name);
    if prior >= policy.breaker_threshold {
        return Ok(CellOutcome::Quarantined {
            name: name.to_string(),
            attempts: 0,
            failures: prior,
            reason: format!(
                "circuit breaker open: {prior} recorded failures (threshold {})",
                policy.breaker_threshold
            ),
        });
    }

    let work = Arc::new(work);
    let max_attempts = policy.max_attempts.max(1);
    let mut last_reason = String::new();
    let mut attempts = 0u32;
    for attempt in 1..=max_attempts {
        attempts = attempt;
        match execute(&work, policy.deadline_ms) {
            Ok(bytes) => {
                store.put(name, &bytes)?;
                store.clear_failures(name)?;
                return Ok(CellOutcome::Computed(bytes));
            }
            Err(reason) => {
                last_reason = reason;
                let failures = store.record_failure(name)?;
                if failures >= policy.breaker_threshold {
                    return Ok(CellOutcome::Quarantined {
                        name: name.to_string(),
                        attempts,
                        failures,
                        reason: last_reason,
                    });
                }
                if attempt < max_attempts {
                    let shift = u32::min(attempt - 1, 16);
                    let pause = policy.backoff_base_ms.saturating_mul(1u64 << shift);
                    std::thread::sleep(Duration::from_millis(pause));
                }
            }
        }
    }

    Ok(CellOutcome::Quarantined {
        name: name.to_string(),
        attempts,
        failures: store.failure_count(name),
        reason: last_reason,
    })
}

/// Runs the cell body, inline or under a deadline on a helper thread.
fn execute<W>(work: &Arc<W>, deadline_ms: Option<u64>) -> Result<Vec<u8>, String>
where
    W: Fn() -> Result<Vec<u8>, String> + Send + Sync + 'static,
{
    let Some(deadline) = deadline_ms else {
        return (work)();
    };
    let (tx, rx) = mpsc::channel();
    let body = Arc::clone(work);
    std::thread::spawn(move || {
        let _ = tx.send((body)());
    });
    match rx.recv_timeout(Duration::from_millis(deadline)) {
        Ok(result) => result,
        Err(mpsc::RecvTimeoutError::Timeout) => {
            Err(format!("deadline exceeded after {deadline} ms"))
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            Err("cell body terminated without a result".to_string())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("thermal-ckpt-runner-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn quick_policy() -> CellPolicy {
        CellPolicy {
            max_attempts: 2,
            backoff_base_ms: 0,
            deadline_ms: None,
            breaker_threshold: 6,
        }
    }

    #[test]
    fn computed_then_restored() {
        let root = scratch("restore");
        let mut store = CheckpointStore::open(&root, 1, "r").unwrap();
        let calls = Arc::new(AtomicU32::new(0));
        let c = Arc::clone(&calls);
        let work = move || {
            c.fetch_add(1, Ordering::SeqCst);
            Ok(b"payload".to_vec())
        };
        let out = run_cell(&mut store, "cell", &quick_policy(), work.clone()).unwrap();
        assert_eq!(out, CellOutcome::Computed(b"payload".to_vec()));
        // Second run resumes without executing.
        let out = run_cell(&mut store, "cell", &quick_policy(), work).unwrap();
        assert!(out.was_restored());
        assert_eq!(out.bytes(), Some(&b"payload"[..]));
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn retry_recovers_from_transient_failure() {
        let root = scratch("retry");
        let mut store = CheckpointStore::open(&root, 1, "r").unwrap();
        let calls = Arc::new(AtomicU32::new(0));
        let c = Arc::clone(&calls);
        let out = run_cell(&mut store, "cell", &quick_policy(), move || {
            if c.fetch_add(1, Ordering::SeqCst) == 0 {
                Err("transient".to_string())
            } else {
                Ok(b"ok".to_vec())
            }
        })
        .unwrap();
        assert_eq!(out, CellOutcome::Computed(b"ok".to_vec()));
        assert_eq!(calls.load(Ordering::SeqCst), 2);
        // Success clears the interim failure record.
        assert_eq!(store.failure_count("cell"), 0);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn exhausted_attempts_quarantine_with_persisted_failures() {
        let root = scratch("exhaust");
        let mut store = CheckpointStore::open(&root, 1, "r").unwrap();
        let out = run_cell(&mut store, "bad", &quick_policy(), || {
            Err("always broken".to_string())
        })
        .unwrap();
        match out {
            CellOutcome::Quarantined {
                attempts,
                failures,
                reason,
                ..
            } => {
                assert_eq!(attempts, 2);
                assert_eq!(failures, 2);
                assert!(reason.contains("always broken"));
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
        // Counts survive a reopen (crash-loop recognition).
        drop(store);
        let store = CheckpointStore::open(&root, 1, "r").unwrap();
        assert_eq!(store.failure_count("bad"), 2);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn breaker_opens_and_skips_execution() {
        let root = scratch("breaker");
        let mut store = CheckpointStore::open(&root, 1, "r").unwrap();
        let policy = CellPolicy {
            breaker_threshold: 3,
            ..quick_policy()
        };
        // Two runs of two failed attempts each: breaker trips mid-second.
        let _ = run_cell(&mut store, "bad", &policy, || Err("x".to_string())).unwrap();
        let _ = run_cell(&mut store, "bad", &policy, || Err("x".to_string())).unwrap();
        assert!(store.failure_count("bad") >= 3);
        let calls = Arc::new(AtomicU32::new(0));
        let c = Arc::clone(&calls);
        let out = run_cell(&mut store, "bad", &policy, move || {
            c.fetch_add(1, Ordering::SeqCst);
            Ok(vec![])
        })
        .unwrap();
        match out {
            CellOutcome::Quarantined {
                attempts, reason, ..
            } => {
                assert_eq!(attempts, 0);
                assert!(reason.contains("circuit breaker open"));
            }
            other => panic!("expected open breaker, got {other:?}"),
        }
        assert_eq!(
            calls.load(Ordering::SeqCst),
            0,
            "breaker must skip execution"
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn deadline_bounds_a_hung_cell() {
        let root = scratch("deadline");
        let mut store = CheckpointStore::open(&root, 1, "r").unwrap();
        let policy = CellPolicy {
            max_attempts: 1,
            backoff_base_ms: 0,
            deadline_ms: Some(20),
            breaker_threshold: 6,
        };
        let out = run_cell(&mut store, "hung", &policy, || {
            std::thread::sleep(Duration::from_millis(5_000));
            Ok(vec![])
        })
        .unwrap();
        match out {
            CellOutcome::Quarantined { reason, .. } => {
                assert!(reason.contains("deadline exceeded"), "reason: {reason}");
            }
            other => panic!("expected deadline quarantine, got {other:?}"),
        }
        // A fast cell under the same policy still completes.
        let out = run_cell(&mut store, "fast", &policy, || Ok(b"quick".to_vec())).unwrap();
        assert_eq!(out, CellOutcome::Computed(b"quick".to_vec()));
        let _ = std::fs::remove_dir_all(&root);
    }
}
