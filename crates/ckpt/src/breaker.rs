//! In-memory circuit breaker — the live-runtime counterpart of the
//! persisted breaker inside [`crate::run_cell`].
//!
//! `run_cell` trips per *cell*, durably, so a poisoned computation is
//! quarantined across process restarts. A streaming ingest loop needs
//! the same protection per *source*, but in memory and per tick: stop
//! hammering a failing source after `threshold` consecutive failures,
//! wait out a cooldown, then probe with a single half-open trial
//! before trusting it again. The breaker is pure state-machine — no
//! clocks, no randomness — so a replayed event sequence reproduces
//! the same trip/recover trace bit for bit.

use crate::codec::Record;
use crate::snapshot::Snapshot;
use crate::CkptError;

/// Breaker states (classic three-state pattern).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Calls flow; consecutive failures are counted.
    Closed,
    /// Calls are refused until the cooldown has elapsed.
    Open,
    /// One probe call is allowed; its outcome decides Closed vs Open.
    HalfOpen,
}

impl BreakerState {
    /// Stable wire/report label.
    pub fn label(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }

    /// Inverse of [`BreakerState::label`].
    pub fn from_label(label: &str) -> Option<Self> {
        match label {
            "closed" => Some(BreakerState::Closed),
            "open" => Some(BreakerState::Open),
            "half-open" => Some(BreakerState::HalfOpen),
            _ => None,
        }
    }
}

/// Configuration of a [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerPolicy {
    /// Consecutive failures that trip Closed → Open.
    pub threshold: u32,
    /// Ticks the breaker stays Open before allowing a half-open
    /// probe.
    pub cooldown_ticks: u64,
}

impl Default for BreakerPolicy {
    /// Three strikes, then an 8-tick cooldown.
    fn default() -> Self {
        BreakerPolicy {
            threshold: 3,
            cooldown_ticks: 8,
        }
    }
}

impl BreakerPolicy {
    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Returns [`CkptError::InvalidPolicy`] for a zero failure
    /// threshold.
    pub fn validate(&self) -> Result<(), CkptError> {
        if self.threshold == 0 {
            return Err(CkptError::InvalidPolicy {
                reason: "breaker threshold must be at least 1",
            });
        }
        Ok(())
    }
}

/// An in-memory three-state circuit breaker driven by explicit ticks.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    policy: BreakerPolicy,
    state: BreakerState,
    consecutive_failures: u32,
    /// Ticks remaining before an Open breaker half-opens.
    cooldown_left: u64,
    /// Lifetime Closed/HalfOpen → Open transitions.
    trips: u64,
    /// Lifetime calls refused while Open.
    refusals: u64,
}

impl CircuitBreaker {
    /// Creates a closed breaker.
    ///
    /// # Errors
    ///
    /// Returns [`CkptError::InvalidPolicy`] when `policy` is invalid.
    pub fn new(policy: BreakerPolicy) -> Result<Self, CkptError> {
        policy.validate()?;
        Ok(CircuitBreaker {
            policy,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            cooldown_left: 0,
            trips: 0,
            refusals: 0,
        })
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Lifetime trip count.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Lifetime refused-call count.
    pub fn refusals(&self) -> u64 {
        self.refusals
    }

    /// Advances cooldown by one event-loop tick.
    pub fn tick(&mut self) {
        if self.state == BreakerState::Open {
            self.cooldown_left = self.cooldown_left.saturating_sub(1);
            if self.cooldown_left == 0 {
                self.state = BreakerState::HalfOpen;
            }
        }
    }

    /// Asks permission to call the protected source. Refusals while
    /// Open are counted; a HalfOpen breaker grants exactly one probe.
    pub fn allow(&mut self) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                self.refusals += 1;
                false
            }
        }
    }

    /// Records a successful call.
    pub fn record_success(&mut self) {
        self.consecutive_failures = 0;
        self.state = BreakerState::Closed;
    }

    /// Records a failed call, tripping the breaker when the threshold
    /// is reached (a HalfOpen probe failure re-opens immediately).
    pub fn record_failure(&mut self) {
        match self.state {
            BreakerState::HalfOpen => self.trip(),
            BreakerState::Closed => {
                self.consecutive_failures = self.consecutive_failures.saturating_add(1);
                if self.consecutive_failures >= self.policy.threshold {
                    self.trip();
                }
            }
            BreakerState::Open => {}
        }
    }

    fn trip(&mut self) {
        self.state = BreakerState::Open;
        self.consecutive_failures = 0;
        self.cooldown_left = self.policy.cooldown_ticks.max(1);
        self.trips += 1;
    }
}

impl Snapshot for CircuitBreaker {
    const TAG: &'static str = "ckpt-breaker";
    const VERSION: u32 = 1;

    fn capture(&self, rec: &mut Record) {
        rec.put("state", self.state.label())
            .put_u64("consecutive_failures", u64::from(self.consecutive_failures))
            .put_u64("cooldown_left", self.cooldown_left)
            .put_u64("trips", self.trips)
            .put_u64("refusals", self.refusals);
    }

    fn restore(&mut self, rec: &Record) -> Result<(), CkptError> {
        let state_label = rec.get("state")?;
        let state = BreakerState::from_label(&state_label).ok_or_else(|| {
            CkptError::decode("breaker snapshot", format!("unknown state {state_label:?}"))
        })?;
        let consecutive_failures = u32::try_from(rec.get_u64("consecutive_failures")?)
            .map_err(|e| CkptError::decode("breaker snapshot", e))?;
        let cooldown_left = rec.get_u64("cooldown_left")?;
        let trips = rec.get_u64("trips")?;
        let refusals = rec.get_u64("refusals")?;
        self.state = state;
        self.consecutive_failures = consecutive_failures;
        self.cooldown_left = cooldown_left;
        self.trips = trips;
        self.refusals = refusals;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(threshold: u32, cooldown: u64) -> CircuitBreaker {
        CircuitBreaker::new(BreakerPolicy {
            threshold,
            cooldown_ticks: cooldown,
        })
        .unwrap()
    }

    #[test]
    fn zero_threshold_rejected() {
        assert!(CircuitBreaker::new(BreakerPolicy {
            threshold: 0,
            cooldown_ticks: 1
        })
        .is_err());
    }

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let mut b = breaker(3, 4);
        b.record_failure();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed);
        // A success in between resets the count.
        b.record_success();
        b.record_failure();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn open_refuses_until_cooldown_then_half_opens() {
        let mut b = breaker(1, 3);
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        for _ in 0..2 {
            assert!(!b.allow());
            b.tick();
            assert_eq!(b.state(), BreakerState::Open);
        }
        b.tick();
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.allow(), "half-open grants a probe");
        assert_eq!(b.refusals(), 2);
    }

    #[test]
    fn half_open_probe_decides() {
        let mut b = breaker(1, 1);
        b.record_failure();
        b.tick();
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open, "failed probe re-opens");
        assert_eq!(b.trips(), 2);
        b.tick();
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed, "good probe closes");
        // Fully recovered: takes a full threshold to trip again.
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn trace_is_deterministic() {
        let run = || {
            let mut b = breaker(2, 2);
            let mut states = Vec::new();
            let outcomes = [false, false, true, false, false, true, true, false];
            for ok in outcomes {
                b.tick();
                if b.allow() {
                    if ok {
                        b.record_success();
                    } else {
                        b.record_failure();
                    }
                }
                states.push(b.state());
            }
            (states, b.trips(), b.refusals())
        };
        assert_eq!(run(), run());
    }
}
