//! Durable atomic file writes and the content hash used to verify
//! them.
//!
//! The write protocol is the classic crash-safe sequence:
//!
//! 1. write the full payload to `.NAME.tmp` in the *same directory*
//!    as the target (rename is only atomic within a filesystem),
//! 2. `fsync` the temp file so the bytes are durable,
//! 3. tick the kill-point hook ([`thermal_faults::durable_write_tick`])
//!    — in a chaos run the process may abort *here*, which models a
//!    power cut before the commit,
//! 4. `rename` the temp file onto the target (the atomic commit),
//! 5. `fsync` the parent directory so the rename itself is durable.
//!
//! A reader therefore sees either the old file or the new file in its
//! entirety, never a torn mixture; an aborted write leaves only a
//! `.NAME.tmp` stray that [`crate::CheckpointStore::open`] sweeps up.
//!
//! Hashing uses 64-bit FNV-1a — not cryptographic, but this guards
//! against truncation and bit rot, not adversaries, and it is
//! dependency-free and byte-order independent.

use std::fs;
use std::io::Write as _;
use std::path::{Component, Path};

use crate::error::CkptError;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming FNV-1a 64-bit hasher for content verification.
#[derive(Debug, Clone)]
pub struct Fnv64 {
    state: u64,
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    /// Absorbs `bytes` into the running hash.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// FNV-1a 64-bit hash of `bytes` in one call.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.finish()
}

/// Writes `bytes` to `path` durably and atomically (temp file +
/// fsync + rename + parent fsync), ticking the kill-point hook just
/// before the commit rename.
///
/// The target's parent directory must already exist. On success the
/// file at `path` contains exactly `bytes`; on failure (or a chaos
/// abort) the previous contents of `path`, if any, are untouched.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), CkptError> {
    let parent = match path.parent() {
        Some(p) if p.components().next().is_some() => p.to_path_buf(),
        _ => Path::new(".").to_path_buf(),
    };
    let file_name =
        path.file_name()
            .and_then(|n| n.to_str())
            .ok_or_else(|| CkptError::InvalidName {
                name: path.display().to_string(),
            })?;
    let tmp = parent.join(format!(".{file_name}.tmp"));

    let mut f = fs::File::create(&tmp).map_err(|e| CkptError::io("create temp", &tmp, e))?;
    f.write_all(bytes)
        .map_err(|e| CkptError::io("write temp", &tmp, e))?;
    f.sync_all()
        .map_err(|e| CkptError::io("fsync temp", &tmp, e))?;
    drop(f);

    // Chaos kill point: aborting here leaves only the temp file, the
    // published artifact is never torn.
    thermal_faults::durable_write_tick();

    fs::rename(&tmp, path).map_err(|e| CkptError::io("rename temp", path, e))?;
    sync_dir(&parent);
    Ok(())
}

/// Best-effort fsync of a directory so a just-committed rename
/// survives power loss. Failures are ignored: some filesystems and
/// platforms reject directory fsync, and the rename itself already
/// happened.
fn sync_dir(dir: &Path) {
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
}

/// True when `name` is a safe checkpoint/artifact file name:
/// `[A-Za-z0-9._-]+`, no leading dot (reserved for temp files), no
/// path separators or traversal.
pub fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && !name.starts_with('.')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
        && Path::new(name).components().count() == 1
        && matches!(
            Path::new(name).components().next(),
            Some(Component::Normal(_))
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("thermal-ckpt-atomic-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn streaming_equals_oneshot() {
        let mut h = Fnv64::new();
        h.update(b"hello ");
        h.update(b"world");
        assert_eq!(h.finish(), fnv1a64(b"hello world"));
    }

    #[test]
    fn write_then_read_roundtrips_and_cleans_temp() {
        let dir = scratch("roundtrip");
        let path = dir.join("artifact.txt");
        write_atomic(&path, b"payload-1").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"payload-1");
        // Overwrite is atomic too.
        write_atomic(&path, b"payload-2").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"payload-2");
        // No temp stray left behind.
        let strays: Vec<_> = fs::read_dir(&dir)
            .into_iter()
            .flatten()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(strays.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn name_validation() {
        for good in ["a", "stage-1.ck", "fig5_cell_2_3", "A.b-c_d"] {
            assert!(valid_name(good), "{good:?} should be valid");
        }
        for bad in ["", ".hidden", "a/b", "..", "a b", "α", "a\\b"] {
            assert!(!valid_name(bad), "{bad:?} should be invalid");
        }
    }
}
