//! The on-disk checkpoint store: verified payloads + manifest +
//! quarantine.
//!
//! A store is one directory:
//!
//! ```text
//! <root>/
//!   manifest.txt      — identity + content hashes (see `manifest`)
//!   <name>            — one file per committed checkpoint payload
//!   quarantine/       — corrupt/orphaned files moved aside, never read
//!   .<name>.tmp       — in-flight atomic writes (swept at open)
//! ```
//!
//! [`CheckpointStore::open`] is where crash recovery happens; it
//! never fails on *corruption*, only on I/O errors:
//!
//! 1. sweep stray temp files from interrupted writes,
//! 2. parse the manifest — unparseable (torn, truncated, garbage)
//!    means the store cannot be trusted: the manifest and every
//!    payload are quarantined and the run starts fresh,
//! 3. a schema-version or seed mismatch likewise discards (to
//!    quarantine) all checkpoints — recomputing is always safe,
//!    reusing state across formats or seeds never is,
//! 4. every manifested payload is length- and hash-verified;
//!    mismatches are quarantined, missing payloads dropped,
//! 5. unmanifested payload files (committed payload whose manifest
//!    update never landed) are quarantined.
//!
//! What survives is exactly the set of checkpoints proven intact, and
//! the [`OpenReport`] says what happened to the rest.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use crate::atomic::{fnv1a64, valid_name, write_atomic};
use crate::error::CkptError;
use crate::manifest::{Manifest, ManifestEntry, SCHEMA_VERSION};

/// File name of the manifest inside a store root.
pub const MANIFEST_NAME: &str = "manifest.txt";

/// Directory name files are moved into when they cannot be trusted.
pub const QUARANTINE_DIR: &str = "quarantine";

/// Structured quarantine log file, inside [`QUARANTINE_DIR`]: one
/// `quarantined name=<n> dest=<n.k> reason=<free text>` line per
/// quarantined file, append-only.
pub const QUARANTINE_LOG: &str = "log.txt";

/// What [`CheckpointStore::open`] found and did during recovery.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpenReport {
    /// True when no prior manifest existed (first run).
    pub fresh: bool,
    /// Checkpoints that survived verification and are resumable.
    pub restored: usize,
    /// True when the manifest carried a different schema version or
    /// seed and all prior checkpoints were discarded.
    pub identity_mismatch: bool,
    /// Files moved to `quarantine/` (manifest, hash-mismatched or
    /// unmanifested payloads), by original name.
    pub quarantined: Vec<String>,
    /// Manifested names whose payload file was missing on disk.
    pub missing: Vec<String>,
    /// Stray `.*.tmp` files from interrupted writes that were swept.
    pub swept_temps: usize,
}

/// A verified, crash-safe key→bytes store backing every resumable
/// stage and grid cell in the workspace.
#[derive(Debug)]
pub struct CheckpointStore {
    root: PathBuf,
    manifest: Manifest,
    report: OpenReport,
}

impl CheckpointStore {
    /// Opens (creating if needed) the store at `root` for a run with
    /// the given `seed` and source `rev`, performing full recovery as
    /// described in the module docs.
    pub fn open(root: impl Into<PathBuf>, seed: u64, rev: &str) -> Result<Self, CkptError> {
        let root = root.into();
        fs::create_dir_all(&root).map_err(|e| CkptError::io("create store root", &root, e))?;

        let mut report = OpenReport::default();
        sweep_temps(&root, &mut report)?;

        let manifest_path = root.join(MANIFEST_NAME);
        let mut manifest = Manifest::new(seed, rev);
        match fs::read(&manifest_path) {
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                report.fresh = true;
            }
            Err(e) => return Err(CkptError::io("read manifest", &manifest_path, e)),
            Ok(bytes) => match Manifest::parse(&bytes) {
                Err(_) => {
                    // Torn or garbage manifest: nothing on disk can be
                    // trusted. Quarantine everything and start over.
                    quarantine_file(&root, MANIFEST_NAME, "manifest unparseable", &mut report)?;
                    quarantine_all_payloads(&root, "manifest unparseable", &mut report)?;
                }
                Ok(parsed) if parsed.schema != SCHEMA_VERSION || parsed.seed != seed => {
                    report.identity_mismatch = true;
                    quarantine_file(&root, MANIFEST_NAME, "identity mismatch", &mut report)?;
                    quarantine_all_payloads(&root, "identity mismatch", &mut report)?;
                }
                Ok(parsed) => {
                    manifest.failures = parsed.failures;
                    verify_entries(&root, parsed.entries, &mut manifest, &mut report)?;
                    quarantine_unmanifested(&root, &manifest, &mut report)?;
                }
            },
        }

        Ok(Self {
            root,
            manifest,
            report,
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The run seed this store is bound to.
    pub fn seed(&self) -> u64 {
        self.manifest.seed
    }

    /// What recovery found when this store was opened.
    pub fn open_report(&self) -> &OpenReport {
        &self.report
    }

    /// True when a verified checkpoint with this name is present.
    pub fn contains(&self, name: &str) -> bool {
        self.manifest.entries.contains_key(name)
    }

    /// Names of all verified checkpoints, sorted.
    pub fn names(&self) -> Vec<String> {
        self.manifest.entries.keys().cloned().collect()
    }

    /// Reads a checkpoint payload, re-verifying its content hash.
    ///
    /// Returns `Ok(None)` when the checkpoint is absent — including
    /// when the payload was altered *after* open (it is quarantined
    /// and forgotten, so the caller recomputes, matching open-time
    /// corruption handling).
    pub fn get(&mut self, name: &str) -> Result<Option<Vec<u8>>, CkptError> {
        let Some(entry) = self.manifest.entries.get(name) else {
            return Ok(None);
        };
        let path = self.root.join(name);
        let bytes = match fs::read(&path) {
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                self.manifest.entries.remove(name);
                return Ok(None);
            }
            Err(e) => return Err(CkptError::io("read payload", &path, e)),
            Ok(b) => b,
        };
        if bytes.len() as u64 != entry.len || fnv1a64(&bytes) != entry.hash {
            quarantine_file(
                &self.root,
                name,
                "checksum mismatch on read",
                &mut self.report,
            )?;
            self.manifest.entries.remove(name);
            return Ok(None);
        }
        Ok(Some(bytes))
    }

    /// Moves a checkpoint into quarantine with a structured log entry
    /// and drops it from the manifest — for payloads that verified at
    /// the store level but failed a higher-level check (e.g. a
    /// snapshot envelope rejection). A no-op when neither manifest
    /// entry nor payload file exists.
    pub fn quarantine(&mut self, name: &str, reason: &str) -> Result<(), CkptError> {
        let manifested = self.manifest.entries.remove(name).is_some();
        if self.root.join(name).is_file() {
            quarantine_file(&self.root, name, reason, &mut self.report)?;
        }
        if manifested {
            self.persist_manifest()?;
        }
        Ok(())
    }

    /// Deletes checkpoints outright (retention/GC, not corruption):
    /// payload files first, then one manifest update. A crash between
    /// the two leaves manifested-but-missing entries the next open
    /// simply drops, so either crash order recovers cleanly.
    pub fn remove_batch(&mut self, names: &[String]) -> Result<(), CkptError> {
        let mut dirty = false;
        for name in names {
            if self.manifest.entries.remove(name.as_str()).is_none() {
                continue;
            }
            dirty = true;
            let path = self.root.join(name);
            match fs::remove_file(&path) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(CkptError::io("remove payload", &path, e)),
            }
        }
        if dirty {
            self.persist_manifest()?;
        }
        Ok(())
    }

    /// Commits a checkpoint: atomic payload write, then atomic
    /// manifest update. A crash between the two leaves an
    /// unmanifested payload that the next open quarantines.
    pub fn put(&mut self, name: &str, bytes: &[u8]) -> Result<(), CkptError> {
        if !valid_name(name) || name == MANIFEST_NAME || name == QUARANTINE_DIR {
            return Err(CkptError::InvalidName {
                name: name.to_string(),
            });
        }
        write_atomic(&self.root.join(name), bytes)?;
        self.manifest.entries.insert(
            name.to_string(),
            ManifestEntry {
                len: bytes.len() as u64,
                hash: fnv1a64(bytes),
            },
        );
        self.persist_manifest()
    }

    /// Records one more consecutive failure against `name`
    /// (circuit-breaker state), persisted immediately; returns the
    /// new count.
    pub fn record_failure(&mut self, name: &str) -> Result<u32, CkptError> {
        let count = self
            .manifest
            .failures
            .entry(name.to_string())
            .and_modify(|c| *c = c.saturating_add(1))
            .or_insert(1);
        let count = *count;
        self.persist_manifest()?;
        Ok(count)
    }

    /// The recorded consecutive-failure count for `name`.
    pub fn failure_count(&self, name: &str) -> u32 {
        self.manifest.failures.get(name).copied().unwrap_or(0)
    }

    /// Clears failure state for `name` after a success; a no-op (no
    /// manifest write) when nothing was recorded.
    pub fn clear_failures(&mut self, name: &str) -> Result<(), CkptError> {
        if self.manifest.failures.remove(name).is_some() {
            self.persist_manifest()?;
        }
        Ok(())
    }

    fn persist_manifest(&self) -> Result<(), CkptError> {
        write_atomic(&self.root.join(MANIFEST_NAME), &self.manifest.render())
    }
}

/// Removes leftover `.*.tmp` files from interrupted atomic writes.
fn sweep_temps(root: &Path, report: &mut OpenReport) -> Result<(), CkptError> {
    for entry in list_dir(root)? {
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with('.') && name.ends_with(".tmp") {
            fs::remove_file(entry.path())
                .map_err(|e| CkptError::io("sweep temp", entry.path(), e))?;
            report.swept_temps += 1;
        }
    }
    Ok(())
}

/// Length+hash-verifies every manifested payload, keeping survivors
/// in `manifest` and quarantining/dropping the rest.
fn verify_entries(
    root: &Path,
    parsed: BTreeMap<String, ManifestEntry>,
    manifest: &mut Manifest,
    report: &mut OpenReport,
) -> Result<(), CkptError> {
    for (name, entry) in parsed {
        if !valid_name(&name) {
            // A manifest that names files we would never write is
            // hostile or corrupt; skip without touching the path.
            report.missing.push(name);
            continue;
        }
        let path = root.join(&name);
        match fs::read(&path) {
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                report.missing.push(name);
            }
            Err(e) => return Err(CkptError::io("verify payload", &path, e)),
            Ok(bytes) => {
                if bytes.len() as u64 == entry.len && fnv1a64(&bytes) == entry.hash {
                    manifest.entries.insert(name, entry);
                    report.restored += 1;
                } else {
                    quarantine_file(root, &name, "checksum mismatch at open", report)?;
                }
            }
        }
    }
    Ok(())
}

/// Quarantines payload files present on disk but absent from the
/// verified manifest (e.g. a payload whose manifest update was lost).
fn quarantine_unmanifested(
    root: &Path,
    manifest: &Manifest,
    report: &mut OpenReport,
) -> Result<(), CkptError> {
    for entry in list_dir(root)? {
        if !entry.path().is_file() {
            continue;
        }
        let name = entry.file_name().to_string_lossy().into_owned();
        if name == MANIFEST_NAME || name.starts_with('.') {
            continue;
        }
        if !manifest.entries.contains_key(&name) {
            quarantine_file(root, &name, "unmanifested payload", report)?;
        }
    }
    Ok(())
}

/// Moves every payload file (not the manifest, not temp files) into
/// quarantine — used when the manifest itself cannot be trusted.
fn quarantine_all_payloads(
    root: &Path,
    reason: &str,
    report: &mut OpenReport,
) -> Result<(), CkptError> {
    for entry in list_dir(root)? {
        if !entry.path().is_file() {
            continue;
        }
        let name = entry.file_name().to_string_lossy().into_owned();
        if name == MANIFEST_NAME || name.starts_with('.') {
            continue;
        }
        quarantine_file(root, &name, reason, report)?;
    }
    Ok(())
}

/// Moves `root/<name>` to `quarantine/<name>.<n>` (first free `n`),
/// appends a structured `quarantined name=… dest=… reason=…` line to
/// the quarantine log, and records the move in the report. Quarantine
/// moves are recovery actions, not durable artifact writes — they do
/// not tick the kill-point counter, and the chaos harness excludes
/// `quarantine/` from its byte-equality comparison.
fn quarantine_file(
    root: &Path,
    name: &str,
    reason: &str,
    report: &mut OpenReport,
) -> Result<(), CkptError> {
    let qdir = root.join(QUARANTINE_DIR);
    fs::create_dir_all(&qdir).map_err(|e| CkptError::io("create quarantine", &qdir, e))?;
    let src = root.join(name);
    for n in 0u32..10_000 {
        let dst = qdir.join(format!("{name}.{n}"));
        if dst.exists() {
            continue;
        }
        fs::rename(&src, &dst).map_err(|e| CkptError::io("quarantine file", &src, e))?;
        log_quarantine(&qdir, name, &format!("{name}.{n}"), reason)?;
        report.quarantined.push(name.to_string());
        return Ok(());
    }
    Err(CkptError::io(
        "quarantine file",
        &src,
        std::io::Error::other("quarantine slots exhausted"),
    ))
}

/// Appends one structured entry to `quarantine/log.txt`. A plain
/// append (not `write_atomic`): the log is forensic, lives inside the
/// quarantine directory the chaos harness excludes, and must not tick
/// the kill-point counter. No wall-clock timestamp — ordering is the
/// line order, which the determinism contract keeps reproducible.
fn log_quarantine(qdir: &Path, name: &str, dest: &str, reason: &str) -> Result<(), CkptError> {
    use std::io::Write as _;
    let path = qdir.join(QUARANTINE_LOG);
    let mut f = fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .map_err(|e| CkptError::io("open quarantine log", &path, e))?;
    writeln!(f, "quarantined name={name} dest={dest} reason={reason}")
        .map_err(|e| CkptError::io("append quarantine log", &path, e))
}

fn list_dir(root: &Path) -> Result<Vec<fs::DirEntry>, CkptError> {
    let iter = fs::read_dir(root).map_err(|e| CkptError::io("list store", root, e))?;
    let mut out = Vec::new();
    for entry in iter {
        out.push(entry.map_err(|e| CkptError::io("list store", root, e))?);
    }
    // Deterministic order regardless of filesystem enumeration.
    out.sort_by_key(fs::DirEntry::file_name);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("thermal-ckpt-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fresh_open_put_get_reopen() {
        let root = scratch("fresh");
        let mut store = CheckpointStore::open(&root, 42, "rev1").unwrap();
        assert!(store.open_report().fresh);
        assert!(!store.contains("stage-a"));
        store.put("stage-a", b"alpha").unwrap();
        store.put("stage-b", b"beta").unwrap();
        assert_eq!(
            store.get("stage-a").unwrap().as_deref(),
            Some(&b"alpha"[..])
        );

        let mut reopened = CheckpointStore::open(&root, 42, "rev1").unwrap();
        let report = reopened.open_report().clone();
        assert!(!report.fresh);
        assert_eq!(report.restored, 2);
        assert!(report.quarantined.is_empty());
        assert_eq!(
            reopened.get("stage-b").unwrap().as_deref(),
            Some(&b"beta"[..])
        );
        assert_eq!(
            reopened.names(),
            vec!["stage-a".to_string(), "stage-b".into()]
        );
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupted_payload_is_quarantined_on_open() {
        let root = scratch("corrupt");
        let mut store = CheckpointStore::open(&root, 1, "r").unwrap();
        store.put("cell", b"good bytes").unwrap();
        drop(store);
        fs::write(root.join("cell"), b"bad bytes!").unwrap();

        let store = CheckpointStore::open(&root, 1, "r").unwrap();
        assert!(!store.contains("cell"));
        assert_eq!(store.open_report().quarantined, vec!["cell".to_string()]);
        assert!(root.join(QUARANTINE_DIR).join("cell.0").exists());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn truncated_payload_is_quarantined_on_open() {
        let root = scratch("trunc");
        let mut store = CheckpointStore::open(&root, 1, "r").unwrap();
        store.put("cell", b"0123456789").unwrap();
        drop(store);
        fs::write(root.join("cell"), b"01234").unwrap();
        let store = CheckpointStore::open(&root, 1, "r").unwrap();
        assert!(!store.contains("cell"));
        assert_eq!(store.open_report().quarantined, vec!["cell".to_string()]);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn torn_manifest_quarantines_everything() {
        let root = scratch("torn-manifest");
        let mut store = CheckpointStore::open(&root, 1, "r").unwrap();
        store.put("a", b"1").unwrap();
        store.put("b", b"2").unwrap();
        drop(store);
        fs::write(root.join(MANIFEST_NAME), b"thermal-ckpt-manifest v1\nsch").unwrap();

        let store = CheckpointStore::open(&root, 1, "r").unwrap();
        assert_eq!(store.names().len(), 0);
        let mut q = store.open_report().quarantined.clone();
        q.sort();
        assert_eq!(q, vec!["a".to_string(), "b".into(), MANIFEST_NAME.into()]);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn seed_mismatch_discards_all() {
        let root = scratch("seed-mismatch");
        let mut store = CheckpointStore::open(&root, 1, "r").unwrap();
        store.put("a", b"1").unwrap();
        drop(store);
        let store = CheckpointStore::open(&root, 2, "r").unwrap();
        assert!(store.open_report().identity_mismatch);
        assert!(!store.contains("a"));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn unmanifested_payload_is_quarantined() {
        let root = scratch("orphan");
        let mut store = CheckpointStore::open(&root, 1, "r").unwrap();
        store.put("real", b"1").unwrap();
        drop(store);
        fs::write(root.join("orphan"), b"committed but never manifested").unwrap();
        let store = CheckpointStore::open(&root, 1, "r").unwrap();
        assert!(store.contains("real"));
        assert_eq!(store.open_report().quarantined, vec!["orphan".to_string()]);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn stray_temps_are_swept() {
        let root = scratch("temps");
        drop(CheckpointStore::open(&root, 1, "r").unwrap());
        fs::write(root.join(".cell.tmp"), b"half-written").unwrap();
        let store = CheckpointStore::open(&root, 1, "r").unwrap();
        assert_eq!(store.open_report().swept_temps, 1);
        assert!(!root.join(".cell.tmp").exists());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn get_requarantines_late_corruption() {
        let root = scratch("late");
        let mut store = CheckpointStore::open(&root, 1, "r").unwrap();
        store.put("cell", b"good").unwrap();
        fs::write(root.join("cell"), b"evil").unwrap();
        assert_eq!(store.get("cell").unwrap(), None);
        assert!(!store.contains("cell"));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn failure_counts_persist_across_reopen() {
        let root = scratch("failures");
        let mut store = CheckpointStore::open(&root, 1, "r").unwrap();
        assert_eq!(store.record_failure("flaky").unwrap(), 1);
        assert_eq!(store.record_failure("flaky").unwrap(), 2);
        drop(store);
        let mut store = CheckpointStore::open(&root, 1, "r").unwrap();
        assert_eq!(store.failure_count("flaky"), 2);
        store.clear_failures("flaky").unwrap();
        drop(store);
        let store = CheckpointStore::open(&root, 1, "r").unwrap();
        assert_eq!(store.failure_count("flaky"), 0);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn invalid_names_are_rejected() {
        let root = scratch("names");
        let mut store = CheckpointStore::open(&root, 1, "r").unwrap();
        for bad in ["", ".dot", "a/b", MANIFEST_NAME, QUARANTINE_DIR] {
            assert!(store.put(bad, b"x").is_err(), "{bad:?} must be rejected");
        }
        let _ = fs::remove_dir_all(&root);
    }
}
