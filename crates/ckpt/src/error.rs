//! Typed errors for the checkpointing layer.

use std::fmt;
use std::path::PathBuf;

/// Everything that can go wrong while persisting or restoring
/// checkpoints.
///
/// Corruption (hash mismatch, truncation, unparseable manifest) is
/// deliberately *not* an error at [`crate::CheckpointStore::open`]
/// time — corrupt state is quarantined and reported via
/// [`crate::OpenReport`] so a resumed run recomputes instead of
/// aborting. `CkptError` covers the cases the caller must handle:
/// I/O failures, invalid names, and payloads that fail verification
/// on explicit read.
#[derive(Debug)]
pub enum CkptError {
    /// An underlying filesystem operation failed.
    Io {
        /// What the store was doing when the failure happened.
        context: &'static str,
        /// Path involved in the failed operation.
        path: PathBuf,
        /// The operating-system error.
        source: std::io::Error,
    },
    /// A checkpoint name contains characters the manifest format
    /// cannot represent safely.
    InvalidName {
        /// The offending name.
        name: String,
    },
    /// A payload read back from disk does not match its manifest hash
    /// (detected on explicit [`crate::CheckpointStore::get`]).
    Corrupt {
        /// Checkpoint name whose payload failed verification.
        name: String,
    },
    /// A checkpoint payload could not be decoded into the expected
    /// record shape.
    Decode {
        /// What the decoder was reading.
        context: &'static str,
        /// Human-readable description of the malformation.
        detail: String,
    },
    /// A supervision policy (cell runner or circuit breaker) was
    /// configured inconsistently.
    InvalidPolicy {
        /// Explanation of the problem.
        reason: &'static str,
    },
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io {
                context,
                path,
                source,
            } => {
                write!(
                    f,
                    "checkpoint I/O failed ({context}) at {}: {source}",
                    path.display()
                )
            }
            Self::InvalidName { name } => {
                write!(
                    f,
                    "invalid checkpoint name {name:?}: use [A-Za-z0-9._-]+ with no leading dot"
                )
            }
            Self::Corrupt { name } => {
                write!(f, "checkpoint {name:?} failed content-hash verification")
            }
            Self::Decode { context, detail } => {
                write!(f, "checkpoint decode failed ({context}): {detail}")
            }
            Self::InvalidPolicy { reason } => {
                write!(f, "invalid supervision policy: {reason}")
            }
        }
    }
}

impl std::error::Error for CkptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl CkptError {
    /// Wraps an I/O error with the operation and path it interrupted.
    pub fn io(context: &'static str, path: impl Into<PathBuf>, source: std::io::Error) -> Self {
        Self::Io {
            context,
            path: path.into(),
            source,
        }
    }

    /// Builds a decode error from any displayable detail.
    pub fn decode(context: &'static str, detail: impl fmt::Display) -> Self {
        Self::Decode {
            context,
            detail: detail.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CkptError::io("rename", "/tmp/x", std::io::Error::other("boom"));
        let msg = e.to_string();
        assert!(msg.contains("rename") && msg.contains("/tmp/x") && msg.contains("boom"));
        assert!(CkptError::InvalidName {
            name: ".hidden".into()
        }
        .to_string()
        .contains(".hidden"));
        assert!(CkptError::Corrupt {
            name: "stage".into()
        }
        .to_string()
        .contains("content-hash"));
        assert!(CkptError::decode("manifest", "bad header")
            .to_string()
            .contains("bad header"));
    }

    #[test]
    fn io_error_exposes_source() {
        use std::error::Error as _;
        let e = CkptError::io("write", "/tmp/y", std::io::Error::other("disk full"));
        assert!(e.source().is_some());
        assert!(CkptError::Corrupt { name: "n".into() }.source().is_none());
    }
}
