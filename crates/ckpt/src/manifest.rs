//! The checkpoint manifest: the store's single source of truth for
//! which payloads exist, their sizes and content hashes, and the run
//! identity (schema version, seed, source revision) they belong to.
//!
//! # Format (plain text, one entry per line)
//!
//! ```text
//! thermal-ckpt-manifest v1
//! schema=1
//! seed=42
//! rev=5dec5a1
//! entry cluster.ck 412 1f2e3d4c5b6a7988
//! entry select.ck 97 00ffeeddccbbaa99
//! fail flaky-cell 2
//! ```
//!
//! * `entry NAME LEN FNV64HEX` — a committed payload: byte length and
//!   FNV-1a 64 content hash. Entries are rendered sorted by name so
//!   the manifest bytes are a pure function of its contents (the
//!   chaos harness compares manifests byte-for-byte).
//! * `fail NAME COUNT` — circuit-breaker state: consecutive failures
//!   recorded against a cell, persisted so a crash-looping cell is
//!   recognized across restarts.
//!
//! # Schema versioning policy
//!
//! [`SCHEMA_VERSION`] must be bumped whenever any persisted byte
//! format changes: the manifest grammar itself, a payload codec in
//! `thermal-core`/`thermal-bench`, or hash/width choices. A store
//! whose manifest carries a different schema (or seed) than the
//! opening run discards all checkpoints — recomputation is always
//! safe, deserializing across formats never is.

use std::collections::BTreeMap;

use crate::error::CkptError;

/// Version of every on-disk format this crate reads or writes. Bump
/// on any change to the manifest grammar or payload codecs.
pub const SCHEMA_VERSION: u32 = 1;

/// Magic first line of a manifest file.
const MAGIC: &str = "thermal-ckpt-manifest v1";

/// One committed payload's identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Payload byte length.
    pub len: u64,
    /// FNV-1a 64 hash of the payload bytes.
    pub hash: u64,
}

/// Parsed manifest state: run identity, committed entries, and
/// circuit-breaker failure counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Schema version the store was written with.
    pub schema: u32,
    /// Run seed the checkpoints belong to.
    pub seed: u64,
    /// Source revision recorded at store creation (informational).
    pub rev: String,
    /// Committed payloads by name.
    pub entries: BTreeMap<String, ManifestEntry>,
    /// Consecutive-failure counts by cell name.
    pub failures: BTreeMap<String, u32>,
}

impl Manifest {
    /// A fresh manifest for the given run identity.
    pub fn new(seed: u64, rev: &str) -> Self {
        Self {
            schema: SCHEMA_VERSION,
            seed,
            rev: rev.to_string(),
            entries: BTreeMap::new(),
            failures: BTreeMap::new(),
        }
    }

    /// Renders the canonical byte form (sorted entries, then sorted
    /// failure lines).
    pub fn render(&self) -> Vec<u8> {
        let mut out = String::new();
        out.push_str(MAGIC);
        out.push('\n');
        out.push_str(&format!("schema={}\n", self.schema));
        out.push_str(&format!("seed={}\n", self.seed));
        out.push_str(&format!("rev={}\n", self.rev));
        for (name, e) in &self.entries {
            out.push_str(&format!("entry {name} {} {:016x}\n", e.len, e.hash));
        }
        for (name, count) in &self.failures {
            out.push_str(&format!("fail {name} {count}\n"));
        }
        out.into_bytes()
    }

    /// Parses a manifest; any malformation is a typed error (the
    /// store treats it as corruption and quarantines).
    pub fn parse(bytes: &[u8]) -> Result<Self, CkptError> {
        let text = std::str::from_utf8(bytes)
            .map_err(|e| CkptError::decode("manifest", format!("not UTF-8: {e}")))?;
        let mut lines = text.lines();
        match lines.next() {
            Some(l) if l == MAGIC => {}
            other => {
                return Err(CkptError::decode(
                    "manifest",
                    format!("bad magic line {other:?}"),
                ))
            }
        }
        let schema = header_field(lines.next(), "schema")?
            .parse::<u32>()
            .map_err(|e| CkptError::decode("manifest", format!("bad schema: {e}")))?;
        let seed = header_field(lines.next(), "seed")?
            .parse::<u64>()
            .map_err(|e| CkptError::decode("manifest", format!("bad seed: {e}")))?;
        let rev = header_field(lines.next(), "rev")?.to_string();

        let mut entries = BTreeMap::new();
        let mut failures = BTreeMap::new();
        for line in lines {
            let mut parts = line.split(' ');
            match parts.next() {
                Some("entry") => {
                    let (name, len, hash) = (parts.next(), parts.next(), parts.next());
                    let (Some(name), Some(len), Some(hash), None) = (name, len, hash, parts.next())
                    else {
                        return Err(CkptError::decode(
                            "manifest",
                            format!("bad entry line {line:?}"),
                        ));
                    };
                    let len = len.parse::<u64>().map_err(|e| {
                        CkptError::decode("manifest", format!("bad entry len in {line:?}: {e}"))
                    })?;
                    let hash = u64::from_str_radix(hash, 16).map_err(|e| {
                        CkptError::decode("manifest", format!("bad entry hash in {line:?}: {e}"))
                    })?;
                    entries.insert(name.to_string(), ManifestEntry { len, hash });
                }
                Some("fail") => {
                    let (Some(name), Some(count), None) =
                        (parts.next(), parts.next(), parts.next())
                    else {
                        return Err(CkptError::decode(
                            "manifest",
                            format!("bad fail line {line:?}"),
                        ));
                    };
                    let count = count.parse::<u32>().map_err(|e| {
                        CkptError::decode("manifest", format!("bad fail count in {line:?}: {e}"))
                    })?;
                    failures.insert(name.to_string(), count);
                }
                _ => {
                    return Err(CkptError::decode(
                        "manifest",
                        format!("unknown line {line:?}"),
                    ))
                }
            }
        }
        Ok(Self {
            schema,
            seed,
            rev,
            entries,
            failures,
        })
    }
}

/// Extracts `key=` from a header line, erroring on absence.
fn header_field<'a>(line: Option<&'a str>, key: &str) -> Result<&'a str, CkptError> {
    let line =
        line.ok_or_else(|| CkptError::decode("manifest", format!("missing {key} header")))?;
    line.strip_prefix(key)
        .and_then(|rest| rest.strip_prefix('='))
        .ok_or_else(|| {
            CkptError::decode(
                "manifest",
                format!("expected {key}= header, found {line:?}"),
            )
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_roundtrip() {
        let mut m = Manifest::new(42, "abc123");
        m.entries.insert(
            "cluster.ck".into(),
            ManifestEntry {
                len: 412,
                hash: 0x1f2e_3d4c_5b6a_7988,
            },
        );
        m.entries
            .insert("a-first.ck".into(), ManifestEntry { len: 7, hash: 1 });
        m.failures.insert("flaky".into(), 2);
        let bytes = m.render();
        let back = Manifest::parse(&bytes).unwrap();
        assert_eq!(back, m);
        // Sorted rendering: a-first before cluster.
        let text = String::from_utf8(bytes).unwrap();
        let a = text.find("a-first.ck").unwrap();
        let c = text.find("cluster.ck").unwrap();
        assert!(a < c);
    }

    #[test]
    fn render_is_canonical() {
        let mut m1 = Manifest::new(7, "r");
        m1.entries
            .insert("b".into(), ManifestEntry { len: 1, hash: 2 });
        m1.entries
            .insert("a".into(), ManifestEntry { len: 3, hash: 4 });
        let mut m2 = Manifest::new(7, "r");
        m2.entries
            .insert("a".into(), ManifestEntry { len: 3, hash: 4 });
        m2.entries
            .insert("b".into(), ManifestEntry { len: 1, hash: 2 });
        assert_eq!(m1.render(), m2.render());
    }

    #[test]
    fn malformed_manifests_are_rejected() {
        assert!(Manifest::parse(b"").is_err());
        assert!(Manifest::parse(b"wrong magic\n").is_err());
        assert!(Manifest::parse(b"thermal-ckpt-manifest v1\nschema=x\n").is_err());
        let ok = Manifest::new(1, "r").render();
        assert!(Manifest::parse(&ok).is_ok());
        // Truncate mid-file: drop the rev header.
        let truncated = b"thermal-ckpt-manifest v1\nschema=1\nseed=1\n";
        assert!(Manifest::parse(truncated).is_err());
        // Garbage trailing line.
        let mut with_garbage = ok.clone();
        with_garbage.extend_from_slice(b"garbage line\n");
        assert!(Manifest::parse(&with_garbage).is_err());
        // Bad entry arity.
        let mut bad_entry = ok;
        bad_entry.extend_from_slice(b"entry name 12\n");
        assert!(Manifest::parse(&bad_entry).is_err());
    }
}
