//! Hand-rolled text codec for checkpoint payloads.
//!
//! The vendored serde shim has no serializer, so every checkpoint is
//! encoded as a small line-oriented [`Record`]: a tag line followed
//! by `key value` lines. The format is designed for *bit-exact*
//! round-trips and stable bytes:
//!
//! * `f64` values are encoded as the hex of [`f64::to_bits`]
//!   ([`put_f64`]/[`Record::get_f64`]) — no decimal formatting, no
//!   round-trip drift, NaN-payload preserving,
//! * keys are emitted in insertion order and the encoder is the only
//!   producer, so identical inputs yield identical bytes (the
//!   property the chaos harness' byte-equality assertion rests on),
//! * strings are percent-escaped only for the three characters the
//!   format reserves (`%`, newline, space), keeping payloads
//!   human-inspectable.

use std::fmt::Write as _;

use crate::error::CkptError;

/// A tagged, ordered list of `key value` pairs — the payload shape
/// every checkpoint in the workspace encodes to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    tag: String,
    fields: Vec<(String, String)>,
}

impl Record {
    /// A new empty record with the given tag (format identifier).
    pub fn new(tag: &str) -> Self {
        Self {
            tag: tag.to_string(),
            fields: Vec::new(),
        }
    }

    /// The record's tag line.
    pub fn tag(&self) -> &str {
        &self.tag
    }

    /// Appends a string field (value escaped at insertion).
    pub fn put(&mut self, key: &str, value: &str) -> &mut Self {
        self.fields.push((key.to_string(), escape(value)));
        self
    }

    /// Appends an unsigned integer field.
    pub fn put_u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.put(key, &value.to_string())
    }

    /// Appends a usize field.
    pub fn put_usize(&mut self, key: &str, value: usize) -> &mut Self {
        self.put(key, &value.to_string())
    }

    /// Appends a signed integer field (timestamps in minutes).
    pub fn put_i64(&mut self, key: &str, value: i64) -> &mut Self {
        self.put(key, &value.to_string())
    }

    /// Appends a slice of `i64`s, comma-joined.
    pub fn put_i64_slice(&mut self, key: &str, values: &[i64]) -> &mut Self {
        let joined = values
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(",");
        self.put(key, &joined)
    }

    /// Appends a slice of `u64`s, comma-joined.
    pub fn put_u64_slice(&mut self, key: &str, values: &[u64]) -> &mut Self {
        let joined = values
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(",");
        self.put(key, &joined)
    }

    /// Appends an `f64` field, bit-exact (hex of `to_bits`).
    pub fn put_f64(&mut self, key: &str, value: f64) -> &mut Self {
        self.put(key, &f64_to_hex(value))
    }

    /// Appends a slice of `f64`s, bit-exact, space-joined.
    pub fn put_f64_slice(&mut self, key: &str, values: &[f64]) -> &mut Self {
        let joined = values
            .iter()
            .map(|&v| f64_to_hex(v))
            .collect::<Vec<_>>()
            .join(",");
        self.put(key, &joined)
    }

    /// Appends a slice of usizes, comma-joined.
    pub fn put_usize_slice(&mut self, key: &str, values: &[usize]) -> &mut Self {
        let joined = values
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(",");
        self.put(key, &joined)
    }

    /// Appends a list of strings, each percent-escaped, comma-joined.
    pub fn put_str_list(&mut self, key: &str, values: &[String]) -> &mut Self {
        let joined = values
            .iter()
            .map(|s| escape(s))
            .collect::<Vec<_>>()
            .join(",");
        self.fields.push((key.to_string(), joined));
        self
    }

    /// First value for `key`, if present (unescaped raw form).
    fn raw(&self, key: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Required string field (unescaped).
    pub fn get(&self, key: &str) -> Result<String, CkptError> {
        let raw = self
            .raw(key)
            .ok_or_else(|| CkptError::decode("record", format!("missing field {key:?}")))?;
        unescape(raw).map_err(|e| CkptError::decode("record", format!("field {key:?}: {e}")))
    }

    /// Required `u64` field.
    pub fn get_u64(&self, key: &str) -> Result<u64, CkptError> {
        self.get(key)?
            .parse()
            .map_err(|e| CkptError::decode("record", format!("field {key:?} not a u64: {e}")))
    }

    /// Required `usize` field.
    pub fn get_usize(&self, key: &str) -> Result<usize, CkptError> {
        self.get(key)?
            .parse()
            .map_err(|e| CkptError::decode("record", format!("field {key:?} not a usize: {e}")))
    }

    /// Required `i64` field.
    pub fn get_i64(&self, key: &str) -> Result<i64, CkptError> {
        self.get(key)?
            .parse()
            .map_err(|e| CkptError::decode("record", format!("field {key:?} not an i64: {e}")))
    }

    /// Required `i64`-slice field.
    pub fn get_i64_slice(&self, key: &str) -> Result<Vec<i64>, CkptError> {
        let raw = self.get(key)?;
        if raw.is_empty() {
            return Ok(Vec::new());
        }
        raw.split(',')
            .map(|tok| {
                tok.parse().map_err(|e| {
                    CkptError::decode("record", format!("field {key:?} element not an i64: {e}"))
                })
            })
            .collect()
    }

    /// Required `u64`-slice field.
    pub fn get_u64_slice(&self, key: &str) -> Result<Vec<u64>, CkptError> {
        let raw = self.get(key)?;
        if raw.is_empty() {
            return Ok(Vec::new());
        }
        raw.split(',')
            .map(|tok| {
                tok.parse().map_err(|e| {
                    CkptError::decode("record", format!("field {key:?} element not a u64: {e}"))
                })
            })
            .collect()
    }

    /// Required bit-exact `f64` field.
    pub fn get_f64(&self, key: &str) -> Result<f64, CkptError> {
        f64_from_hex(&self.get(key)?)
            .map_err(|e| CkptError::decode("record", format!("field {key:?}: {e}")))
    }

    /// Required `f64`-slice field.
    pub fn get_f64_slice(&self, key: &str) -> Result<Vec<f64>, CkptError> {
        let raw = self.get(key)?;
        if raw.is_empty() {
            return Ok(Vec::new());
        }
        raw.split(',')
            .map(|tok| {
                f64_from_hex(tok)
                    .map_err(|e| CkptError::decode("record", format!("field {key:?}: {e}")))
            })
            .collect()
    }

    /// Required usize-slice field.
    pub fn get_usize_slice(&self, key: &str) -> Result<Vec<usize>, CkptError> {
        let raw = self.get(key)?;
        if raw.is_empty() {
            return Ok(Vec::new());
        }
        raw.split(',')
            .map(|tok| {
                tok.parse().map_err(|e| {
                    CkptError::decode("record", format!("field {key:?} element not a usize: {e}"))
                })
            })
            .collect()
    }

    /// Required string-list field (each element unescaped).
    pub fn get_str_list(&self, key: &str) -> Result<Vec<String>, CkptError> {
        let raw = self
            .raw(key)
            .ok_or_else(|| CkptError::decode("record", format!("missing field {key:?}")))?;
        if raw.is_empty() {
            return Ok(Vec::new());
        }
        raw.split(',')
            .map(|tok| {
                unescape(tok)
                    .map_err(|e| CkptError::decode("record", format!("field {key:?}: {e}")))
            })
            .collect()
    }

    /// Encodes the record to its canonical byte form.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = String::new();
        let _ = writeln!(out, "record {}", escape(&self.tag));
        for (k, v) in &self.fields {
            // String fields were escaped at insertion; scalar fields
            // never contain reserved characters. Keys are validated
            // by construction (crate-internal callers).
            let _ = writeln!(out, "{} {}", escape(k), v);
        }
        out.into_bytes()
    }

    /// Decodes a record from bytes, verifying the expected tag.
    pub fn decode(bytes: &[u8], expect_tag: &str) -> Result<Self, CkptError> {
        let text = std::str::from_utf8(bytes)
            .map_err(|e| CkptError::decode("record", format!("not UTF-8: {e}")))?;
        let mut lines = text.lines();
        let header = lines
            .next()
            .ok_or_else(|| CkptError::decode("record", "empty payload"))?;
        let tag_raw = header
            .strip_prefix("record ")
            .ok_or_else(|| CkptError::decode("record", format!("bad header {header:?}")))?;
        let tag = unescape(tag_raw).map_err(|e| CkptError::decode("record", e))?;
        if tag != expect_tag {
            return Err(CkptError::decode(
                "record",
                format!("tag mismatch: found {tag:?}, expected {expect_tag:?}"),
            ));
        }
        let mut fields = Vec::new();
        for line in lines {
            let (k, v) = line
                .split_once(' ')
                .ok_or_else(|| CkptError::decode("record", format!("bad field line {line:?}")))?;
            let key = unescape(k).map_err(|e| CkptError::decode("record", e))?;
            fields.push((key, v.to_string()));
        }
        Ok(Self { tag, fields })
    }
}

/// Hex of the IEEE-754 bits of `v` — the bit-exact wire form.
pub fn f64_to_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

/// Inverse of [`f64_to_hex`].
pub fn f64_from_hex(hex: &str) -> Result<f64, String> {
    let bits =
        u64::from_str_radix(hex.trim(), 16).map_err(|e| format!("bad f64 bits {hex:?}: {e}"))?;
    Ok(f64::from_bits(bits))
}

/// Percent-escapes the characters the record format reserves.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '%' => out.push_str("%25"),
            ' ' => out.push_str("%20"),
            '\n' => out.push_str("%0a"),
            ',' => out.push_str("%2c"),
            _ => out.push(c),
        }
    }
    out
}

/// Inverse of [`escape`].
fn unescape(s: &str) -> Result<String, String> {
    let bytes = s.as_bytes();
    let mut out = String::with_capacity(s.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes
                .get(i + 1..i + 3)
                .ok_or_else(|| format!("truncated escape in {s:?}"))?;
            let hex = std::str::from_utf8(hex).map_err(|_| format!("bad escape in {s:?}"))?;
            let code = u8::from_str_radix(hex, 16).map_err(|_| format!("bad escape in {s:?}"))?;
            out.push(char::from(code));
            i += 3;
        } else {
            // Input is valid UTF-8; walk one scalar at a time.
            let ch = s[i..]
                .chars()
                .next()
                .ok_or_else(|| format!("bad offset in {s:?}"))?;
            out.push(ch);
            i += ch.len_utf8();
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut r = Record::new("test-v1");
        r.put("name", "cell a,b %weird")
            .put_u64("seed", u64::MAX)
            .put_usize("n", 42)
            .put_f64("x", -0.1)
            .put_f64("nan", f64::NAN);
        let bytes = r.encode();
        let d = Record::decode(&bytes, "test-v1").unwrap();
        assert_eq!(d.get("name").unwrap(), "cell a,b %weird");
        assert_eq!(d.get_u64("seed").unwrap(), u64::MAX);
        assert_eq!(d.get_usize("n").unwrap(), 42);
        assert_eq!(d.get_f64("x").unwrap().to_bits(), (-0.1f64).to_bits());
        assert!(d.get_f64("nan").unwrap().is_nan());
    }

    #[test]
    fn slice_roundtrip_including_empty() {
        let mut r = Record::new("s");
        r.put_f64_slice("vals", &[1.5, -2.25, f64::INFINITY])
            .put_f64_slice("none", &[])
            .put_usize_slice("idx", &[3, 0, 7])
            .put_usize_slice("noidx", &[])
            .put_str_list("names", &["t01".into(), "has space".into(), "c,d".into()])
            .put_str_list("nonames", &[]);
        let d = Record::decode(&r.encode(), "s").unwrap();
        assert_eq!(
            d.get_f64_slice("vals").unwrap(),
            vec![1.5, -2.25, f64::INFINITY]
        );
        assert!(d.get_f64_slice("none").unwrap().is_empty());
        assert_eq!(d.get_usize_slice("idx").unwrap(), vec![3, 0, 7]);
        assert!(d.get_usize_slice("noidx").unwrap().is_empty());
        assert_eq!(
            d.get_str_list("names").unwrap(),
            vec!["t01".to_string(), "has space".into(), "c,d".into()]
        );
        assert!(d.get_str_list("nonames").unwrap().is_empty());
    }

    #[test]
    fn encode_is_deterministic() {
        let build = || {
            let mut r = Record::new("det");
            r.put_f64("a", 0.1 + 0.2).put_usize("b", 9);
            r.encode()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn malformed_payloads_are_typed_errors() {
        assert!(Record::decode(b"", "t").is_err());
        assert!(Record::decode(b"not-a-record\n", "t").is_err());
        assert!(Record::decode(b"record other\n", "t").is_err());
        assert!(Record::decode(b"record t\nbadline\n", "t").is_err());
        assert!(Record::decode(&[0xff, 0xfe], "t").is_err());
        let r = Record::decode(b"record t\nk v\n", "t").unwrap();
        assert!(r.get("missing").is_err());
        assert!(r.get_u64("k").is_err());
        assert!(r.get_f64("k").is_err());
    }

    #[test]
    fn f64_hex_is_bit_exact() {
        for v in [
            0.0,
            -0.0,
            1.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            f64::NEG_INFINITY,
        ] {
            let back = f64_from_hex(&f64_to_hex(v)).unwrap();
            assert_eq!(back.to_bits(), v.to_bits());
        }
    }
}
