//! Versioned, checksummed snapshots of live serving state.
//!
//! The [`crate::codec::Record`] format gives bit-exact payload bytes;
//! this module wraps it in a self-verifying *envelope* and a small
//! trait so every piece of streaming/fleet runtime state (queues,
//! reorder buffers, health machines, RLS estimators, shard ladders)
//! can be captured at a slot boundary and restored after a crash:
//!
//! ```text
//! thermal-snapshot v1 <tag> <version> <len> <fnv64-hex>
//! record <tag>
//! <key> <value>
//! ...
//! ```
//!
//! The header carries the schema tag, the per-type version, the body
//! length, and the FNV-1a 64 hash of the body, so a truncated or
//! bit-flipped snapshot is *detected before parsing* — [`unseal`]
//! refuses it with a typed error and the store helpers quarantine it
//! (with a structured log entry) and fall back to the previous good
//! snapshot. Restore is therefore never fed garbage.
//!
//! # The restore discipline
//!
//! [`Snapshot::restore`] mutates state in place (live state usually
//! needs construction context — a fitted model, a replay trace — that
//! a from-bytes constructor cannot supply). Implementations must
//! parse **every** field into locals before assigning any of them, so
//! a malformed record leaves the receiver untouched. The envelope
//! checksum makes post-checksum malformation an anomaly, not a crash
//! artifact, so the store helpers treat it like corruption: quarantine
//! and fall back.
//!
//! # Determinism
//!
//! Capture must be a pure function of logical state: insertion-ordered
//! fields, hex-of-bits floats, and **no wall-clock timestamps** — any
//! notion of "when" inside a snapshot comes from the simulated clock
//! that is itself part of the captured state. (The `ambient-authority`
//! lint keeps `SystemTime`/`Instant` out of this crate.) That is what
//! lets the chaos harness assert that a killed-and-resumed soak writes
//! a report byte-identical to an uninterrupted one.

use crate::atomic::fnv1a64;
use crate::codec::Record;
use crate::error::CkptError;
use crate::store::CheckpointStore;

/// Magic + format version of the envelope header line.
pub const SNAPSHOT_MAGIC: &str = "thermal-snapshot v1";

/// State that can be captured into a [`Record`] and restored from one.
///
/// `TAG` identifies the state's schema (one tag per type), `VERSION`
/// its layout revision; both are verified by [`unseal`] before any
/// field is read. See the module docs for the all-or-nothing restore
/// discipline implementations must follow.
pub trait Snapshot {
    /// Schema tag naming this state's record layout.
    const TAG: &'static str;
    /// Layout revision; bump on any incompatible field change.
    const VERSION: u32;

    /// Writes every logical field into `rec` (insertion order fixed).
    fn capture(&self, rec: &mut Record);

    /// Restores state from a record produced by [`Snapshot::capture`].
    ///
    /// # Errors
    ///
    /// Returns [`CkptError::Decode`] when a field is missing,
    /// malformed, or inconsistent with this receiver's construction
    /// parameters; the receiver is left unchanged in that case.
    fn restore(&mut self, rec: &Record) -> Result<(), CkptError>;
}

/// Encodes `state` to envelope bytes (header + record body).
pub fn snapshot_bytes<S: Snapshot>(state: &S) -> Vec<u8> {
    let mut rec = Record::new(S::TAG);
    state.capture(&mut rec);
    seal(S::TAG, S::VERSION, &rec)
}

/// Verifies envelope bytes and restores `state` from them.
///
/// # Errors
///
/// Returns [`CkptError::Decode`] on any envelope, checksum, tag,
/// version, or field failure; `state` is unchanged on error.
pub fn restore_from<S: Snapshot>(state: &mut S, bytes: &[u8]) -> Result<(), CkptError> {
    let rec = unseal(bytes, S::TAG, S::VERSION)?;
    state.restore(&rec)
}

/// Wraps an encoded record in the checksummed snapshot envelope.
pub fn seal(tag: &str, version: u32, rec: &Record) -> Vec<u8> {
    let body = rec.encode();
    let mut out = format!(
        "{SNAPSHOT_MAGIC} {tag} {version} {} {:016x}\n",
        body.len(),
        fnv1a64(&body)
    )
    .into_bytes();
    out.extend_from_slice(&body);
    out
}

/// Verifies the envelope (magic, tag, version, length, checksum) and
/// decodes the record body. The checksum is checked *before* the body
/// is parsed, so torn or bit-flipped snapshots never reach a decoder.
///
/// # Errors
///
/// Returns [`CkptError::Decode`] describing the first verification
/// failure.
pub fn unseal(bytes: &[u8], tag: &str, version: u32) -> Result<Record, CkptError> {
    let newline = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| CkptError::decode("snapshot", "missing envelope header"))?;
    let header = std::str::from_utf8(&bytes[..newline])
        .map_err(|e| CkptError::decode("snapshot", format!("header not UTF-8: {e}")))?;
    let rest = header
        .strip_prefix(SNAPSHOT_MAGIC)
        .and_then(|r| r.strip_prefix(' '))
        .ok_or_else(|| CkptError::decode("snapshot", format!("bad magic in {header:?}")))?;
    let mut parts = rest.split(' ');
    let (Some(got_tag), Some(got_version), Some(got_len), Some(got_hash), None) = (
        parts.next(),
        parts.next(),
        parts.next(),
        parts.next(),
        parts.next(),
    ) else {
        return Err(CkptError::decode(
            "snapshot",
            format!("malformed header {header:?}"),
        ));
    };
    if got_tag != tag {
        return Err(CkptError::decode(
            "snapshot",
            format!("tag mismatch: found {got_tag:?}, expected {tag:?}"),
        ));
    }
    let got_version: u32 = got_version
        .parse()
        .map_err(|e| CkptError::decode("snapshot", format!("bad version: {e}")))?;
    if got_version != version {
        return Err(CkptError::decode(
            "snapshot",
            format!("version mismatch: found {got_version}, expected {version}"),
        ));
    }
    let len: usize = got_len
        .parse()
        .map_err(|e| CkptError::decode("snapshot", format!("bad length: {e}")))?;
    let hash = u64::from_str_radix(got_hash, 16)
        .map_err(|e| CkptError::decode("snapshot", format!("bad checksum field: {e}")))?;
    // Integer parsing tolerates aliases (uppercase hex, leading `+`,
    // leading zeros); the envelope does not. Requiring the header to
    // re-render byte-identically rejects every non-canonical spelling,
    // so no two distinct byte strings unseal to the same snapshot.
    let canonical = format!("{SNAPSHOT_MAGIC} {tag} {version} {len} {hash:016x}");
    if header != canonical {
        return Err(CkptError::decode(
            "snapshot",
            format!("non-canonical header {header:?}"),
        ));
    }
    let body = &bytes[newline + 1..];
    if body.len() != len {
        return Err(CkptError::decode(
            "snapshot",
            format!(
                "length mismatch: body {} bytes, header says {len}",
                body.len()
            ),
        ));
    }
    if fnv1a64(body) != hash {
        return Err(CkptError::decode(
            "snapshot",
            "checksum mismatch: snapshot is torn or corrupted",
        ));
    }
    Record::decode(body, tag)
}

/// Embeds `child` as a nested snapshot field of `rec`.
///
/// The child's full envelope (so its own tag/version/checksum travel
/// with it) is valid UTF-8 and stored as an escaped string field.
pub fn put_nested<S: Snapshot>(rec: &mut Record, key: &str, child: &S) {
    let bytes = snapshot_bytes(child);
    // Envelope bytes are built from `String`s, so this cannot fail.
    let text = String::from_utf8_lossy(&bytes);
    rec.put(key, &text);
}

/// Restores `child` from a nested snapshot field written by
/// [`put_nested`].
///
/// # Errors
///
/// Returns [`CkptError::Decode`] when the field is missing or the
/// nested envelope fails verification.
pub fn get_nested<S: Snapshot>(rec: &Record, key: &str, child: &mut S) -> Result<(), CkptError> {
    let text = rec.get(key)?;
    restore_from(child, text.as_bytes())
}

/// Embeds a homogeneous list of nested snapshots as one field.
pub fn put_nested_list<S: Snapshot>(rec: &mut Record, key: &str, children: &[S]) {
    let items: Vec<String> = children
        .iter()
        .map(|c| String::from_utf8_lossy(&snapshot_bytes(c)).into_owned())
        .collect();
    rec.put_str_list(key, &items);
}

/// Restores a list written by [`put_nested_list`] element-wise.
///
/// # Errors
///
/// Returns [`CkptError::Decode`] when the field is missing, the list
/// length differs from `children.len()`, or any element fails
/// verification.
pub fn get_nested_list<S: Snapshot>(
    rec: &Record,
    key: &str,
    children: &mut [S],
) -> Result<(), CkptError> {
    let items = rec.get_str_list(key)?;
    if items.len() != children.len() {
        return Err(CkptError::decode(
            "snapshot",
            format!(
                "nested list {key:?} has {} elements, receiver has {}",
                items.len(),
                children.len()
            ),
        ));
    }
    for (child, text) in children.iter_mut().zip(&items) {
        restore_from(child, text.as_bytes())?;
    }
    Ok(())
}

/// Zero-padded store name of snapshot `seq` in `namespace`, e.g.
/// `progress-00000042`. Zero padding makes lexicographic order equal
/// numeric order, so "newest" is a plain name scan.
pub fn snapshot_name(namespace: &str, seq: u64) -> String {
    format!("{namespace}-{seq:08}")
}

/// Parses the sequence number out of a store name produced by
/// [`snapshot_name`] for `namespace`; `None` for foreign names.
fn parse_seq(namespace: &str, name: &str) -> Option<u64> {
    let suffix = name.strip_prefix(namespace)?.strip_prefix('-')?;
    if suffix.len() != 8 || !suffix.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    suffix.parse().ok()
}

/// Commits snapshot `seq` of `state` under `namespace` in `store`.
///
/// # Errors
///
/// Returns [`CkptError`] on I/O failure.
pub fn save_snapshot<S: Snapshot>(
    store: &mut CheckpointStore,
    namespace: &str,
    seq: u64,
    state: &S,
) -> Result<(), CkptError> {
    store.put(&snapshot_name(namespace, seq), &snapshot_bytes(state))
}

/// Commits a record-level snapshot (for composite top-level state a
/// workload assembles by hand with [`put_nested`]).
///
/// # Errors
///
/// Returns [`CkptError`] on I/O failure.
pub fn save_record_snapshot(
    store: &mut CheckpointStore,
    namespace: &str,
    seq: u64,
    version: u32,
    rec: &Record,
) -> Result<(), CkptError> {
    store.put(
        &snapshot_name(namespace, seq),
        &seal(rec.tag(), version, rec),
    )
}

/// Restores `state` from the newest good snapshot in `namespace`.
///
/// Walks snapshots newest-first. Store-level corruption (content-hash
/// mismatch) is already quarantined by [`CheckpointStore::get`];
/// envelope or field failures are quarantined here with a structured
/// log entry. Either way the walk falls back to the next older
/// snapshot. Returns the restored sequence number, or `None` when no
/// good snapshot exists (fresh start).
///
/// # Errors
///
/// Returns [`CkptError`] only on I/O failure — corruption is
/// quarantine-and-continue, never an error.
pub fn latest_snapshot<S: Snapshot>(
    store: &mut CheckpointStore,
    namespace: &str,
    state: &mut S,
) -> Result<Option<u64>, CkptError> {
    walk_latest(
        store,
        namespace,
        |bytes, state| restore_from(state, bytes),
        state,
    )
}

/// Record-level counterpart of [`latest_snapshot`]: returns the
/// newest good record (and its sequence number) in `namespace`.
///
/// # Errors
///
/// Returns [`CkptError`] only on I/O failure.
pub fn latest_record_snapshot(
    store: &mut CheckpointStore,
    namespace: &str,
    tag: &str,
    version: u32,
) -> Result<Option<(u64, Record)>, CkptError> {
    let mut slot: Option<Record> = None;
    let seq = walk_latest(
        store,
        namespace,
        |bytes, slot| {
            *slot = Some(unseal(bytes, tag, version)?);
            Ok(())
        },
        &mut slot,
    )?;
    Ok(seq.and_then(|s| slot.map(|rec| (s, rec))))
}

/// Shared newest-first walk: try `restore` on each snapshot in
/// descending sequence order, quarantining failures, returning the
/// first success.
fn walk_latest<T>(
    store: &mut CheckpointStore,
    namespace: &str,
    restore: impl Fn(&[u8], &mut T) -> Result<(), CkptError>,
    state: &mut T,
) -> Result<Option<u64>, CkptError> {
    let mut seqs: Vec<u64> = store
        .names()
        .iter()
        .filter_map(|n| parse_seq(namespace, n))
        .collect();
    seqs.sort_unstable();
    for seq in seqs.into_iter().rev() {
        let name = snapshot_name(namespace, seq);
        // `get` re-verifies the content hash; `None` means the payload
        // was already quarantined (late corruption) — fall back.
        let Some(bytes) = store.get(&name)? else {
            continue;
        };
        match restore(&bytes, state) {
            Ok(()) => return Ok(Some(seq)),
            Err(err) => {
                // Hash-intact but unverifiable envelope/fields: treat
                // like corruption — quarantine, log, fall back.
                store.quarantine(&name, &format!("snapshot rejected: {err}"))?;
            }
        }
    }
    Ok(None)
}

/// Deletes all but the newest `keep_last` snapshots in `namespace`,
/// bounding on-disk growth of a long soak. Returns how many were
/// removed.
///
/// # Errors
///
/// Returns [`CkptError`] on I/O failure.
pub fn gc_snapshots(
    store: &mut CheckpointStore,
    namespace: &str,
    keep_last: usize,
) -> Result<usize, CkptError> {
    let mut seqs: Vec<u64> = store
        .names()
        .iter()
        .filter_map(|n| parse_seq(namespace, n))
        .collect();
    seqs.sort_unstable();
    let excess = seqs.len().saturating_sub(keep_last.max(1));
    let stale: Vec<String> = seqs[..excess]
        .iter()
        .map(|&seq| snapshot_name(namespace, seq))
        .collect();
    store.remove_batch(&stale)?;
    Ok(stale.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq, Default)]
    struct Toy {
        count: u64,
        level: f64,
        label: String,
    }

    impl Snapshot for Toy {
        const TAG: &'static str = "toy";
        const VERSION: u32 = 1;

        fn capture(&self, rec: &mut Record) {
            rec.put_u64("count", self.count)
                .put_f64("level", self.level)
                .put("label", &self.label);
        }

        fn restore(&mut self, rec: &Record) -> Result<(), CkptError> {
            let count = rec.get_u64("count")?;
            let level = rec.get_f64("level")?;
            let label = rec.get("label")?;
            self.count = count;
            self.level = level;
            self.label = label;
            Ok(())
        }
    }

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("thermal-ckpt-snap-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn envelope_roundtrip_is_byte_identical() {
        let toy = Toy {
            count: 9,
            level: -0.125,
            label: "aud hall".into(),
        };
        let bytes = snapshot_bytes(&toy);
        let mut back = Toy::default();
        restore_from(&mut back, &bytes).unwrap();
        assert_eq!(back, toy);
        assert_eq!(snapshot_bytes(&back), bytes);
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let bytes = snapshot_bytes(&Toy {
            count: 3,
            level: 1.5,
            label: "x".into(),
        });
        for i in 0..bytes.len() {
            let mut evil = bytes.clone();
            evil[i] ^= 0x01;
            let mut sink = Toy::default();
            assert!(
                restore_from(&mut sink, &evil).is_err(),
                "flip at byte {i} must be rejected"
            );
        }
    }

    #[test]
    fn truncation_is_detected_at_every_length() {
        let bytes = snapshot_bytes(&Toy::default());
        for cut in 0..bytes.len() {
            let mut sink = Toy::default();
            assert!(restore_from(&mut sink, &bytes[..cut]).is_err());
        }
    }

    #[test]
    fn tag_and_version_are_enforced() {
        let rec = {
            let mut r = Record::new("toy");
            Toy::default().capture(&mut r);
            r
        };
        let wrong_version = seal("toy", 2, &rec);
        let mut sink = Toy::default();
        assert!(restore_from(&mut sink, &wrong_version).is_err());
        let mut other = Record::new("other");
        Toy::default().capture(&mut other);
        let wrong_tag = seal("other", 1, &other);
        assert!(restore_from(&mut sink, &wrong_tag).is_err());
    }

    #[test]
    fn failed_restore_leaves_state_untouched() {
        let mut rec = Record::new("toy");
        rec.put_u64("count", 5); // level and label missing
        let bytes = seal("toy", 1, &rec);
        let mut toy = Toy {
            count: 1,
            level: 2.0,
            label: "keep".into(),
        };
        let before = toy.clone();
        assert!(restore_from(&mut toy, &bytes).is_err());
        assert_eq!(toy, before);
    }

    #[test]
    fn nested_and_list_roundtrip() {
        let a = Toy {
            count: 1,
            level: 0.5,
            label: "a".into(),
        };
        let kids = vec![
            a.clone(),
            Toy {
                count: 2,
                level: f64::NAN,
                label: "b,c d".into(),
            },
        ];
        let mut rec = Record::new("parent");
        put_nested(&mut rec, "one", &a);
        put_nested_list(&mut rec, "kids", &kids);
        let wire = Record::decode(&rec.encode(), "parent").unwrap();
        let mut one = Toy::default();
        get_nested(&wire, "one", &mut one).unwrap();
        assert_eq!(one, a);
        let mut back = vec![Toy::default(), Toy::default()];
        get_nested_list(&wire, "kids", &mut back).unwrap();
        assert_eq!(back[0], kids[0]);
        assert_eq!(back[1].count, 2);
        assert!(back[1].level.is_nan());
        assert_eq!(back[1].label, "b,c d");
        let mut short = vec![Toy::default()];
        assert!(get_nested_list(&wire, "kids", &mut short).is_err());
    }

    #[test]
    fn store_save_latest_and_fallback() {
        let root = scratch("latest");
        let mut store = CheckpointStore::open(&root, 7, "t").unwrap();
        for seq in 0..3u64 {
            let toy = Toy {
                count: seq,
                level: seq as f64,
                label: format!("s{seq}"),
            };
            save_snapshot(&mut store, "prog", seq, &toy).unwrap();
        }
        let mut out = Toy::default();
        assert_eq!(
            latest_snapshot(&mut store, "prog", &mut out).unwrap(),
            Some(2)
        );
        assert_eq!(out.count, 2);

        // Corrupt the newest payload on disk: the store-level hash
        // check quarantines it and the walk falls back to seq 1.
        std::fs::write(root.join(snapshot_name("prog", 2)), b"garbage").unwrap();
        let mut store = CheckpointStore::open(&root, 7, "t").unwrap();
        let mut out = Toy::default();
        assert_eq!(
            latest_snapshot(&mut store, "prog", &mut out).unwrap(),
            Some(1)
        );
        assert_eq!(out.label, "s1");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn hash_valid_but_unverifiable_snapshot_is_quarantined_with_log() {
        let root = scratch("badenv");
        let mut store = CheckpointStore::open(&root, 7, "t").unwrap();
        save_snapshot(
            &mut store,
            "prog",
            0,
            &Toy {
                count: 1,
                level: 1.0,
                label: "good".into(),
            },
        )
        .unwrap();
        // A manifested payload whose *envelope* is wrong (here: a bare
        // record with no snapshot header) — store hash passes, unseal
        // must not.
        store
            .put(&snapshot_name("prog", 1), b"not a snapshot at all")
            .unwrap();
        let mut out = Toy::default();
        assert_eq!(
            latest_snapshot(&mut store, "prog", &mut out).unwrap(),
            Some(0)
        );
        assert_eq!(out.label, "good");
        assert!(!store.contains(&snapshot_name("prog", 1)));
        let log = std::fs::read_to_string(root.join(crate::store::QUARANTINE_DIR).join("log.txt"))
            .unwrap();
        assert!(log.contains("prog-00000001"));
        assert!(log.contains("snapshot rejected"));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn gc_keeps_last_k_and_dir_stays_bounded() {
        let root = scratch("gc");
        let mut store = CheckpointStore::open(&root, 7, "t").unwrap();
        for seq in 0..40u64 {
            let toy = Toy {
                count: seq,
                level: 0.0,
                label: String::new(),
            };
            save_snapshot(&mut store, "prog", seq, &toy).unwrap();
            let removed = gc_snapshots(&mut store, "prog", 3).unwrap();
            assert!(removed <= 1, "steady-state GC removes at most one");
            // The long-soak bound: never more than keep_last snapshot
            // payloads (plus the manifest) on disk.
            let files = std::fs::read_dir(&root)
                .unwrap()
                .flatten()
                .filter(|e| e.path().is_file())
                .count();
            assert!(files <= 4, "dir grew to {files} files at seq {seq}");
        }
        // Newest survivor is still restorable after heavy GC.
        let mut out = Toy::default();
        assert_eq!(
            latest_snapshot(&mut store, "prog", &mut out).unwrap(),
            Some(39)
        );
        // Foreign namespaces are untouched by GC.
        save_snapshot(&mut store, "other", 0, &out).unwrap();
        gc_snapshots(&mut store, "prog", 1).unwrap();
        assert!(store.contains(&snapshot_name("other", 0)));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn record_level_save_and_latest() {
        let root = scratch("reclevel");
        let mut store = CheckpointStore::open(&root, 7, "t").unwrap();
        let mut rec = Record::new("progress");
        rec.put_usize("slot", 17);
        put_nested(&mut rec, "toy", &Toy::default());
        save_record_snapshot(&mut store, "prog", 4, 1, &rec).unwrap();
        let (seq, back) = latest_record_snapshot(&mut store, "prog", "progress", 1)
            .unwrap()
            .unwrap();
        assert_eq!(seq, 4);
        assert_eq!(back.get_usize("slot").unwrap(), 17);
        // Version bump refuses (and quarantines) the old snapshot.
        assert!(latest_record_snapshot(&mut store, "prog", "progress", 2)
            .unwrap()
            .is_none());
        let _ = std::fs::remove_dir_all(&root);
    }
}
