//! Crash-safe checkpointing for long-running thermal campaigns.
//!
//! The ICDCS'14 deployment lost a third of its 98-day campaign to
//! sensor *and server* failures; `thermal-faults` covers the sensor
//! side, this crate covers the process side. It provides the durable
//! execution substrate the bench grids and `ThermalPipeline::fit`
//! run on:
//!
//! * [`write_atomic`] — temp file + fsync + rename + parent fsync, so
//!   an artifact on disk is always whole (never torn), with a chaos
//!   kill-point hook ticked before every commit,
//! * [`CheckpointStore`] — a directory of content-hash-verified
//!   payloads under a plain-text [`manifest`](crate::manifest) that
//!   records schema version, run seed, and source revision; opening a
//!   store performs full recovery (sweep temp strays, quarantine
//!   corrupt/truncated/orphaned files, discard on identity mismatch)
//!   and reports it via [`OpenReport`],
//! * [`run_cell`] — the supervised resumable cell: restore from
//!   checkpoint, else execute under per-cell deadline, bounded
//!   deterministic retry/backoff, and a persisted circuit breaker
//!   that yields [`CellOutcome::Quarantined`] instead of aborting the
//!   grid,
//! * [`CircuitBreaker`] — the in-memory, tick-driven counterpart of
//!   that breaker, protecting live ingest sources in the streaming
//!   runtime (`thermal-stream`) with the same trip/cooldown/half-open
//!   discipline,
//! * [`codec`] — the hand-rolled, bit-exact text record format every
//!   checkpoint payload uses (hex-of-bits `f64`s, canonical bytes),
//! * [`snapshot`] — the versioned, FNV-checksummed envelope and
//!   [`Snapshot`] trait live serving state (queues, health machines,
//!   RLS estimators, fleet shards) uses to checkpoint itself at slot
//!   boundaries and restore after a crash, with keep-last-K retention
//!   and quarantine-and-fall-back on torn snapshots.
//!
//! # Resume equivalence
//!
//! The workspace's bitwise-determinism contract (see `thermal-par`)
//! plus canonical payload/manifest encodings give the crate its
//! headline guarantee, enforced by `cargo xtask chaos`: a run killed
//! at *any* durable write and then resumed produces final artifacts
//! **byte-identical** to an uninterrupted run.
//!
//! # Example
//!
//! ```
//! use thermal_ckpt::{run_cell, CellOutcome, CellPolicy, CheckpointStore};
//!
//! # fn main() -> Result<(), thermal_ckpt::CkptError> {
//! let dir = std::env::temp_dir().join(format!("ckpt-doc-{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&dir);
//! let mut store = CheckpointStore::open(&dir, 42, "doc")?;
//! let out = run_cell(&mut store, "cell-0", &CellPolicy::default(), || {
//!     Ok(b"expensive result".to_vec())
//! })?;
//! assert_eq!(out.bytes(), Some(&b"expensive result"[..]));
//! // A second run restores instead of recomputing.
//! let again = run_cell(&mut store, "cell-0", &CellPolicy::default(), || {
//!     Err("must not re-run".to_string())
//! })?;
//! assert!(matches!(again, CellOutcome::Restored(_)));
//! # let _ = std::fs::remove_dir_all(&dir);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod atomic;
mod breaker;
mod error;
mod runner;
mod store;

pub mod codec;
pub mod manifest;
pub mod snapshot;

pub use atomic::{fnv1a64, valid_name, write_atomic, Fnv64};
pub use breaker::{BreakerPolicy, BreakerState, CircuitBreaker};
pub use error::CkptError;
pub use manifest::SCHEMA_VERSION;
pub use runner::{run_cell, CellOutcome, CellPolicy};
pub use snapshot::Snapshot;
pub use store::{CheckpointStore, OpenReport, MANIFEST_NAME, QUARANTINE_DIR, QUARANTINE_LOG};

/// Convenient crate-wide result alias.
pub type Result<T> = std::result::Result<T, CkptError>;
