//! Property-based tests of the snapshot envelope and the
//! [`Snapshot`] byte-identity contract (see DESIGN.md
//! § restore-equivalence): for *any* record contents, sealing is
//! deterministic and `encode → decode → encode` is byte-identical;
//! for *any* single corrupted bit or truncation, unsealing fails
//! closed; and for *any* driven [`CircuitBreaker`] history, restoring
//! its snapshot onto a fresh instance reproduces the snapshot bytes
//! exactly.

// Test fixtures: panicking on a broken fixture is the right failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use thermal_ckpt::codec::Record;
use thermal_ckpt::snapshot::{restore_from, seal, snapshot_bytes, unseal};
use thermal_ckpt::{BreakerPolicy, CircuitBreaker};

/// Characters exercised in generated string values — every byte class
/// the codec escapes (`%`, space, newline, comma) plus plain ASCII
/// and non-ASCII text.
const PALETTE: &[char] = &[
    'a', 'b', 'z', 'A', '0', '9', '_', '-', '.', '%', ' ', '\n', ',', '°', 'é', '/',
];

/// Arbitrary field value drawing from the full escape palette.
fn value_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..PALETTE.len(), 0..24)
        .prop_map(|picks| picks.into_iter().map(|i| PALETTE[i]).collect())
}

/// One generated record field: a short key plus one of the codec's
/// value shapes, chosen by `kind`.
#[derive(Debug)]
struct Field {
    key: String,
    kind: usize,
    text: String,
    word: u64,
    real: f64,
    reals: Vec<f64>,
    words: Vec<u64>,
    texts: Vec<String>,
}

fn field_strategy() -> impl Strategy<Value = Field> {
    (
        prop::collection::vec(0usize..26, 1..8),
        0usize..7,
        value_strategy(),
        any::<u64>(),
        any::<f64>(),
        prop::collection::vec(any::<f64>(), 0..6),
        (
            prop::collection::vec(any::<u64>(), 0..6),
            prop::collection::vec(value_strategy(), 0..4),
        ),
    )
        .prop_map(
            |(key, kind, text, word, real, reals, (words, texts))| Field {
                key: key
                    .into_iter()
                    .map(|i| char::from(b'a' + u8::try_from(i).unwrap()))
                    .collect(),
                kind,
                text,
                word,
                real,
                reals,
                words,
                texts,
            },
        )
}

/// A record with arbitrary string, integer, float, and list fields.
fn record_strategy() -> impl Strategy<Value = Record> {
    prop::collection::vec(field_strategy(), 0..10).prop_map(|fields| {
        let mut rec = Record::new("prop-test");
        for f in fields {
            match f.kind {
                0 => rec.put(&f.key, &f.text),
                1 => rec.put_u64(&f.key, f.word),
                2 => rec.put_i64(&f.key, f.word.cast_signed()),
                3 => rec.put_f64(&f.key, f.real),
                4 => rec.put_f64_slice(&f.key, &f.reals),
                5 => rec.put_u64_slice(&f.key, &f.words),
                _ => rec.put_str_list(&f.key, &f.texts),
            };
        }
        rec
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sealing any record twice yields the same bytes, and the
    /// decoded record re-seals to those bytes — the determinism the
    /// kill-point harness's byte comparisons stand on.
    #[test]
    fn seal_unseal_seal_is_byte_identical(rec in record_strategy()) {
        let first = seal("prop-test", 3, &rec);
        prop_assert_eq!(&first, &seal("prop-test", 3, &rec));
        let decoded = unseal(&first, "prop-test", 3).unwrap();
        prop_assert_eq!(first, seal("prop-test", 3, &decoded));
    }

    /// Any single flipped bit anywhere in a sealed snapshot —
    /// header, length, checksum, or body — must be detected; a
    /// corrupted snapshot is never parsed.
    #[test]
    fn any_single_bit_flip_is_detected(
        (rec, pos, bit) in (record_strategy(), any::<u64>(), 0u8..8),
    ) {
        let sealed = seal("prop-test", 1, &rec);
        let at = usize::try_from(pos).unwrap_or(usize::MAX) % sealed.len();
        let mut bytes = sealed;
        bytes[at] ^= 1 << bit;
        prop_assert!(
            unseal(&bytes, "prop-test", 1).is_err(),
            "flip of bit {bit} at byte {at} went undetected"
        );
    }

    /// Any truncation of a sealed snapshot is detected — a torn write
    /// can never masquerade as a shorter valid snapshot.
    #[test]
    fn any_truncation_is_detected(
        (rec, keep) in (record_strategy(), any::<u64>()),
    ) {
        let sealed = seal("prop-test", 1, &rec);
        let cut = usize::try_from(keep).unwrap_or(usize::MAX) % sealed.len();
        prop_assert!(unseal(&sealed[..cut], "prop-test", 1).is_err());
    }

    /// Driving a breaker through any tick/allow/success/failure
    /// history, snapshotting it, and restoring onto a fresh breaker
    /// with the same policy reproduces the snapshot bytes exactly.
    #[test]
    fn breaker_roundtrip_is_byte_identical(ops in prop::collection::vec(0usize..4, 0..64)) {
        let policy = BreakerPolicy {
            threshold: 2,
            cooldown_ticks: 3,
        };
        let mut driven = CircuitBreaker::new(policy).unwrap();
        for op in ops {
            match op {
                0 => driven.tick(),
                1 => {
                    let _ = driven.allow();
                }
                2 => driven.record_success(),
                _ => driven.record_failure(),
            }
        }
        let bytes = snapshot_bytes(&driven);
        let mut fresh = CircuitBreaker::new(policy).unwrap();
        restore_from(&mut fresh, &bytes).unwrap();
        prop_assert_eq!(&bytes, &snapshot_bytes(&fresh));
        prop_assert_eq!(fresh.state(), driven.state());
        prop_assert_eq!(fresh.trips(), driven.trips());
        prop_assert_eq!(fresh.refusals(), driven.refusals());
    }
}
