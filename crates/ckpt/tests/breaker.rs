//! Direct public-API tests of the in-memory circuit breaker,
//! focused on the half-open probe transitions the streaming layer and
//! the refit supervisor both lean on.

// Test fixtures: panicking on a broken fixture is the right failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use thermal_ckpt::{BreakerPolicy, BreakerState, CircuitBreaker};

fn breaker(threshold: u32, cooldown_ticks: u64) -> CircuitBreaker {
    CircuitBreaker::new(BreakerPolicy {
        threshold,
        cooldown_ticks,
    })
    .unwrap()
}

/// Drives a tripped breaker through its cooldown into HalfOpen.
fn cool_to_half_open(b: &mut CircuitBreaker, cooldown_ticks: u64) {
    assert_eq!(b.state(), BreakerState::Open);
    for _ in 0..cooldown_ticks {
        assert_ne!(b.state(), BreakerState::HalfOpen, "half-opened early");
        b.tick();
    }
    assert_eq!(b.state(), BreakerState::HalfOpen);
}

#[test]
fn trips_only_at_threshold_and_refuses_while_open() {
    let mut b = breaker(3, 4);
    for _ in 0..2 {
        assert!(b.allow());
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed);
    }
    assert!(b.allow());
    b.record_failure();
    assert_eq!(b.state(), BreakerState::Open);
    assert_eq!(b.trips(), 1);
    // Every call while Open is refused and counted.
    for k in 1..=3 {
        assert!(!b.allow());
        assert_eq!(b.refusals(), k);
    }
}

#[test]
fn half_open_probe_success_closes() {
    let mut b = breaker(2, 3);
    b.record_failure();
    b.record_failure();
    cool_to_half_open(&mut b, 3);
    // The half-open breaker grants the probe.
    assert!(b.allow());
    b.record_success();
    assert_eq!(b.state(), BreakerState::Closed);
    assert_eq!(b.trips(), 1);
    // Fully reset: it takes a full threshold run to trip again.
    b.record_failure();
    assert_eq!(b.state(), BreakerState::Closed);
    b.record_failure();
    assert_eq!(b.state(), BreakerState::Open);
    assert_eq!(b.trips(), 2);
}

#[test]
fn half_open_probe_failure_reopens_immediately() {
    let mut b = breaker(3, 2);
    for _ in 0..3 {
        b.record_failure();
    }
    cool_to_half_open(&mut b, 2);
    assert!(b.allow());
    // One probe failure re-opens — no threshold accumulation in
    // HalfOpen.
    b.record_failure();
    assert_eq!(b.state(), BreakerState::Open);
    assert_eq!(b.trips(), 2);
    // And the cooldown restarts in full.
    cool_to_half_open(&mut b, 2);
}

#[test]
fn success_in_closed_clears_failure_streak() {
    let mut b = breaker(3, 4);
    b.record_failure();
    b.record_failure();
    b.record_success();
    // The streak restarted: two more failures stay Closed.
    b.record_failure();
    b.record_failure();
    assert_eq!(b.state(), BreakerState::Closed);
    b.record_failure();
    assert_eq!(b.state(), BreakerState::Open);
}

#[test]
fn zero_cooldown_still_spends_one_tick_open() {
    let mut b = breaker(1, 0);
    b.record_failure();
    assert_eq!(b.state(), BreakerState::Open);
    assert!(!b.allow(), "the open slot still refuses");
    b.tick();
    assert_eq!(b.state(), BreakerState::HalfOpen);
}

#[test]
fn failures_while_open_do_not_extend_or_retrip() {
    let mut b = breaker(2, 5);
    b.record_failure();
    b.record_failure();
    assert_eq!(b.trips(), 1);
    // Late failure reports (in-flight calls landing after the trip)
    // must not restart the cooldown or count as new trips.
    b.record_failure();
    b.record_failure();
    assert_eq!(b.trips(), 1);
    cool_to_half_open(&mut b, 5);
}

#[test]
fn policy_validation_rejects_zero_threshold() {
    assert!(CircuitBreaker::new(BreakerPolicy {
        threshold: 0,
        cooldown_ticks: 8,
    })
    .is_err());
    assert!(BreakerPolicy::default().validate().is_ok());
}

#[test]
fn identical_event_sequences_produce_identical_traces() {
    let run = || {
        let mut b = breaker(2, 3);
        let mut trace = Vec::new();
        // A fixed pseudo-schedule of failures, successes, and ticks.
        for k in 0_u64..200 {
            b.tick();
            if b.allow() {
                if (k * 7 + 3) % 5 < 3 {
                    b.record_failure();
                } else {
                    b.record_success();
                }
            }
            trace.push((b.state(), b.trips(), b.refusals()));
        }
        trace
    };
    assert_eq!(run(), run());
}
