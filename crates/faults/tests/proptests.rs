//! Property-based tests tying the injector's ground-truth log to the
//! segmentation machinery the identification pipeline runs on: for
//! *any* fault plan, the gap-free segments fitted downstream must
//! never overlap a slot the log says was erased, and every slot the
//! log does not claim must come through bit-identical.

// Test fixtures: panicking on a broken fixture is the right failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use thermal_faults::{FaultDirective, FaultKind, FaultPlan};
use thermal_timeseries::{segments_from_mask, Channel, Dataset, TimeGrid, Timestamp};

/// A one-channel dataset over a 30-minute grid with ~15 % natural
/// gaps, so injected erasure composes with pre-existing dropout.
fn dataset(values: Vec<Option<f64>>) -> Dataset {
    let grid = TimeGrid::new(Timestamp::from_minutes(0), 30, values.len()).unwrap();
    Dataset::new(grid, vec![Channel::new("t00", values).unwrap()]).unwrap()
}

fn values_strategy() -> impl Strategy<Value = Vec<Option<f64>>> {
    prop::collection::vec(prop::option::weighted(0.85, 15.0_f64..30.0), 96..288)
}

proptest! {
    /// The satellite contract: segments derived from the faulted
    /// presence mask (exactly what `usable_segments` feeds the
    /// least-squares fit) never contain a slot that channel death or
    /// a day outage erased, for any seed, any intensity mix and any
    /// pre-existing gap pattern. Erasure directives come last, as in
    /// any physically ordered plan (a dead channel cannot skew).
    #[test]
    fn fitted_segments_never_overlap_injected_outages(
        seed in any::<u64>(),
        values in values_strategy(),
        skew_i in 0.0_f64..=1.0,
        death_i in 0.0_f64..=1.0,
        outage_i in 0.0_f64..=1.0,
        min_len in 1_usize..8,
    ) {
        let ds = dataset(values);
        let n = ds.grid().len();
        let days: Vec<i64> = ds.grid().iter().map(|(_, t)| t.day()).collect();
        let plan = FaultPlan::new(seed)
            .with(FaultDirective::all(
                FaultKind::default_params("spike").unwrap(),
                0.5,
            ))
            .with(FaultDirective::all(FaultKind::ClockSkew { max_slots: 6 }, skew_i))
            .with(FaultDirective::all(FaultKind::ChannelDeath, death_i))
            .with(FaultDirective::all(
                FaultKind::DayOutage { day_prob: 0.5 },
                outage_i,
            ));
        let (faulted, log) = plan.apply(&ds).unwrap();
        let lost = log.lost_mask("t00", n, |i| days[i]);

        // Every slot the log claims erased is a gap in the trace.
        let ch = faulted.channel("t00").unwrap();
        for i in lost.iter_selected() {
            prop_assert!(!ch.is_present(i), "lost slot {i} still present");
        }

        // So no fitted segment can contain one.
        let presence = faulted.presence_mask(&[0]).unwrap();
        for seg in segments_from_mask(&presence, min_len) {
            for i in lost.iter_selected() {
                prop_assert!(
                    !seg.contains(i),
                    "segment {}..{} overlaps erased slot {i}",
                    seg.start,
                    seg.end
                );
            }
        }
    }

    /// Zero intensity is an exact no-op for every class, any seed and
    /// any gap pattern — the anchor of the fault-matrix sweep.
    #[test]
    fn zero_intensity_is_identity_for_any_seed(
        seed in any::<u64>(),
        values in values_strategy(),
    ) {
        let ds = dataset(values);
        let mut plan = FaultPlan::new(seed);
        for class in ["stuck", "drift", "spike", "garbage", "skew", "death", "outage"] {
            plan = plan.with(FaultDirective::all(
                FaultKind::default_params(class).unwrap(),
                0.0,
            ));
        }
        let (faulted, log) = plan.apply(&ds).unwrap();
        prop_assert!(log.is_clean());
        prop_assert_eq!(faulted, ds);
    }

    /// The log is complete for value faults: a slot outside
    /// `corrupted_slots` is bit-identical to the original, and value
    /// faults never change which slots are present.
    #[test]
    fn unlogged_slots_are_bit_identical(
        seed in any::<u64>(),
        values in values_strategy(),
        intensity in 0.0_f64..=1.0,
    ) {
        let ds = dataset(values);
        let n = ds.grid().len();
        let mut plan = FaultPlan::new(seed);
        for class in ["stuck", "drift", "spike", "garbage"] {
            plan = plan.with(FaultDirective::all(
                FaultKind::default_params(class).unwrap(),
                intensity,
            ));
        }
        let (faulted, log) = plan.apply(&ds).unwrap();
        let corrupted = log.corrupted_slots("t00", n);
        let before = ds.channel("t00").unwrap();
        let after = faulted.channel("t00").unwrap();
        for i in 0..n {
            prop_assert_eq!(
                before.is_present(i),
                after.is_present(i),
                "value faults must not change presence at {}",
                i
            );
            if corrupted.binary_search(&i).is_err() {
                match (before.value(i), after.value(i)) {
                    (None, None) => {}
                    (Some(a), Some(b)) => prop_assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "unlogged slot {} changed",
                        i
                    ),
                    _ => prop_assert!(false, "presence flipped at {i}"),
                }
            }
        }
    }
}
