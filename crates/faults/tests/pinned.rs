//! Pinned-trace regression test for the fault-injection determinism
//! contract (see `plan.rs` module docs): the exact faulted trace and
//! log produced by a fixed plan on a fixed dataset are fingerprinted
//! here, so any change to stream derivation, draw order or float
//! arithmetic — however innocent-looking — fails loudly instead of
//! silently invalidating every seed-pinned experiment downstream.
//!
//! If a change *intentionally* alters the injected trace (new draw
//! order, different mixing constants), update the pinned constants in
//! the same commit and say so in the commit message: every consumer's
//! pinned seeds change meaning with them.

// Test fixtures: panicking on a broken fixture is the right failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use thermal_faults::{FaultDirective, FaultKind, FaultPlan};
use thermal_timeseries::{Channel, Dataset, TimeGrid, Timestamp};

/// FNV-1a over raw bytes — stable, dependency-free fingerprinting.
fn fnv1a(hash: u64, bytes: &[u8]) -> u64 {
    let mut h = hash;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprints a dataset: every channel's name and every slot's
/// exact bit pattern (gaps fold in a sentinel distinct from any
/// finite value's bits).
fn dataset_fingerprint(ds: &Dataset) -> u64 {
    const GAP_SENTINEL: u64 = 0x7ff8_0000_dead_beef;
    let mut h = 0xcbf2_9ce4_8422_2325; // FNV offset basis
    for ch in ds.channels() {
        h = fnv1a(h, ch.name().as_bytes());
        for v in ch.values() {
            let bits = v.map_or(GAP_SENTINEL, f64::to_bits);
            h = fnv1a(h, &bits.to_le_bytes());
        }
    }
    h
}

/// Two days of 5-minute telemetry with pure-arithmetic values (no
/// transcendental functions, so construction is bit-exact on every
/// platform, like the injection itself).
fn fixture() -> Dataset {
    let n = 288 * 2;
    let grid = TimeGrid::new(Timestamp::from_minutes(0), 5, n).unwrap();
    let channels = (0..3)
        .map(|c| {
            let values: Vec<f64> = (0..n)
                .map(|i| 20.0 + (i % 288) as f64 * 0.01 + c as f64)
                .collect();
            Channel::from_values(format!("t{c:02}"), values).unwrap()
        })
        .collect();
    Dataset::new(grid, channels).unwrap()
}

/// The pinned plan: every fault class at a mid-sweep intensity.
fn plan() -> FaultPlan {
    let mut plan = FaultPlan::new(0x00D5_2026);
    for (class, intensity) in [
        ("stuck", 0.8),
        ("drift", 1.0),
        ("spike", 0.6),
        ("garbage", 0.5),
        ("skew", 0.5),
        ("death", 0.9),
        ("outage", 1.0),
    ] {
        let kind = FaultKind::default_params(class).unwrap();
        plan = plan.with(FaultDirective::all(kind, intensity));
    }
    plan
}

#[test]
fn pinned_trace_and_log_are_reproduced_exactly() {
    let ds = fixture();
    let (faulted, log) = plan().apply(&ds).unwrap();

    // The exact per-kind event counts of this seed.
    let counts: Vec<(&str, usize)> = [
        "stuck", "drift", "spike", "garbage", "skew", "death", "outage",
    ]
    .iter()
    .map(|k| (*k, log.count_kind(k)))
    .collect();
    assert_eq!(
        counts,
        [
            ("stuck", 5),
            ("drift", 3),
            ("spike", 9),
            ("garbage", 7),
            ("skew", 3),
            ("death", 3),
            ("outage", 1),
        ],
        "pinned event counts changed — the fault streams moved"
    );

    // Bit-exact fingerprints of the faulted trace and the log.
    assert_eq!(
        dataset_fingerprint(&faulted),
        0xc9f8_cc41_a318_d751,
        "pinned trace fingerprint changed — injected values moved"
    );
    assert_eq!(
        fnv1a(0xcbf2_9ce4_8422_2325, format!("{log:?}").as_bytes()),
        0xc496_c3b7_65dd_47b9,
        "pinned log fingerprint changed — event order or payloads moved"
    );

    // Re-application from an identical plan value reproduces both.
    let (again, log_again) = plan().apply(&ds).unwrap();
    assert_eq!(again, faulted);
    assert_eq!(log_again, log);
}
