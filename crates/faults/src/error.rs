//! Typed errors for fault-plan construction and injection.

use std::fmt;

use thermal_timeseries::TimeSeriesError;

/// Errors produced by fault-plan construction and injection.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FaultError {
    /// A fault directive is internally inconsistent (negative
    /// intensity, zero burst length, …).
    InvalidSpec {
        /// Explanation of the problem.
        reason: String,
    },
    /// A directive targeted a channel the dataset does not contain.
    UnknownChannel {
        /// The offending channel name.
        name: String,
    },
    /// A dataset operation failed while rebuilding the faulted trace.
    TimeSeries(TimeSeriesError),
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::InvalidSpec { reason } => {
                write!(f, "invalid fault directive: {reason}")
            }
            FaultError::UnknownChannel { name } => {
                write!(f, "fault directive targets unknown channel {name:?}")
            }
            FaultError::TimeSeries(e) => write!(f, "dataset operation failed: {e}"),
        }
    }
}

impl std::error::Error for FaultError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FaultError::TimeSeries(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<TimeSeriesError> for FaultError {
    fn from(e: TimeSeriesError) -> Self {
        FaultError::TimeSeries(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_traits() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<FaultError>();
        let e = FaultError::InvalidSpec {
            reason: "negative intensity".into(),
        };
        assert!(e.to_string().contains("negative intensity"));
        let e = FaultError::from(TimeSeriesError::GridMismatch);
        assert!(std::error::Error::source(&e).is_some());
    }
}
