//! Ingest-boundary chaos: corrupting CSV *text* before parsing.
//!
//! The dataset containers uphold a finite-value invariant (`NaN`
//! never enters a [`thermal_timeseries::Channel`]), so NaN/garbage
//! literals and malformed rows can only be exercised at the ingest
//! boundary. This module deterministically corrupts CSV text the way
//! a flaky export pipeline would, so parser-hardening tests have a
//! realistic adversary: NaN/inf literals, truncated rows, and
//! non-numeric junk.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Salt for the CSV-corruption RNG stream.
const INGEST_STREAM_SALT: u64 = 0x4353_565f_4348_414f; // "CSV_CHAO"

/// How one CSV line was corrupted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvCorruption {
    /// A numeric field replaced by a `NaN` literal.
    NanLiteral,
    /// A numeric field replaced by an `inf` literal.
    InfLiteral,
    /// A numeric field replaced by non-numeric junk.
    Junk,
    /// The row truncated mid-way (fewer fields than the header).
    Truncated,
}

/// Deterministically corrupts data lines of a CSV document.
///
/// Each data line (everything after the header) is corrupted with
/// probability `intensity`; the corruption class cycles through
/// [`CsvCorruption`] variants. Returns the corrupted text plus
/// `(1-based line number, corruption)` ground truth so tests can
/// assert the parser reports exactly the right line.
///
/// The RNG stream depends only on `(seed, line index)`, mirroring the
/// [`crate::FaultPlan`] determinism contract.
pub fn corrupt_csv(text: &str, seed: u64, intensity: f64) -> (String, Vec<(usize, CsvCorruption)>) {
    let mut out = String::with_capacity(text.len());
    let mut log = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if idx == 0 || line.trim().is_empty() {
            out.push_str(line);
            out.push('\n');
            continue;
        }
        let mut rng = StdRng::seed_from_u64(
            seed ^ INGEST_STREAM_SALT ^ (idx as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );
        if rng.gen::<f64>() >= intensity {
            out.push_str(line);
            out.push('\n');
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() < 2 {
            out.push_str(line);
            out.push('\n');
            continue;
        }
        // Never corrupt the timestamp column: timestamp errors are a
        // different parser path with its own tests.
        let target = 1 + rng.gen_range(0..fields.len() - 1);
        let corruption = match rng.gen_range(0..4_u32) {
            0 => CsvCorruption::NanLiteral,
            1 => CsvCorruption::InfLiteral,
            2 => CsvCorruption::Junk,
            _ => CsvCorruption::Truncated,
        };
        let mut mutated: Vec<String> = fields.iter().map(|s| (*s).to_owned()).collect();
        match corruption {
            CsvCorruption::NanLiteral => mutated[target] = "NaN".to_owned(),
            CsvCorruption::InfLiteral => mutated[target] = "inf".to_owned(),
            CsvCorruption::Junk => mutated[target] = "##ERR##".to_owned(),
            CsvCorruption::Truncated => mutated.truncate(target),
        }
        out.push_str(&mutated.join(","));
        out.push('\n');
        log.push((lineno, corruption));
    }
    (out, log)
}

#[cfg(test)]
mod tests {
    use super::*;

    const CSV: &str = "minutes,a,b\n0,20.0,21.0\n5,20.1,21.1\n10,20.2,21.2\n15,20.3,21.3\n";

    #[test]
    fn zero_intensity_is_identity() {
        let (out, log) = corrupt_csv(CSV, 1, 0.0);
        assert_eq!(out, CSV);
        assert!(log.is_empty());
    }

    #[test]
    fn corruption_is_deterministic_and_logged() {
        let (a, log_a) = corrupt_csv(CSV, 42, 1.0);
        let (b, log_b) = corrupt_csv(CSV, 42, 1.0);
        assert_eq!(a, b);
        assert_eq!(log_a, log_b);
        assert_eq!(log_a.len(), 4, "every data line corrupted at intensity 1");
        for (lineno, _) in &log_a {
            assert!((2..=5).contains(lineno), "header must stay intact");
        }
        // A different seed corrupts differently.
        let (c, _) = corrupt_csv(CSV, 43, 1.0);
        assert_ne!(a, c);
    }

    #[test]
    fn corrupted_lines_actually_differ() {
        let (out, log) = corrupt_csv(CSV, 7, 1.0);
        let before: Vec<&str> = CSV.lines().collect();
        let after: Vec<&str> = out.lines().collect();
        for (lineno, _) in &log {
            assert_ne!(before[lineno - 1], after[lineno - 1]);
        }
    }
}
