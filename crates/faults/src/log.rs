//! Ground-truth record of every injected fault.
//!
//! Injection is only useful for testing detection when the injector
//! can say exactly what it did: the [`FaultLog`] records every event
//! with its channel and slot extent, so tests can assert that the
//! validation layer caught (or healed) precisely the corrupted
//! samples and nothing else.

use serde::{Deserialize, Serialize};

use thermal_timeseries::Mask;

/// One injected fault, as ground truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum FaultEvent {
    /// A channel's reading froze at `held` over `start..end`.
    StuckAt {
        /// Affected channel name.
        channel: String,
        /// First affected slot (inclusive).
        start: usize,
        /// One past the last affected slot.
        end: usize,
        /// The frozen reading.
        held: f64,
    },
    /// A channel drifted by `rate_per_slot` per slot from `start` to
    /// the end of the trace.
    Drift {
        /// Affected channel name.
        channel: String,
        /// Drift onset slot.
        start: usize,
        /// Additive drift per slot (signed).
        rate_per_slot: f64,
    },
    /// An isolated outlier reading displaced by `delta`.
    Spike {
        /// Affected channel name.
        channel: String,
        /// The corrupted slot.
        index: usize,
        /// Signed displacement applied to the true reading.
        delta: f64,
    },
    /// A reading replaced by a physically implausible value.
    Garbage {
        /// Affected channel name.
        channel: String,
        /// The corrupted slot.
        index: usize,
        /// The garbage value written.
        value: f64,
    },
    /// A channel's timeline shifted by `shift` slots (positive =
    /// reported late).
    ClockSkew {
        /// Affected channel name.
        channel: String,
        /// Signed shift in slots.
        shift: i64,
    },
    /// A channel went dark from `start` to the end of the trace.
    ChannelDeath {
        /// Affected channel name.
        channel: String,
        /// First dark slot.
        start: usize,
    },
    /// An entire day was lost for every channel (server outage).
    DayOutage {
        /// The lost (epoch-relative) day index.
        day: i64,
    },
    /// The channel's physics changed mid-trace and stayed changed
    /// (VAV damper failure, occupancy schedule shift, envelope
    /// change): from `start`, readings are rescaled around the
    /// pre-onset level by `gain` and shifted by `offset`.
    RegimeShift {
        /// Affected channel name.
        channel: String,
        /// First slot of the new regime.
        start: usize,
        /// Multiplicative gain applied around the pre-onset mean.
        gain: f64,
        /// Additive level shift, °C.
        offset: f64,
    },
}

impl FaultEvent {
    /// The channel the event affects, or `None` for whole-trace
    /// events (day outages).
    pub fn channel(&self) -> Option<&str> {
        match self {
            FaultEvent::StuckAt { channel, .. }
            | FaultEvent::Drift { channel, .. }
            | FaultEvent::Spike { channel, .. }
            | FaultEvent::Garbage { channel, .. }
            | FaultEvent::ClockSkew { channel, .. }
            | FaultEvent::ChannelDeath { channel, .. }
            | FaultEvent::RegimeShift { channel, .. } => Some(channel),
            FaultEvent::DayOutage { .. } => None,
        }
    }

    /// Short machine-friendly class name (`"stuck"`, `"drift"`, …).
    pub fn kind_name(&self) -> &'static str {
        match self {
            FaultEvent::StuckAt { .. } => "stuck",
            FaultEvent::Drift { .. } => "drift",
            FaultEvent::Spike { .. } => "spike",
            FaultEvent::Garbage { .. } => "garbage",
            FaultEvent::ClockSkew { .. } => "skew",
            FaultEvent::ChannelDeath { .. } => "death",
            FaultEvent::DayOutage { .. } => "outage",
            FaultEvent::RegimeShift { .. } => "regime_shift",
        }
    }
}

/// Ground truth of one [`crate::FaultPlan::apply`] run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultLog {
    events: Vec<FaultEvent>,
}

impl FaultLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        FaultLog::default()
    }

    /// Appends an event.
    pub fn push(&mut self, event: FaultEvent) {
        self.events.push(event);
    }

    /// All recorded events, in injection order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// `true` when nothing was injected.
    pub fn is_clean(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events of the given class (see
    /// [`FaultEvent::kind_name`]).
    pub fn count_kind(&self, kind: &str) -> usize {
        self.events.iter().filter(|e| e.kind_name() == kind).count()
    }

    /// Days lost to injected server outages, ascending and
    /// deduplicated.
    pub fn outage_days(&self) -> Vec<i64> {
        let mut days: Vec<i64> = self
            .events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::DayOutage { day } => Some(*day),
                _ => None,
            })
            .collect();
        days.sort_unstable();
        days.dedup();
        days
    }

    /// Mask (over a grid of `len` slots whose slot `i` falls on day
    /// `day_of_slot(i)`) of the slots this log *erased* for the named
    /// channel: its stuck/drift/spike/garbage corruptions alter values
    /// but keep them present, while channel death, and day outages,
    /// remove them — the removed slots are what this mask selects.
    pub fn lost_mask(&self, channel: &str, len: usize, day_of_slot: impl Fn(usize) -> i64) -> Mask {
        let mut bits = vec![false; len];
        for event in &self.events {
            match event {
                FaultEvent::ChannelDeath { channel: c, start } if c == channel => {
                    for b in bits.iter_mut().skip(*start) {
                        *b = true;
                    }
                }
                FaultEvent::DayOutage { day } => {
                    for (i, b) in bits.iter_mut().enumerate() {
                        if day_of_slot(i) == *day {
                            *b = true;
                        }
                    }
                }
                _ => {}
            }
        }
        Mask::from_bits(bits)
    }

    /// Slots whose *value* was corrupted (but left present) for the
    /// named channel: stuck runs, drift tails, spikes and garbage.
    pub fn corrupted_slots(&self, channel: &str, len: usize) -> Vec<usize> {
        let mut bits = vec![false; len];
        for event in &self.events {
            match event {
                FaultEvent::StuckAt {
                    channel: c,
                    start,
                    end,
                    ..
                } if c == channel => {
                    for b in bits.iter_mut().take((*end).min(len)).skip(*start) {
                        *b = true;
                    }
                }
                FaultEvent::Drift {
                    channel: c, start, ..
                }
                | FaultEvent::RegimeShift {
                    channel: c, start, ..
                } if c == channel => {
                    for b in bits.iter_mut().skip(*start) {
                        *b = true;
                    }
                }
                FaultEvent::Spike {
                    channel: c, index, ..
                }
                | FaultEvent::Garbage {
                    channel: c, index, ..
                } if c == channel && *index < len => {
                    bits[*index] = true;
                }
                _ => {}
            }
        }
        bits.iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_accounting() {
        let mut log = FaultLog::new();
        assert!(log.is_clean());
        log.push(FaultEvent::Spike {
            channel: "t01".into(),
            index: 3,
            delta: 4.0,
        });
        log.push(FaultEvent::DayOutage { day: 2 });
        log.push(FaultEvent::DayOutage { day: 1 });
        log.push(FaultEvent::DayOutage { day: 2 });
        assert!(!log.is_clean());
        assert_eq!(log.count_kind("spike"), 1);
        assert_eq!(log.count_kind("outage"), 3);
        assert_eq!(log.outage_days(), vec![1, 2]);
        assert_eq!(log.events()[0].channel(), Some("t01"));
        assert_eq!(log.events()[1].channel(), None);
    }

    #[test]
    fn lost_mask_merges_death_and_outage() {
        let mut log = FaultLog::new();
        log.push(FaultEvent::ChannelDeath {
            channel: "a".into(),
            start: 8,
        });
        log.push(FaultEvent::DayOutage { day: 0 });
        // 10 slots, 5 per day.
        let mask = log.lost_mask("a", 10, |i| (i / 5) as i64);
        assert_eq!(mask.count(), 7); // slots 0..5 (day 0) + 8, 9
        assert!(mask.get(0) && mask.get(4) && !mask.get(5) && mask.get(8));
        // Another channel only loses the outage day.
        let other = log.lost_mask("b", 10, |i| (i / 5) as i64);
        assert_eq!(other.count(), 5);
    }

    #[test]
    fn corrupted_slots_cover_value_faults() {
        let mut log = FaultLog::new();
        log.push(FaultEvent::StuckAt {
            channel: "a".into(),
            start: 1,
            end: 3,
            held: 20.0,
        });
        log.push(FaultEvent::Garbage {
            channel: "a".into(),
            index: 5,
            value: 999.0,
        });
        log.push(FaultEvent::Drift {
            channel: "b".into(),
            start: 4,
            rate_per_slot: 0.01,
        });
        assert_eq!(log.corrupted_slots("a", 6), vec![1, 2, 5]);
        assert_eq!(log.corrupted_slots("b", 6), vec![4, 5]);
        log.push(FaultEvent::RegimeShift {
            channel: "c".into(),
            start: 2,
            gain: 1.3,
            offset: 0.9,
        });
        assert_eq!(log.count_kind("regime_shift"), 1);
        assert_eq!(log.events()[3].channel(), Some("c"));
        assert_eq!(log.corrupted_slots("c", 5), vec![2, 3, 4]);
    }
}
