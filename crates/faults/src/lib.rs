//! Fault injection for auditorium telemetry — the testbed's
//! 98 → 64-day reality, on demand.
//!
//! The ICDCS'14 deployment lost a third of its campaign to real
//! faults: Bluetooth dropout bursts, stuck and drifting sensors, and
//! whole days of server outage. Its piece-wise least-squares
//! identification (Eq. 4) exists *because* the data is imperfect.
//! This crate makes that imperfection a first-class, reproducible
//! test input:
//!
//! * [`FaultPlan`] — a composable, seed-deterministic list of
//!   [`FaultDirective`]s injecting typed faults into any
//!   [`thermal_timeseries::Dataset`]: stuck-at readings, slow drift,
//!   spike outliers, implausible garbage values, clock-skewed
//!   channels, channel death mid-trace, and whole-day server outages,
//! * [`FaultLog`] — ground truth of every injected event, so tests
//!   can assert that detection and quarantine caught exactly the
//!   corrupted samples,
//! * [`ingest::corrupt_csv`] — CSV-text corruption (NaN/inf literals,
//!   truncated rows) for parser-hardening tests, since the dataset
//!   containers themselves never admit non-finite values.
//!
//! # Determinism
//!
//! Same seed ⇒ identical faulted trace and log on every platform;
//! see the [`plan`] module docs for the exact stream-derivation
//! contract and `tests/pinned.rs` for the pinned-trace regression
//! test.
//!
//! # Example
//!
//! ```
//! use thermal_faults::{FaultDirective, FaultKind, FaultPlan};
//! use thermal_timeseries::{Channel, Dataset, TimeGrid, Timestamp};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let grid = TimeGrid::new(Timestamp::from_minutes(0), 5, 288)?;
//! let ds = Dataset::new(grid, vec![Channel::from_values("t01", vec![21.0; 288])?])?;
//! let plan = FaultPlan::new(7).with(FaultDirective::all(
//!     FaultKind::Spike { prob: 0.05, magnitude: 6.0 },
//!     1.0,
//! ));
//! let (faulted, log) = plan.apply(&ds)?;
//! assert_eq!(faulted.grid(), ds.grid());
//! assert_eq!(log.count_kind("spike"), log.events().len());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod log;

pub mod ingest;
pub mod killpoint;
pub mod plan;

pub use error::FaultError;
pub use killpoint::{durable_write_tick, durable_writes, KILL_AT_ENV, KILL_EXIT_CODE};
pub use log::{FaultEvent, FaultLog};
pub use plan::{FaultDirective, FaultKind, FaultPlan, FaultTargets};

/// Convenient crate-wide result alias.
pub type Result<T> = std::result::Result<T, FaultError>;
