//! Composable, seed-deterministic fault injection into datasets.
//!
//! A [`FaultPlan`] is a list of [`FaultDirective`]s, each naming one
//! [`FaultKind`], a target set of channels and an `intensity` knob in
//! `[0, 1]`. Applying the plan to a [`Dataset`] produces the faulted
//! copy plus the ground-truth [`FaultLog`](crate::FaultLog) of what
//! was injected where.
//!
//! # Determinism contract
//!
//! Injection derives every random stream from
//! `seed ^ FAULT_STREAM_SALT ^ f(directive index) ^ g(channel index)`
//! (`StdRng`, a portable ChaCha-based generator), so:
//!
//! * the same plan applied to the same dataset yields an identical
//!   faulted trace and log on every platform and every run,
//! * directives are independent: editing one directive's parameters
//!   never changes what *another* directive injects,
//! * channels are independent: the stream for channel `c` does not
//!   depend on how many other channels the directive targets.
//!
//! Only slot positions and comparison draws come from the RNG —
//! float arithmetic on the draws is elementary (no transcendental
//! functions), keeping traces bit-identical across platforms. A
//! pinned-trace regression test in the crate asserts this contract.
//!
//! At `intensity == 0.0` every directive is an exact no-op: the
//! returned dataset equals the input and the log stays clean — the
//! property that lets fault-matrix sweeps anchor their zero point to
//! the clean baseline.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use thermal_linalg::cast;
use thermal_timeseries::{Channel, Dataset};

use crate::log::{FaultEvent, FaultLog};
use crate::{FaultError, Result};

/// Salt for the fault-injection RNG stream (distinct from the
/// simulator's sensor and disturbance salts).
const FAULT_STREAM_SALT: u64 = 0x4641_554c_5453_2121; // "FAULTS!!"

/// Longest stuck burst the injector will generate, slots.
const MAX_STUCK_LEN: usize = 2000;

/// One class of telemetry fault, with its physical parameters.
///
/// Each variant documents how the directive's `intensity` in `[0, 1]`
/// scales it; at `0.0` every variant injects nothing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum FaultKind {
    /// The reading freezes at its current value for a burst
    /// (ice-bound or saturated sensor). A burst starts at a present
    /// slot with probability `start_prob · intensity`; its length is
    /// geometric with mean `mean_len` slots.
    StuckAt {
        /// Per-slot burst start probability at intensity 1.
        start_prob: f64,
        /// Mean burst length, slots.
        mean_len: f64,
    },
    /// Slow additive calibration drift (aging electronics). Each
    /// target channel drifts with probability `intensity`, starting
    /// at a uniform slot, at a uniform rate up to
    /// `max_rate_per_day` °C/day with random sign.
    Drift {
        /// Largest drift rate at intensity 1, °C per day.
        max_rate_per_day: f64,
    },
    /// Isolated outlier readings (RF glitches). Each present slot is
    /// displaced with probability `prob · intensity` by
    /// `± magnitude · U(0.5, 1.5)`.
    Spike {
        /// Per-slot spike probability at intensity 1.
        prob: f64,
        /// Typical displacement magnitude, °C.
        magnitude: f64,
    },
    /// Readings replaced by physically implausible garbage (firmware
    /// faults; the in-dataset counterpart of NaN literals, which the
    /// dataset's finite-value invariant keeps out — see the csv
    /// hardening in `thermal-timeseries`). Each present slot is
    /// replaced with probability `prob · intensity` by a uniform
    /// value in `[low, high]`.
    Garbage {
        /// Per-slot garbage probability at intensity 1.
        prob: f64,
        /// Lower bound of the garbage band (finite).
        low: f64,
        /// Upper bound of the garbage band (finite).
        high: f64,
    },
    /// The channel's clock skews: its samples shift by
    /// `round(max_slots · intensity)` slots, direction drawn per
    /// channel (late or early). Vacated slots become gaps.
    ClockSkew {
        /// Largest shift at intensity 1, slots.
        max_slots: usize,
    },
    /// The channel dies mid-trace and never recovers (battery
    /// exhaustion). Each target channel dies with probability
    /// `intensity`; the onset is uniform over the trace.
    ChannelDeath,
    /// Whole days lost for *every* channel (backend/server outage —
    /// the paper's 98 → 64 day loss). Each day is lost with
    /// probability `day_prob · intensity`.
    DayOutage {
        /// Per-day loss probability at intensity 1.
        day_prob: f64,
    },
    /// The channel's *physics* change mid-trace and stay changed — a
    /// VAV damper fails wide open, the occupancy schedule shifts, the
    /// envelope loses insulation. Unlike sensor faults, the readings
    /// remain real measurements; they just obey a different process.
    /// From the deterministic onset slot `round(onset · len)` every
    /// present reading `v` becomes
    /// `m + (v − m)·(1 + gain_delta·intensity) + offset·intensity`,
    /// where `m` is the channel's pre-onset mean — an amplified
    /// swing around a shifted operating point. Needs no RNG draws:
    /// the same directive always shifts the same slots the same way.
    RegimeShift {
        /// Onset as a fraction of the trace length, in `[0, 1]`.
        onset: f64,
        /// Relative gain change at intensity 1 (`0.5` ⇒ swings 50 %
        /// wider). Must stay above `-1` so the gain remains positive.
        gain_delta: f64,
        /// Additive operating-point shift at intensity 1, °C.
        offset: f64,
    },
}

impl FaultKind {
    /// Short machine-friendly class name, matching
    /// [`FaultEvent::kind_name`](crate::FaultEvent::kind_name).
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::StuckAt { .. } => "stuck",
            FaultKind::Drift { .. } => "drift",
            FaultKind::Spike { .. } => "spike",
            FaultKind::Garbage { .. } => "garbage",
            FaultKind::ClockSkew { .. } => "skew",
            FaultKind::ChannelDeath => "death",
            FaultKind::DayOutage { .. } => "outage",
            FaultKind::RegimeShift { .. } => "regime_shift",
        }
    }

    /// The paper-calibrated default parameters for each class, chosen
    /// so that intensity 1 is a severe but survivable campaign.
    pub fn default_params(name: &str) -> Option<FaultKind> {
        match name {
            "stuck" => Some(FaultKind::StuckAt {
                start_prob: 0.004,
                mean_len: 24.0,
            }),
            "drift" => Some(FaultKind::Drift {
                max_rate_per_day: 0.5,
            }),
            "spike" => Some(FaultKind::Spike {
                prob: 0.01,
                magnitude: 6.0,
            }),
            "garbage" => Some(FaultKind::Garbage {
                prob: 0.005,
                low: 90.0,
                high: 140.0,
            }),
            "skew" => Some(FaultKind::ClockSkew { max_slots: 6 }),
            "death" => Some(FaultKind::ChannelDeath),
            "outage" => Some(FaultKind::DayOutage { day_prob: 0.25 }),
            "regime_shift" => Some(FaultKind::RegimeShift {
                onset: 0.5,
                gain_delta: 0.6,
                offset: 1.5,
            }),
            _ => None,
        }
    }

    fn validate(&self) -> Result<()> {
        let bad = |reason: String| Err(FaultError::InvalidSpec { reason });
        match *self {
            FaultKind::StuckAt {
                start_prob,
                mean_len,
            } => {
                if !(0.0..=1.0).contains(&start_prob) {
                    return bad(format!("stuck start_prob {start_prob} outside [0, 1]"));
                }
                if !mean_len.is_finite() || mean_len < 1.0 {
                    return bad(format!("stuck mean_len {mean_len} must be >= 1"));
                }
            }
            FaultKind::Drift { max_rate_per_day } => {
                if !max_rate_per_day.is_finite() || max_rate_per_day <= 0.0 {
                    return bad(format!("drift rate {max_rate_per_day} must be positive"));
                }
            }
            FaultKind::Spike { prob, magnitude } => {
                if !(0.0..=1.0).contains(&prob) {
                    return bad(format!("spike prob {prob} outside [0, 1]"));
                }
                if !magnitude.is_finite() || magnitude <= 0.0 {
                    return bad(format!("spike magnitude {magnitude} must be positive"));
                }
            }
            FaultKind::Garbage { prob, low, high } => {
                if !(0.0..=1.0).contains(&prob) {
                    return bad(format!("garbage prob {prob} outside [0, 1]"));
                }
                if !low.is_finite() || !high.is_finite() || low > high {
                    return bad(format!(
                        "garbage band [{low}, {high}] must be finite and ordered"
                    ));
                }
            }
            FaultKind::ClockSkew { .. } | FaultKind::ChannelDeath => {}
            FaultKind::DayOutage { day_prob } => {
                if !(0.0..=1.0).contains(&day_prob) {
                    return bad(format!("outage day_prob {day_prob} outside [0, 1]"));
                }
            }
            FaultKind::RegimeShift {
                onset,
                gain_delta,
                offset,
            } => {
                if !(0.0..=1.0).contains(&onset) {
                    return bad(format!("regime_shift onset {onset} outside [0, 1]"));
                }
                if !gain_delta.is_finite() || gain_delta <= -1.0 {
                    return bad(format!(
                        "regime_shift gain_delta {gain_delta} must be finite and > -1"
                    ));
                }
                if !offset.is_finite() {
                    return bad(format!("regime_shift offset {offset} must be finite"));
                }
            }
        }
        Ok(())
    }
}

/// Which channels a directive targets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultTargets {
    /// Every channel in the dataset.
    All,
    /// The named channels only (each must exist).
    Channels(Vec<String>),
}

/// One injection directive: a fault class, its targets and an
/// intensity knob.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultDirective {
    /// The fault class and its parameters.
    pub kind: FaultKind,
    /// Which channels to corrupt.
    pub targets: FaultTargets,
    /// Severity in `[0, 1]`; `0` injects nothing, `1` applies the
    /// class parameters at full strength.
    pub intensity: f64,
}

impl FaultDirective {
    /// A directive over all channels.
    pub fn all(kind: FaultKind, intensity: f64) -> Self {
        FaultDirective {
            kind,
            targets: FaultTargets::All,
            intensity,
        }
    }

    /// A directive over the named channels.
    pub fn channels(kind: FaultKind, names: Vec<String>, intensity: f64) -> Self {
        FaultDirective {
            kind,
            targets: FaultTargets::Channels(names),
            intensity,
        }
    }

    fn validate(&self) -> Result<()> {
        if !(0.0..=1.0).contains(&self.intensity) {
            return Err(FaultError::InvalidSpec {
                reason: format!("intensity {} outside [0, 1]", self.intensity),
            });
        }
        self.kind.validate()
    }

    fn resolve_targets(&self, dataset: &Dataset) -> Result<Vec<usize>> {
        match &self.targets {
            FaultTargets::All => Ok((0..dataset.channel_count()).collect()),
            FaultTargets::Channels(names) => names
                .iter()
                .map(|n| {
                    dataset
                        .channel_index(n)
                        .ok_or_else(|| FaultError::UnknownChannel { name: n.clone() })
                })
                .collect(),
        }
    }
}

/// A seed-deterministic list of fault directives.
///
/// See the [module docs](self) for the determinism contract.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    seed: u64,
    directives: Vec<FaultDirective>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            directives: Vec::new(),
        }
    }

    /// Appends a directive (builder style).
    #[must_use]
    pub fn with(mut self, directive: FaultDirective) -> Self {
        self.directives.push(directive);
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The directives, in application order.
    pub fn directives(&self) -> &[FaultDirective] {
        &self.directives
    }

    /// Validates every directive without applying anything.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::InvalidSpec`] for the first inconsistent
    /// directive.
    pub fn validate(&self) -> Result<()> {
        for d in &self.directives {
            d.validate()?;
        }
        Ok(())
    }

    /// The RNG stream for directive `d` on channel `c` — the
    /// determinism contract's `f`/`g` mixing.
    fn stream(&self, d: usize, c: usize) -> StdRng {
        StdRng::seed_from_u64(
            self.seed
                ^ FAULT_STREAM_SALT
                ^ (d as u64)
                    .wrapping_add(1)
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                ^ (c as u64)
                    .wrapping_add(1)
                    .wrapping_mul(0xc2b2_ae3d_27d4_eb4f),
        )
    }

    /// Applies every directive to `dataset`, returning the faulted
    /// copy and the ground-truth log.
    ///
    /// # Errors
    ///
    /// * [`FaultError::InvalidSpec`] for inconsistent directives,
    /// * [`FaultError::UnknownChannel`] for a named target missing
    ///   from the dataset,
    /// * [`FaultError::TimeSeries`] if reassembly fails (a bug, since
    ///   injection only produces finite values and gaps).
    pub fn apply(&self, dataset: &Dataset) -> Result<(Dataset, FaultLog)> {
        self.validate()?;
        let grid = *dataset.grid();
        let days: Vec<i64> = grid.iter().map(|(_, t)| t.day()).collect();
        let step_minutes = f64::from(grid.step_minutes());

        let mut columns: Vec<(String, Vec<Option<f64>>)> = dataset
            .channels()
            .iter()
            .map(|ch| (ch.name().to_owned(), ch.values().to_vec()))
            .collect();
        let mut log = FaultLog::new();

        for (d, directive) in self.directives.iter().enumerate() {
            if directive.intensity <= 0.0 {
                continue;
            }
            let targets = directive.resolve_targets(dataset)?;
            if let FaultKind::DayOutage { day_prob } = directive.kind {
                // One whole-trace stream (channel index usize::MAX is
                // out of band for per-channel streams).
                let mut rng = self.stream(d, usize::MAX);
                let p = day_prob * directive.intensity;
                let mut unique_days: Vec<i64> = days.clone();
                unique_days.dedup();
                for day in unique_days {
                    if rng.gen::<f64>() < p {
                        for (_, values) in columns.iter_mut() {
                            for (i, v) in values.iter_mut().enumerate() {
                                if days[i] == day {
                                    *v = None;
                                }
                            }
                        }
                        log.push(FaultEvent::DayOutage { day });
                    }
                }
                continue;
            }
            for &c in &targets {
                let mut rng = self.stream(d, c);
                let (name, values) = &mut columns[c];
                apply_channel(
                    &directive.kind,
                    directive.intensity,
                    &mut rng,
                    name,
                    values,
                    step_minutes,
                    &mut log,
                );
            }
        }

        let channels = columns
            .into_iter()
            .map(|(name, values)| Channel::new(name, values))
            .collect::<std::result::Result<Vec<_>, _>>()?;
        let faulted = Dataset::new(grid, channels)?;
        Ok((faulted, log))
    }
}

/// Applies one single-channel fault class to a value column.
fn apply_channel(
    kind: &FaultKind,
    intensity: f64,
    rng: &mut StdRng,
    name: &str,
    values: &mut [Option<f64>],
    step_minutes: f64,
    log: &mut FaultLog,
) {
    let n = values.len();
    match *kind {
        FaultKind::StuckAt {
            start_prob,
            mean_len,
        } => {
            let p_start = start_prob * intensity;
            let p_end = 1.0 / mean_len.max(1.0);
            let mut i = 0usize;
            while i < n {
                let present = values[i].is_some();
                if present && rng.gen::<f64>() < p_start {
                    let held = values[i].unwrap_or_default();
                    let mut len = 1usize;
                    while rng.gen::<f64>() > p_end && len < MAX_STUCK_LEN {
                        len += 1;
                    }
                    let end = (i + len).min(n);
                    for v in values.iter_mut().take(end).skip(i) {
                        if v.is_some() {
                            *v = Some(held);
                        }
                    }
                    log.push(FaultEvent::StuckAt {
                        channel: name.to_owned(),
                        start: i,
                        end,
                        held,
                    });
                    i = end;
                } else {
                    // Advance the stream identically whether or not
                    // the slot is present, so gap patterns do not
                    // change where later bursts land.
                    if !present {
                        let _ = rng.gen::<f64>();
                    }
                    i += 1;
                }
            }
        }
        FaultKind::Drift { max_rate_per_day } => {
            if rng.gen::<f64>() >= intensity || n == 0 {
                return;
            }
            let start = rng.gen_range(0..n);
            let rate_per_day = max_rate_per_day * (0.25 + 0.75 * rng.gen::<f64>());
            let sign = if rng.gen::<f64>() < 0.5 { -1.0 } else { 1.0 };
            let rate_per_slot = sign * rate_per_day * step_minutes / 1440.0;
            for (k, v) in values.iter_mut().skip(start).enumerate() {
                if let Some(x) = v {
                    *x += rate_per_slot * (k + 1) as f64;
                }
            }
            log.push(FaultEvent::Drift {
                channel: name.to_owned(),
                start,
                rate_per_slot,
            });
        }
        FaultKind::Spike { prob, magnitude } => {
            let p = prob * intensity;
            for (i, v) in values.iter_mut().enumerate() {
                // Draw position and shape unconditionally so spike
                // placement is independent of gap patterns.
                let hit = rng.gen::<f64>() < p;
                let scale = 0.5 + rng.gen::<f64>();
                let sign = if rng.gen::<f64>() < 0.5 { -1.0 } else { 1.0 };
                if hit {
                    if let Some(x) = v {
                        let delta = sign * magnitude * scale;
                        *x += delta;
                        log.push(FaultEvent::Spike {
                            channel: name.to_owned(),
                            index: i,
                            delta,
                        });
                    }
                }
            }
        }
        FaultKind::Garbage { prob, low, high } => {
            let p = prob * intensity;
            for (i, v) in values.iter_mut().enumerate() {
                let hit = rng.gen::<f64>() < p;
                let frac = rng.gen::<f64>();
                if hit {
                    if let Some(x) = v {
                        let value = low + (high - low) * frac;
                        *x = value;
                        log.push(FaultEvent::Garbage {
                            channel: name.to_owned(),
                            index: i,
                            value,
                        });
                    }
                }
            }
        }
        FaultKind::ClockSkew { max_slots } => {
            let shift = cast::round_to_index(max_slots as f64 * intensity, n);
            if shift == 0 || n == 0 {
                return;
            }
            let late = rng.gen::<f64>() < 0.5;
            let old: Vec<Option<f64>> = values.to_vec();
            let signed: i64;
            if late {
                signed = i64::try_from(shift).unwrap_or(i64::MAX);
                for (i, v) in values.iter_mut().enumerate() {
                    *v = if i >= shift { old[i - shift] } else { None };
                }
            } else {
                signed = -i64::try_from(shift).unwrap_or(i64::MAX);
                for (i, v) in values.iter_mut().enumerate() {
                    *v = old.get(i + shift).copied().flatten();
                }
            }
            log.push(FaultEvent::ClockSkew {
                channel: name.to_owned(),
                shift: signed,
            });
        }
        FaultKind::ChannelDeath => {
            if rng.gen::<f64>() >= intensity || n == 0 {
                return;
            }
            let start = rng.gen_range(0..n);
            for v in values.iter_mut().skip(start) {
                *v = None;
            }
            log.push(FaultEvent::ChannelDeath {
                channel: name.to_owned(),
                start,
            });
        }
        FaultKind::DayOutage { .. } => {
            // Handled at the plan level (affects every channel).
        }
        FaultKind::RegimeShift {
            onset,
            gain_delta,
            offset,
        } => {
            let start = cast::round_to_index(onset * n as f64, n);
            if start >= n {
                return;
            }
            // Pre-onset operating point; a channel with no pre-onset
            // data re-expresses around its post-onset mean instead
            // (pure level shift semantics still hold).
            let pre: Vec<f64> = values.iter().take(start).filter_map(|v| *v).collect();
            let post: Vec<f64> = values.iter().skip(start).filter_map(|v| *v).collect();
            let basis = if pre.is_empty() { &post } else { &pre };
            if basis.is_empty() {
                return; // nothing present anywhere: exact no-op
            }
            let mean = basis.iter().sum::<f64>() / basis.len() as f64;
            let gain = 1.0 + gain_delta * intensity;
            let shift = offset * intensity;
            for x in values.iter_mut().skip(start).flatten() {
                *x = mean + (*x - mean) * gain + shift;
            }
            log.push(FaultEvent::RegimeShift {
                channel: name.to_owned(),
                start,
                gain,
                offset: shift,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thermal_timeseries::{TimeGrid, Timestamp};

    fn flat_dataset(n: usize, channels: usize) -> Dataset {
        let grid = TimeGrid::new(Timestamp::from_minutes(0), 5, n).unwrap();
        let chans = (0..channels)
            .map(|c| Channel::from_values(format!("t{c:02}"), vec![20.0 + c as f64; n]).unwrap())
            .collect();
        Dataset::new(grid, chans).unwrap()
    }

    #[test]
    fn zero_intensity_is_identity() {
        let ds = flat_dataset(500, 3);
        let mut plan = FaultPlan::new(9);
        for name in [
            "stuck",
            "drift",
            "spike",
            "garbage",
            "skew",
            "death",
            "outage",
            "regime_shift",
        ] {
            let kind = FaultKind::default_params(name).unwrap();
            plan = plan.with(FaultDirective::all(kind, 0.0));
        }
        let (faulted, log) = plan.apply(&ds).unwrap();
        assert!(log.is_clean());
        assert_eq!(faulted, ds);
    }

    #[test]
    fn apply_is_deterministic_in_seed() {
        let ds = flat_dataset(800, 4);
        let plan = |seed| {
            FaultPlan::new(seed)
                .with(FaultDirective::all(
                    FaultKind::default_params("spike").unwrap(),
                    0.8,
                ))
                .with(FaultDirective::all(
                    FaultKind::default_params("stuck").unwrap(),
                    0.8,
                ))
        };
        let (a, log_a) = plan(1).apply(&ds).unwrap();
        let (b, log_b) = plan(1).apply(&ds).unwrap();
        assert_eq!(a, b);
        assert_eq!(log_a, log_b);
        let (c, _) = plan(2).apply(&ds).unwrap();
        assert_ne!(a, c, "different seeds must inject differently");
    }

    #[test]
    fn directives_are_stream_independent() {
        let ds = flat_dataset(600, 2);
        let spike = FaultDirective::all(FaultKind::default_params("spike").unwrap(), 0.5);
        let solo = FaultPlan::new(3).with(spike.clone());
        let (_, solo_log) = solo.apply(&ds).unwrap();
        // Prepending an unrelated zero-effect directive must not move
        // the spike positions (directive index keys the stream, and
        // the spike directive keeps its index when we append first).
        let paired = FaultPlan::new(3)
            .with(spike)
            .with(FaultDirective::all(FaultKind::ChannelDeath, 0.0));
        let (_, paired_log) = paired.apply(&ds).unwrap();
        let spikes =
            |log: &FaultLog| log.corrupted_slots("t00", 600).len() + log.count_kind("spike");
        assert_eq!(spikes(&solo_log), spikes(&paired_log));
    }

    #[test]
    fn stuck_freezes_runs() {
        let grid = TimeGrid::new(Timestamp::from_minutes(0), 5, 400).unwrap();
        let ramp: Vec<f64> = (0..400).map(|i| i as f64 * 0.01).collect();
        let ds = Dataset::new(grid, vec![Channel::from_values("a", ramp).unwrap()]).unwrap();
        let plan = FaultPlan::new(11).with(FaultDirective::all(
            FaultKind::StuckAt {
                start_prob: 0.02,
                mean_len: 10.0,
            },
            1.0,
        ));
        let (faulted, log) = plan.apply(&ds).unwrap();
        assert!(log.count_kind("stuck") >= 1);
        for event in log.events() {
            if let FaultEvent::StuckAt {
                start, end, held, ..
            } = event
            {
                for i in *start..*end {
                    assert_eq!(faulted.channel("a").unwrap().value(i), Some(*held));
                }
            }
        }
    }

    #[test]
    fn death_erases_the_tail_and_outage_erases_days() {
        let ds = flat_dataset(288 * 3, 2); // 3 days at 5-minute sampling
        let plan = FaultPlan::new(5)
            .with(FaultDirective::channels(
                FaultKind::ChannelDeath,
                vec!["t00".into()],
                1.0,
            ))
            .with(FaultDirective::all(
                FaultKind::DayOutage { day_prob: 1.0 },
                1.0,
            ));
        let (faulted, log) = plan.apply(&ds).unwrap();
        assert_eq!(log.count_kind("death"), 1);
        assert_eq!(log.outage_days(), vec![0, 1, 2]);
        // Everything is gone on outage days; t00 is also dark after
        // its death onset.
        for ch in faulted.channels() {
            assert_eq!(ch.present_count(), 0);
        }
        // The log's lost mask reproduces exactly the missing slots.
        let mask = log.lost_mask("t00", 288 * 3, |i| (i / 288) as i64);
        assert_eq!(mask.count(), 288 * 3);
    }

    #[test]
    fn skew_shifts_the_timeline() {
        let grid = TimeGrid::new(Timestamp::from_minutes(0), 5, 100).unwrap();
        let ramp: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let ds = Dataset::new(grid, vec![Channel::from_values("a", ramp).unwrap()]).unwrap();
        let plan = FaultPlan::new(2).with(FaultDirective::all(
            FaultKind::ClockSkew { max_slots: 4 },
            1.0,
        ));
        let (faulted, log) = plan.apply(&ds).unwrap();
        let FaultEvent::ClockSkew { shift, .. } = log.events()[0] else {
            panic!("expected a skew event");
        };
        assert_eq!(shift.unsigned_abs(), 4);
        let ch = faulted.channel("a").unwrap();
        if shift > 0 {
            assert_eq!(ch.value(0), None);
            assert_eq!(ch.value(4), Some(0.0));
        } else {
            assert_eq!(ch.value(0), Some(4.0));
            assert_eq!(ch.value(99), None);
        }
    }

    #[test]
    fn garbage_is_implausible_but_finite() {
        let ds = flat_dataset(2000, 1);
        let plan = FaultPlan::new(8).with(FaultDirective::all(
            FaultKind::Garbage {
                prob: 0.02,
                low: 90.0,
                high: 140.0,
            },
            1.0,
        ));
        let (faulted, log) = plan.apply(&ds).unwrap();
        assert!(log.count_kind("garbage") > 5);
        for event in log.events() {
            if let FaultEvent::Garbage { index, value, .. } = event {
                assert!((90.0..=140.0).contains(value));
                assert_eq!(faulted.channel("t00").unwrap().value(*index), Some(*value));
            }
        }
    }

    #[test]
    fn invalid_directives_are_rejected() {
        let ds = flat_dataset(10, 1);
        let bad_intensity =
            FaultPlan::new(0).with(FaultDirective::all(FaultKind::ChannelDeath, 2.0));
        assert!(matches!(
            bad_intensity.apply(&ds),
            Err(FaultError::InvalidSpec { .. })
        ));
        let bad_band = FaultPlan::new(0).with(FaultDirective::all(
            FaultKind::Garbage {
                prob: 0.1,
                low: 10.0,
                high: -10.0,
            },
            0.5,
        ));
        assert!(matches!(
            bad_band.apply(&ds),
            Err(FaultError::InvalidSpec { .. })
        ));
        let unknown = FaultPlan::new(0).with(FaultDirective::channels(
            FaultKind::ChannelDeath,
            vec!["nope".into()],
            0.5,
        ));
        assert!(matches!(
            unknown.apply(&ds),
            Err(FaultError::UnknownChannel { .. })
        ));
    }

    #[test]
    fn regime_shift_rescales_the_tail_deterministically() {
        let grid = TimeGrid::new(Timestamp::from_minutes(0), 5, 200).unwrap();
        // Oscillation around 20 so gain and offset are separable.
        let wave: Vec<f64> = (0..200).map(|k| 20.0 + (k as f64 * 0.3).sin()).collect();
        let ds =
            Dataset::new(grid, vec![Channel::from_values("a", wave.clone()).unwrap()]).unwrap();
        let kind = FaultKind::RegimeShift {
            onset: 0.5,
            gain_delta: 0.6,
            offset: 1.5,
        };
        let plan = FaultPlan::new(4).with(FaultDirective::all(kind.clone(), 1.0));
        let (faulted, log) = plan.apply(&ds).unwrap();
        assert_eq!(log.count_kind("regime_shift"), 1);
        let FaultEvent::RegimeShift {
            start,
            gain,
            offset,
            ..
        } = &log.events()[0]
        else {
            panic!("expected a regime_shift event");
        };
        assert_eq!(*start, 100);
        let ch = faulted.channel("a").unwrap();
        // Pre-onset untouched.
        for i in 0..100 {
            assert_eq!(ch.value(i), Some(wave[i]));
        }
        // Post-onset follows the documented transform exactly.
        let mean = wave.iter().take(100).sum::<f64>() / 100.0;
        for (i, &truth) in wave.iter().enumerate().skip(100) {
            let expect = mean + (truth - mean) * gain + offset;
            assert_eq!(ch.value(i), Some(expect));
        }
        // The log marks exactly the shifted tail as corrupted.
        assert_eq!(log.corrupted_slots("a", 200).len(), 100);
        // Determinism: no RNG involved, so the faulted trace is
        // identical under any seed.
        let (again, _) = FaultPlan::new(99)
            .with(FaultDirective::all(kind, 1.0))
            .apply(&ds)
            .unwrap();
        assert_eq!(faulted, again);
    }

    #[test]
    fn regime_shift_validation() {
        for kind in [
            FaultKind::RegimeShift {
                onset: 1.5,
                gain_delta: 0.5,
                offset: 0.0,
            },
            FaultKind::RegimeShift {
                onset: 0.5,
                gain_delta: -1.0,
                offset: 0.0,
            },
            FaultKind::RegimeShift {
                onset: 0.5,
                gain_delta: 0.5,
                offset: f64::NAN,
            },
        ] {
            assert!(FaultPlan::new(0)
                .with(FaultDirective::all(kind, 0.5))
                .validate()
                .is_err());
        }
    }

    #[test]
    fn default_params_cover_every_class() {
        for name in [
            "stuck",
            "drift",
            "spike",
            "garbage",
            "skew",
            "death",
            "outage",
            "regime_shift",
        ] {
            let kind = FaultKind::default_params(name).unwrap();
            assert_eq!(kind.name(), name);
            assert!(kind.validate().is_ok());
        }
        assert!(FaultKind::default_params("zzz").is_none());
    }
}
