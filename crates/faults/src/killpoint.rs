//! Kill-point injection: deterministic process abort at the *k*-th
//! durable write.
//!
//! The chaos harness (`cargo xtask chaos`) needs to crash the process
//! at every point where on-disk state changes, then prove that a
//! resumed run converges to the byte-identical final artifacts. This
//! module is the crash trigger: `thermal-ckpt` calls
//! [`durable_write_tick`] immediately *before* each atomic commit
//! (the rename that publishes a temp file), and when the process-wide
//! write counter reaches the configured kill point the process exits
//! with [`KILL_EXIT_CODE`] — the commit never happens, exactly like a
//! power cut between `write` and `rename`.
//!
//! # Configuration (environment)
//!
//! * [`KILL_AT_ENV`] (`THERMAL_KILL_AT`) — explicit kill point: abort
//!   instead of performing the `k`-th durable write (1-based).
//! * [`KILL_SEED_ENV`] (`THERMAL_KILL_SEED`) — seeded kill point
//!   `"<seed>,<range>"`: the kill point is drawn deterministically
//!   from `1..=range` using the same `StdRng` generator (and the same
//!   salt-mixing idiom) as [`crate::FaultPlan`]'s fault streams, so a
//!   chaos campaign can cover random write indices reproducibly.
//!   Ignored when `THERMAL_KILL_AT` is set.
//!
//! Unset (the normal case) means the counter still counts — so a
//! clean run can report how many durable writes a workload performs —
//! but nothing ever aborts.
//!
//! # Determinism
//!
//! The kill point is resolved once (first tick) from the environment
//! and never changes within a process; the counter is a plain atomic
//! increment. Two runs of the same workload with the same environment
//! abort at the identical write.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};

/// Environment variable naming the explicit 1-based kill write index.
pub const KILL_AT_ENV: &str = "THERMAL_KILL_AT";

/// Environment variable holding a seeded kill spec `"<seed>,<range>"`.
pub const KILL_SEED_ENV: &str = "THERMAL_KILL_SEED";

/// Exit code of a kill-point abort, distinguishable from both success
/// and ordinary failures by the chaos driver.
pub const KILL_EXIT_CODE: i32 = 86;

/// Salt decorrelating the kill-point stream from the fault-injection
/// streams derived from the same user seed.
const KILL_STREAM_SALT: u64 = 0x6B69_6C6C_7074_5F31;

static WRITES: AtomicU64 = AtomicU64::new(0);
static TARGET: OnceLock<Option<u64>> = OnceLock::new();

/// Parses the kill-point configuration from explicit env values
/// (exposed for tests; the process reads the real environment once).
///
/// Returns the 1-based write index to abort at, or `None` when no
/// kill is configured or the spec is malformed (a malformed spec is
/// deliberately inert: the chaos driver controls these variables, and
/// an inert typo is diagnosable from the "durable writes" report
/// while a panicking library is not).
pub fn parse_kill_spec(kill_at: Option<&str>, kill_seed: Option<&str>) -> Option<u64> {
    if let Some(raw) = kill_at {
        return raw.trim().parse::<u64>().ok().filter(|&k| k > 0);
    }
    let raw = kill_seed?;
    let (seed, range) = raw.trim().split_once(',')?;
    let seed: u64 = seed.trim().parse().ok()?;
    let range: u64 = range.trim().parse().ok().filter(|&r| r > 0)?;
    Some(seeded_kill_point(seed, range))
}

/// The deterministic kill point drawn from `1..=range` for `seed` —
/// the value `THERMAL_KILL_SEED="<seed>,<range>"` resolves to.
pub fn seeded_kill_point(seed: u64, range: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed ^ KILL_STREAM_SALT);
    rng.gen_range(1..=range)
}

// Designated config surface (CONFIG_MODULES in xtask): the one place
// the kill-point spec may be read from the environment.
#[allow(clippy::disallowed_methods)]
fn target() -> Option<u64> {
    *TARGET.get_or_init(|| {
        parse_kill_spec(
            std::env::var(KILL_AT_ENV).ok().as_deref(),
            std::env::var(KILL_SEED_ENV).ok().as_deref(),
        )
    })
}

/// Records one imminent durable write; aborts the process with
/// [`KILL_EXIT_CODE`] when this write is the configured kill point.
///
/// Callers (the atomic-write helper in `thermal-ckpt`) invoke this
/// *before* the rename that publishes the write, so an abort leaves
/// the previous on-disk state untouched.
pub fn durable_write_tick() {
    let n = WRITES.fetch_add(1, Ordering::SeqCst) + 1;
    if let Some(k) = target() {
        if n == k {
            eprintln!("thermal-faults: kill-point reached at durable write {k}; aborting");
            std::process::exit(KILL_EXIT_CODE);
        }
    }
}

/// Number of durable writes ticked so far in this process.
pub fn durable_writes() -> u64 {
    WRITES.load(Ordering::SeqCst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_kill_at_wins_and_validates() {
        assert_eq!(parse_kill_spec(Some("7"), None), Some(7));
        assert_eq!(parse_kill_spec(Some(" 12 "), Some("1,5")), Some(12));
        assert_eq!(parse_kill_spec(Some("0"), None), None);
        assert_eq!(parse_kill_spec(Some("garbage"), None), None);
        assert_eq!(parse_kill_spec(None, None), None);
    }

    #[test]
    fn seeded_spec_is_deterministic_and_in_range() {
        let a = parse_kill_spec(None, Some("42,10"));
        let b = parse_kill_spec(None, Some("42,10"));
        assert_eq!(a, b);
        let k = a.expect("valid spec must resolve");
        assert!((1..=10).contains(&k));
        // Different seeds cover different points (not a fixed value).
        let distinct: std::collections::BTreeSet<u64> =
            (0..32).map(|s| seeded_kill_point(s, 1000)).collect();
        assert!(distinct.len() > 16, "seeded points should spread");
    }

    #[test]
    fn malformed_seed_specs_are_inert() {
        for spec in ["", "42", "42,", ",10", "a,b", "42,0"] {
            assert_eq!(parse_kill_spec(None, Some(spec)), None, "spec {spec:?}");
        }
    }

    #[test]
    fn tick_counts_without_a_target() {
        // No kill env in the test process: ticking must only count.
        let before = durable_writes();
        durable_write_tick();
        durable_write_tick();
        assert!(durable_writes() >= before + 2);
    }
}
