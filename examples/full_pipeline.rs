//! The full evaluation protocol of the paper on a medium campaign:
//! usable-day accounting, train/validation split, dense first- vs
//! second-order identification (Table I's comparison), and the
//! reduced-model pipeline (Fig. 11's metric).
//!
//! ```sh
//! cargo run --release -p thermal-core --example full_pipeline
//! ```

// Examples are demos: panicking with a clear message is the right UX.
#![allow(clippy::expect_used, clippy::unwrap_used)]
use thermal_core::timeseries::{split, Mask};
use thermal_core::{
    ClusterCount, EvalConfig, FitConfig, ModelOrder, ModelSpec, SelectorKind, Similarity,
    ThermalPipeline,
};
use thermal_sim::{run, Scenario};
use thermal_sysid::{evaluate, identify};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 40-day campaign with realistic telemetry failures.
    let mut scenario = Scenario::paper().with_days(40).with_seed(2013);
    scenario.min_usable_days = 26;
    let output = run(&scenario)?;
    let dataset = &output.dataset;
    let grid = dataset.grid();

    // Usable-day accounting (the paper kept 64 of 98 days).
    let temps = output.temperature_channels();
    let temp_idx: Vec<usize> = temps
        .iter()
        .map(|n| dataset.channel_index(n).expect("simulated channel"))
        .collect();
    let usable = dataset.usable_days(&temp_idx, 0.5)?;
    println!(
        "usable days: {} of {} (outages: {:?})",
        usable.len(),
        scenario.days,
        output.outage_days
    );

    // First half trains, second half validates.
    let halves = split::halves(&usable)?;
    let occupied = Mask::daily_window(grid, 6 * 60, 21 * 60)?;
    let train = Mask::days(grid, &halves.train).and(&occupied)?;
    let validation = Mask::days(grid, &halves.validation).and(&occupied)?;

    // Dense identification: first vs second order, 13.5 h open loop.
    let inputs = output.input_channels();
    let horizon = thermal_linalg::cast::floor_to_index(
        13.5 * 60.0 / f64::from(grid.step_minutes()),
        usize::MAX - 1,
    );
    println!("\ndense models (all 27 temperature channels), occupied mode:");
    for order in [ModelOrder::First, ModelOrder::Second] {
        let spec = ModelSpec::new(temps.clone(), inputs.clone(), order)?;
        let model = identify(dataset, &spec, &train, &FitConfig::default())?;
        let report = evaluate(
            &model,
            dataset,
            &validation,
            &EvalConfig::with_horizon(horizon),
        )?;
        println!(
            "  {order}: per-sensor RMS 90th pct {:.3} degC (range {:.2}-{:.2}, {} segments)",
            report.rms_percentile(90.0)?,
            report
                .per_sensor_rms()
                .iter()
                .cloned()
                .fold(f64::INFINITY, f64::min),
            report
                .per_sensor_rms()
                .iter()
                .cloned()
                .fold(f64::NEG_INFINITY, f64::max),
            report.segment_count()
        );
    }

    // The reduced pipeline: cluster -> select -> identify, then ask
    // how well the small model tracks the cluster thermal means.
    println!("\nreduced model (pipeline):");
    let sensor_refs: Vec<&str> = temps.iter().map(String::as_str).collect();
    let input_refs: Vec<&str> = inputs.iter().map(String::as_str).collect();
    let pipeline = ThermalPipeline::builder()
        .similarity(Similarity::correlation())
        .cluster_count(ClusterCount::Fixed(2))
        .selector(SelectorKind::NearMean)
        .model_order(ModelOrder::Second)
        .build()?;
    let reduced = pipeline.fit(dataset, &sensor_refs, &input_refs, &train)?;
    println!("  kept sensors: {:?}", reduced.selected_channels());
    let report = reduced.evaluate_cluster_means(dataset, &validation, horizon)?;
    println!(
        "  cluster-mean error: rms {:.3} degC, 99th pct {:.3} degC",
        report.rms()?,
        report.percentile(99.0)?
    );
    Ok(())
}
