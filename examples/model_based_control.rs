//! Closing the loop: identify a reduced model with the pipeline, then
//! use it for receding-horizon flow planning — the HVAC-control
//! application the paper motivates.
//!
//! ```sh
//! cargo run --release -p thermal-core --example model_based_control
//! ```

// Examples are demos: panicking with a clear message is the right UX.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]
use thermal_core::control::{ComfortBand, ControlConfig, FlowPlanner};
use thermal_core::timeseries::Mask;
use thermal_core::{ClusterCount, ModelOrder, SelectorKind, Similarity, ThermalPipeline};
use thermal_linalg::Matrix;
use thermal_sim::{run, Scenario};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Identify a reduced second-order model on two weeks of data.
    let output = run(&Scenario::quick().with_days(14).with_seed(21))?;
    let dataset = &output.dataset;
    let occupied = Mask::daily_window(dataset.grid(), 6 * 60, 21 * 60)?;
    let temps = output.temperature_channels();
    let sensor_refs: Vec<&str> = temps.iter().map(String::as_str).collect();
    let inputs = output.input_channels();
    let input_refs: Vec<&str> = inputs.iter().map(String::as_str).collect();

    let reduced = ThermalPipeline::builder()
        .similarity(Similarity::correlation())
        .cluster_count(ClusterCount::Fixed(2))
        .selector(SelectorKind::NearMean)
        .model_order(ModelOrder::Second)
        .build()?
        .fit(dataset, &sensor_refs, &input_refs, &occupied)?;
    let model = reduced.model();
    println!(
        "planning on a {} model of {:?}",
        model.spec().order,
        reduced.selected_channels()
    );

    // Build a 6-hour planning problem: flows at their maximum in the
    // baseline (the planner scales them down), a seminar-sized heat
    // load arriving mid-window, ambient at a mild 12 degC.
    let steps = 72; // 6 h at 5-minute steps
    let vav_max = 0.6;
    let baseline = Matrix::from_fn(steps, model.spec().input_count(), |r, c| {
        match model.spec().inputs[c].as_str() {
            "vav1" | "vav2" | "vav3" | "vav4" => vav_max,
            "occupancy" => {
                if (24..42).contains(&r) {
                    85.0 // a 90-minute full-house seminar
                } else {
                    0.0
                }
            }
            "lighting" => {
                if (21..45).contains(&r) {
                    1.0
                } else {
                    0.0
                }
            }
            "ambient" => 12.0,
            other => panic!("unexpected input channel {other}"),
        }
    });

    // Start from a typical morning state.
    let p = model.spec().output_count();
    let initial = Matrix::from_fn(model.spec().order.warmup(), p, |_, _| 20.6);

    let flow_names: Vec<&str> = model
        .spec()
        .inputs
        .iter()
        .filter(|n| n.starts_with("vav"))
        .map(String::as_str)
        .collect();
    let config = ControlConfig {
        band: ComfortBand::new(19.8, 21.6)?,
        lookahead: 6,
        flow_levels: vec![0.1, 0.25, 0.4, 0.6, 0.8, 1.0],
    };
    let planner = FlowPlanner::new(model, config, &flow_names)?;
    let plan = planner.plan(&initial, &baseline)?;

    println!("\n  t+min  occupancy  flow scale  predicted (degC)");
    for k in (0..steps).step_by(6) {
        let occ_col = model
            .spec()
            .inputs
            .iter()
            .position(|n| n == "occupancy")
            .expect("occupancy input");
        println!(
            "  {:>5}  {:>9.0}  {:>10.2}  {:?}",
            k * 5,
            baseline[(k, occ_col)],
            plan.scale[k],
            plan.predicted
                .row(k)
                .iter()
                .map(|v| (v * 100.0).round() / 100.0)
                .collect::<Vec<_>>()
        );
    }
    println!(
        "\nmean flow scale {:.2} (vs 1.00 always-max), worst band violation {:.2} degC, {} infeasible steps",
        plan.mean_scale(),
        plan.worst_violation(&planner.config().band),
        plan.infeasible_steps.len()
    );

    // The economic claim: compare against the naive always-max policy.
    let always_max = plan.scale.iter().map(|_| 1.0).sum::<f64>();
    let planned = plan.scale.iter().sum::<f64>();
    println!(
        "supply-air volume saved vs always-max: {:.0}%",
        100.0 * (1.0 - planned / always_max)
    );
    Ok(())
}
