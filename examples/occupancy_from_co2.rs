//! Occupancy estimation from the CO₂ channel — the paper's stated
//! future work ("In the future, occupancy could be measured
//! automatically"), solved with the physics the dataset already
//! carries.
//!
//! The HVAC portal logs room CO₂. Inverting the well-mixed mass
//! balance
//!
//! ```text
//! V dC/dt = g·n·1e6 − Q·(C − C_out)
//! ```
//!
//! for `n` (headcount) needs only the recorded CO₂, the recorded VAV
//! flows `Q`, and two constants (room volume, per-person generation).
//! This example estimates headcount that way and scores it against
//! the webcam ground truth.
//!
//! ```sh
//! cargo run --release -p thermal-core --example occupancy_from_co2
//! ```

// Examples are demos: panicking with a clear message is the right UX.
#![allow(clippy::expect_used, clippy::unwrap_used)]
use thermal_core::timeseries::Mask;
use thermal_sim::{run, Scenario};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let output = run(&Scenario::quick().with_days(10).with_seed(33))?;
    let dataset = &output.dataset;
    let grid = dataset.grid();
    let step_s = grid.step_minutes() as f64 * 60.0;

    // Physics constants the estimator assumes (matching the plant).
    let volume = output.layout.air_volume();
    let gen_ppm = output.scenario.thermal.co2_gen_per_person * 1.0e6;
    let ambient_ppm = output.scenario.thermal.co2_ambient_ppm;

    let co2 = dataset.channel("co2").expect("portal channel");
    let occupancy = dataset.channel("occupancy").expect("webcam channel");
    let vavs: Vec<_> = (1..=4)
        .map(|i| dataset.channel(&format!("vav{i}")).expect("vav channel"))
        .collect();

    // Estimate over the occupied window; central-difference dC/dt.
    let occupied = Mask::daily_window(grid, 6 * 60, 21 * 60)?;
    let mut rows: Vec<(usize, f64, f64)> = Vec::new(); // (idx, est, truth)
    for i in 1..grid.len() - 1 {
        if !occupied.get(i) {
            continue;
        }
        let (Some(c_prev), Some(c_next), Some(c_now)) =
            (co2.value(i - 1), co2.value(i + 1), co2.value(i))
        else {
            continue;
        };
        let Some(truth) = occupancy.value(i) else {
            continue;
        };
        let q: f64 = vavs.iter().filter_map(|v| v.value(i)).sum();
        let dc_dt = (c_next - c_prev) / (2.0 * step_s);
        let n_est = (volume * dc_dt + q * (c_now - ambient_ppm)) / gen_ppm;
        rows.push((i, n_est.max(0.0), truth));
    }

    // Smooth the raw estimate with a short moving average (the CO2
    // derivative amplifies quantisation).
    let window = 5usize;
    let smoothed: Vec<f64> = (0..rows.len())
        .map(|k| {
            let lo = k.saturating_sub(window / 2);
            let hi = (k + window / 2 + 1).min(rows.len());
            rows[lo..hi].iter().map(|r| r.1).sum::<f64>() / (hi - lo) as f64
        })
        .collect();

    let mut sq_err = 0.0;
    let mut abs_err = 0.0;
    for (k, row) in rows.iter().enumerate() {
        let e = smoothed[k] - row.2;
        sq_err += e * e;
        abs_err += e.abs();
    }
    let n = rows.len() as f64;
    println!(
        "estimated occupancy from CO2 at {} instants: RMSE {:.1} people, MAE {:.1} people",
        rows.len(),
        (sq_err / n).sqrt(),
        abs_err / n
    );

    // Show one afternoon.
    println!("\n  time        CO2(ppm)  est  truth");
    for (k, &(i, _, truth)) in rows.iter().enumerate() {
        let t = grid.timestamp(i)?;
        if t.day() == 1 && t.minute_of_day() % 30 == 0 && (600..=1000).contains(&t.minute_of_day())
        {
            println!(
                "  {t}  {:>8.0}  {:>3.0}  {:>5.0}",
                co2.value(i).unwrap_or(f64::NAN),
                smoothed[k],
                truth
            );
        }
    }
    Ok(())
}
