//! Comfort audit: the motivation behind the paper's clustering.
//!
//! During a full-house seminar the auditorium develops a ~2 °C
//! front-to-back spread; by Fanger's PMV model that is ≈0.5 comfort
//! votes — the difference between "neutral" and "slightly warm". A
//! single thermostat cannot see this. This example reproduces that
//! argument end-to-end on simulated data.
//!
//! ```sh
//! cargo run --release -p thermal-core --example comfort_audit
//! ```

// Examples are demos: panicking with a clear message is the right UX.
#![allow(clippy::expect_used, clippy::unwrap_used)]
use thermal_comfort::{pmv, ppd, Environment, Sensation};
use thermal_sim::{run, Scenario};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let output = run(&Scenario::quick().with_days(14).with_seed(5))?;
    let dataset = &output.clean_dataset;
    let grid = dataset.grid();

    // Find the most crowded instant of the campaign.
    let occupancy = dataset.channel("occupancy").expect("simulated channel");
    let (mut peak_idx, mut peak_count) = (0, 0.0);
    for (i, _) in grid.iter() {
        if let Some(o) = occupancy.value(i) {
            if o > peak_count {
                peak_count = o;
                peak_idx = i;
            }
        }
    }
    println!(
        "most crowded instant: {} with {} occupants",
        grid.timestamp(peak_idx)?,
        peak_count
    );

    // Temperature and comfort at every sensor location.
    let mut rows: Vec<(String, f64, f64)> = Vec::new();
    for name in output.temperature_channels() {
        let temp = dataset
            .channel(&name)
            .and_then(|c| c.value(peak_idx))
            .expect("clean dataset has no gaps");
        let vote = pmv(&Environment::auditorium(temp))?;
        rows.push((name, temp, vote));
    }
    rows.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite temperatures"));

    println!("\nlocation   temp     PMV    PPD    sensation");
    for (name, temp, vote) in &rows {
        println!(
            "  {name}   {temp:5.2}  {vote:+5.2}  {:4.1}%  {}",
            ppd(*vote),
            Sensation::from_pmv(*vote)
        );
    }

    let (coldest, warmest) = (
        rows.first().expect("sensors"),
        rows.last().expect("sensors"),
    );
    let temp_spread = warmest.1 - coldest.1;
    let pmv_spread = warmest.2 - coldest.2;
    println!(
        "\nspatial spread: {temp_spread:.2} degC -> {pmv_spread:.2} PMV \
         ({} at {} vs {} at {})",
        Sensation::from_pmv(coldest.2),
        coldest.0,
        Sensation::from_pmv(warmest.2),
        warmest.0
    );
    println!(
        "rule of thumb check: 2 degC is {:.2} PMV for this audience",
        pmv(&Environment::auditorium(22.0))? - pmv(&Environment::auditorium(20.0))?
    );
    Ok(())
}
