//! Sensor-placement shoot-out: the paper's Table II on synthetic
//! data. Compares near-mean (SMS), stratified random (SRS), plain
//! random (RS), the installed thermostats, and Gaussian-process
//! mutual-information placement at predicting cluster thermal means.
//!
//! ```sh
//! cargo run --release -p thermal-core --example sensor_placement
//! ```

// Examples are demos: panicking with a clear message is the right UX.
#![allow(clippy::expect_used, clippy::unwrap_used)]
use thermal_cluster::{
    cluster_trajectories, trajectory_matrix, ClusterCount, Similarity, SpectralConfig,
};
use thermal_core::timeseries::{split, Mask};
use thermal_select::{
    cluster_mean_errors, FixedSelector, GpSelector, NearMeanSelector, RandomSelector,
    SelectionInput, Selector, StratifiedRandomSelector,
};
use thermal_sim::{run, Scenario};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut scenario = Scenario::paper().with_days(40).with_seed(99);
    scenario.min_usable_days = 26;
    let output = run(&scenario)?;
    let dataset = &output.dataset;
    let grid = dataset.grid();

    let temps = output.temperature_channels();
    let refs: Vec<&str> = temps.iter().map(String::as_str).collect();
    let temp_idx: Vec<usize> = temps
        .iter()
        .map(|n| dataset.channel_index(n).expect("simulated channel"))
        .collect();
    let usable = dataset.usable_days(&temp_idx, 0.5)?;
    let halves = split::halves(&usable)?;
    let occupied = Mask::daily_window(grid, 6 * 60, 21 * 60)?;
    let train_mask = Mask::days(grid, &halves.train).and(&occupied)?;
    let val_mask = Mask::days(grid, &halves.validation).and(&occupied)?;

    // Cluster on training data (correlation similarity, two zones).
    let train_traj = trajectory_matrix(dataset, &refs, &train_mask)?;
    let val_traj = trajectory_matrix(dataset, &refs, &val_mask)?;
    let clustering = cluster_trajectories(
        &train_traj,
        &SpectralConfig {
            similarity: Similarity::correlation(),
            count: ClusterCount::Fixed(2),
            seed: 7,
            restarts: 8,
        },
    )?;
    for (c, members) in clustering.clusters().iter().enumerate() {
        let names: Vec<&str> = members.iter().map(|&i| refs[i]).collect();
        println!("cluster {c}: {names:?}");
    }

    // The contenders. Thermostats are channels t40/t41.
    let thermostats: Vec<usize> = refs
        .iter()
        .enumerate()
        .filter(|(_, n)| **n == "t40" || **n == "t41")
        .map(|(i, _)| i)
        .collect();
    let selectors: Vec<Box<dyn Selector>> = vec![
        Box::new(NearMeanSelector),
        Box::new(StratifiedRandomSelector),
        Box::new(RandomSelector),
        Box::new(FixedSelector::thermostats(thermostats)),
        Box::new(GpSelector),
    ];

    println!("\n99th-percentile cluster-mean prediction error (1 sensor per cluster):");
    for selector in &selectors {
        // Average the stochastic strategies over several seeds.
        let mut p99 = Vec::new();
        for seed in 0..10_u64 {
            let selection = selector.select(&SelectionInput {
                trajectories: &train_traj,
                clustering: &clustering,
                per_cluster: 1,
                seed: 1000 + seed,
            })?;
            let report = cluster_mean_errors(&val_traj, &clustering, &selection)?;
            p99.push(report.percentile(99.0)?);
        }
        let mean = p99.iter().sum::<f64>() / p99.len() as f64;
        println!("  {:12} {:.2} degC", selector.name(), mean);
    }

    // Fig. 9's trend: more sensors per cluster help SRS.
    println!("\nSRS error vs sensors per cluster:");
    for per_cluster in 1..=6 {
        let mut p99 = Vec::new();
        for seed in 0..10_u64 {
            let selection = StratifiedRandomSelector.select(&SelectionInput {
                trajectories: &train_traj,
                clustering: &clustering,
                per_cluster,
                seed: 2000 + seed,
            })?;
            let report = cluster_mean_errors(&val_traj, &clustering, &selection)?;
            p99.push(report.percentile(99.0)?);
        }
        let mean = p99.iter().sum::<f64>() / p99.len() as f64;
        println!("  {per_cluster} per cluster: {mean:.2} degC");
    }
    Ok(())
}
