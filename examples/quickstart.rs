//! Quickstart: simulate a short instrumented campaign, run the
//! paper's three-step pipeline, and inspect what it produced.
//!
//! ```sh
//! cargo run --release -p thermal-core --example quickstart
//! ```

use thermal_core::timeseries::Mask;
use thermal_core::{ClusterCount, ModelOrder, SelectorKind, Similarity, ThermalPipeline};
use thermal_sim::{run, Scenario};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Get data: a two-week synthetic campaign of the instrumented
    //    auditorium (25 wireless sensors + 2 thermostats, 4 VAVs,
    //    occupancy, lighting, ambient).
    let output = run(&Scenario::quick().with_days(14).with_seed(42))?;
    let dataset = &output.dataset;
    println!(
        "campaign: {} channels x {} samples ({} days)",
        dataset.channel_count(),
        dataset.grid().len(),
        output.scenario.days
    );

    // 2. Configure the pipeline exactly as the paper's headline
    //    method: correlation-based spectral clustering with eigengap
    //    model selection, near-mean sensor selection, second-order
    //    thermal model.
    let pipeline = ThermalPipeline::builder()
        .similarity(Similarity::correlation())
        .cluster_count(ClusterCount::Eigengap { max: 8 })
        .selector(SelectorKind::NearMean)
        .model_order(ModelOrder::Second)
        .seed(7)
        .build()?;

    // 3. Fit on the occupied-mode data (06:00–21:00, HVAC active).
    let occupied = Mask::daily_window(dataset.grid(), 6 * 60, 21 * 60)?;
    let sensors = output.temperature_channels();
    let sensor_refs: Vec<&str> = sensors.iter().map(String::as_str).collect();
    let inputs = output.input_channels();
    let input_refs: Vec<&str> = inputs.iter().map(String::as_str).collect();
    let reduced = pipeline.fit(dataset, &sensor_refs, &input_refs, &occupied)?;

    // 4. Inspect the result.
    println!(
        "clusters found: {} (eigengap rule)",
        reduced.clustering().k()
    );
    for (c, members) in reduced.clustering().clusters().iter().enumerate() {
        let names: Vec<&str> = members.iter().map(|&i| sensor_refs[i]).collect();
        println!("  cluster {c}: {names:?}");
    }
    println!(
        "sensors kept for long-term operation: {:?}",
        reduced.selected_channels()
    );
    println!(
        "model: {} over {} sensors, {} inputs",
        reduced.model().spec().order,
        reduced.model().spec().output_count(),
        reduced.model().spec().input_count()
    );

    // 5. How well does the reduced model track the cluster means over
    //    a 6-hour open-loop prediction?
    let report = reduced.evaluate_cluster_means(dataset, &occupied, 72)?;
    println!(
        "cluster-mean prediction: rms {:.3} degC, 99th pct {:.3} degC ({} segments)",
        report.rms()?,
        report.percentile(99.0)?,
        report.segments_used()
    );
    Ok(())
}
