//! Model-quality study: how training-data amount and prediction
//! length affect accuracy (the two panels of the paper's Fig. 5).
//!
//! ```sh
//! cargo run --release -p thermal-core --example model_horizon_study
//! ```

// Examples are demos: panicking with a clear message is the right UX.
#![allow(clippy::expect_used, clippy::unwrap_used)]
use thermal_core::timeseries::{split, Mask};
use thermal_core::{EvalConfig, FitConfig, ModelOrder, ModelSpec};
use thermal_sim::{run, Scenario};
use thermal_sysid::sweep::{sweep_prediction_length, sweep_training_horizon};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut scenario = Scenario::paper().with_days(50).with_seed(17);
    scenario.min_usable_days = 34;
    let output = run(&scenario)?;
    let dataset = &output.dataset;
    let grid = dataset.grid();

    let temps = output.temperature_channels();
    let inputs = output.input_channels();
    let temp_idx: Vec<usize> = temps
        .iter()
        .map(|n| dataset.channel_index(n).expect("simulated channel"))
        .collect();
    let usable = dataset.usable_days(&temp_idx, 0.5)?;
    let halves = split::halves(&usable)?;
    let occupied = Mask::daily_window(grid, 6 * 60, 21 * 60)?;
    let steps_per_hour = 60 / grid.step_minutes() as usize;

    // Panel 1: accuracy vs training horizon (predicting one day).
    println!("training-horizon sweep (1-day prediction, second-order):");
    let spec = ModelSpec::new(temps.clone(), inputs.clone(), ModelOrder::Second)?;
    let counts: Vec<usize> = [5, 9, 13, 17]
        .into_iter()
        .filter(|&c| c < halves.train.len())
        .collect();
    let points = sweep_training_horizon(
        dataset,
        &spec,
        &occupied,
        &halves.train,
        &counts,
        &halves.validation,
        &FitConfig::default(),
        &EvalConfig::with_horizon(13 * steps_per_hour),
    )?;
    for p in &points {
        println!(
            "  {:2} days -> 90th pct RMS {:.3} degC",
            p.parameter,
            p.report.rms_percentile(90.0)?
        );
    }

    // Panel 2: accuracy vs prediction length for both orders.
    println!("\nprediction-length sweep:");
    let train_mask = Mask::days(grid, &halves.train).and(&occupied)?;
    let val_mask = Mask::days(grid, &halves.validation).and(&occupied)?;
    let horizons: Vec<usize> = [2.5_f64, 5.0, 7.5, 10.0, 13.5]
        .into_iter()
        .map(|h| thermal_linalg::cast::floor_to_index(h * steps_per_hour as f64, usize::MAX - 1))
        .collect();
    for order in [ModelOrder::First, ModelOrder::Second] {
        let spec = ModelSpec::new(temps.clone(), inputs.clone(), order)?;
        let points = sweep_prediction_length(
            dataset,
            &spec,
            &train_mask,
            &val_mask,
            &horizons,
            &FitConfig::default(),
        )?;
        print!("  {order}:");
        for p in &points {
            print!(
                "  {:>4.1}h={:.3}",
                p.parameter / steps_per_hour as f64,
                p.report.rms_percentile(90.0)?
            );
        }
        println!();
    }
    Ok(())
}
