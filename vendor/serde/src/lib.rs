//! Offline shim for the subset of `serde` used by this workspace.
//!
//! Provides the `Serialize`/`Deserialize` trait names and their derive
//! macros. The derives expand to nothing (nothing in the workspace
//! serializes at runtime); the traits are markers so that generic
//! bounds naming them still compile.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
