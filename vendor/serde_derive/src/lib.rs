//! Offline no-op shim for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its public data
//! types so that real serde can be dropped in when registry access is
//! available, but nothing in the workspace serializes at runtime.
//! These derives therefore expand to nothing; they exist so that the
//! `#[derive(...)]` and `#[serde(...)]` annotations compile.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
