//! Offline shim for the subset of `proptest` 1.x used by this
//! workspace's property tests.
//!
//! Differences from the real crate, by design:
//!
//! - **No shrinking.** A failing case reports its deterministic case
//!   index; because the per-test RNG is seeded from the test name,
//!   re-running the test reproduces the same failure. Interesting
//!   failures are recorded by hand in `proptest-regressions/` (see
//!   `DESIGN.md`).
//! - **Smaller default case count** (64 instead of 256) to keep the
//!   offline CI loop fast. `ProptestConfig::with_cases` is honored.
//!
//! The strategy combinators implemented are exactly those the
//! workspace tests use: ranges, tuples, `prop_map`, `prop_flat_map`,
//! `any::<bool>()`, `prop::collection::{vec, btree_set}` and
//! `prop::option::weighted`.

use rand::rngs::StdRng;
use rand::Rng;
use std::collections::BTreeSet;
use std::fmt;
use std::marker::PhantomData;

/// Error carried by a failing property-test case.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Result type produced by a property-test body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// FNV-1a hash of a test name; seeds that test's deterministic RNG.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A generator of random values (shrink-free stand-in for
/// `proptest::strategy::Strategy`).
pub trait Strategy {
    /// Type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each generated value and draws
    /// from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy produced by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        let first = self.inner.generate(rng);
        (self.f)(first).generate(rng)
    }
}

/// Strategy yielding a constant value (stand-in for `proptest::strategy::Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl<T: rand::SampleUniform> Strategy for core::ops::Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: rand::SampleUniform> Strategy for core::ops::RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:ident . $idx:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// Strategy drawing `T` from its standard distribution (stand-in for
/// `proptest::arbitrary::any`).
pub struct Any<T>(PhantomData<T>);

impl<T: rand::Standard> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen::<T>()
    }
}

/// Returns a strategy drawing `T` uniformly from its standard
/// distribution.
pub fn any<T: rand::Standard>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy modules mirrored from `proptest::prop`.
pub mod prop {
    /// Collection strategies (`prop::collection`).
    pub mod collection {
        use super::super::{BTreeSet, StdRng, Strategy};
        use rand::Rng;

        /// Number-of-elements specification: a fixed size or a range.
        #[derive(Clone, Debug)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n }
            }
        }

        impl From<core::ops::Range<usize>> for SizeRange {
            fn from(r: core::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end - 1,
                }
            }
        }

        impl SizeRange {
            fn draw(&self, rng: &mut StdRng) -> usize {
                if self.lo == self.hi {
                    self.lo
                } else {
                    rng.gen_range(self.lo..=self.hi)
                }
            }
        }

        /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let n = self.size.draw(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Returns a strategy producing vectors of `element` draws.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// Strategy for `BTreeSet<S::Value>` with a target size drawn
        /// from `size`.
        pub struct BTreeSetStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for BTreeSetStrategy<S>
        where
            S::Value: Ord,
        {
            type Value = BTreeSet<S::Value>;

            fn generate(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
                let target = self.size.draw(rng);
                let mut set = BTreeSet::new();
                // Bounded attempts: the element domain may be smaller
                // than the requested size.
                for _ in 0..target.saturating_mul(20).max(32) {
                    if set.len() >= target {
                        break;
                    }
                    set.insert(self.element.generate(rng));
                }
                set
            }
        }

        /// Returns a strategy producing ordered sets of `element` draws.
        pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
        where
            S::Value: Ord,
        {
            BTreeSetStrategy {
                element,
                size: size.into(),
            }
        }
    }

    /// Option strategies (`prop::option`).
    pub mod option {
        use super::super::{StdRng, Strategy};
        use rand::Rng;

        /// Strategy yielding `Some` with a fixed probability.
        pub struct WeightedOption<S> {
            probability: f64,
            inner: S,
        }

        impl<S: Strategy> Strategy for WeightedOption<S> {
            type Value = Option<S::Value>;

            fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
                if rng.gen_bool(self.probability) {
                    Some(self.inner.generate(rng))
                } else {
                    None
                }
            }
        }

        /// Returns a strategy yielding `Some(inner)` with probability
        /// `probability`, else `None`.
        pub fn weighted<S: Strategy>(probability: f64, inner: S) -> WeightedOption<S> {
            WeightedOption { probability, inner }
        }
    }
}

/// Everything a property-test file needs (`proptest::prelude`).
pub mod prelude {
    pub use super::prop;
    pub use super::{any, seed_for, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    #[doc(hidden)]
    pub use rand::{rngs::StdRng as __StdRng, SeedableRng as __SeedableRng};
}

/// Asserts a condition inside a `proptest!` body, failing the current
/// case (not panicking) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body, failing the current
/// case (not panicking) on mismatch.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Declares property tests (shrink-free stand-in for
/// `proptest::proptest!`).
///
/// Supports the forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn property(x in 0usize..10, (a, b) in pair_strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = <$crate::prelude::__StdRng as $crate::prelude::__SeedableRng>::seed_from_u64(
                    $crate::seed_for(concat!(module_path!(), "::", stringify!($name))),
                );
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let result = (move || -> $crate::TestCaseResult {
                        $body
                        Ok(())
                    })();
                    if let Err(err) = result {
                        panic!(
                            "proptest case {}/{} of `{}` failed: {}",
                            case + 1,
                            config.cases,
                            stringify!($name),
                            err
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, f in -1.0f64..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_sizes_respected(v in prop::collection::vec(any::<bool>(), 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
        }

        #[test]
        fn map_applies(x in (0u32..5).prop_map(|v| v * 2)) {
            prop_assert!(x % 2 == 0 && x < 10);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_form_parses(x in 0i64..3) {
            prop_assert!((0..3).contains(&x));
        }
    }

    #[test]
    fn seeds_differ_by_name() {
        assert_ne!(seed_for("a"), seed_for("b"));
        assert_eq!(seed_for("a"), seed_for("a"));
    }
}
