//! Offline shim for the subset of `criterion` 0.5 used by this
//! workspace's benchmarks.
//!
//! Runs each registered routine a small, fixed number of iterations
//! with `std::time::Instant` timing and prints a one-line summary.
//! It trades criterion's statistical rigor for zero dependencies; the
//! bench entry points and registration macros are API-compatible so
//! the real crate can be dropped back in.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Batch sizing hint (accepted, ignored by the shim).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per allocation.
    PerIteration,
}

/// Timing harness handed to each bench closure.
pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            total: Duration::ZERO,
            iters: 0,
        }
    }

    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.total += start.elapsed();
            self.iters += 1;
        }
    }

    /// Times `routine` with a fresh input from `setup` per iteration.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
            self.iters += 1;
        }
    }

    fn report(&self, name: &str) {
        let mean = if self.iters == 0 {
            Duration::ZERO
        } else {
            self.total / u32::try_from(self.iters).unwrap_or(u32::MAX)
        };
        println!(
            "bench {name:<48} {mean:>12.3?}/iter over {} iters",
            self.iters
        );
    }
}

/// Top-level bench registry (stands in for `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    sample_size: Option<usize>,
}

const DEFAULT_SAMPLES: usize = 10;

/// Environment variable overriding every iteration count, e.g.
/// `THERMAL_BENCH_SAMPLES=3` for the quick informational CI pass.
pub const SAMPLES_ENV: &str = "THERMAL_BENCH_SAMPLES";

/// Iteration count after applying the [`SAMPLES_ENV`] override; the
/// override wins over both the shim default and explicit
/// `sample_size` calls so "quick mode" is a one-knob decision.
fn effective_samples(configured: usize) -> usize {
    std::env::var(SAMPLES_ENV)
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(configured)
}

impl Criterion {
    /// Registers and immediately runs a named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(effective_samples(
            self.sample_size.unwrap_or(DEFAULT_SAMPLES),
        ));
        f(&mut b);
        b.report(name);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            prefix: name.to_string(),
            sample_size: DEFAULT_SAMPLES,
        }
    }
}

/// A named group of benchmarks sharing a sample-size override.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    prefix: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the iteration count for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Registers and immediately runs a named benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(effective_samples(self.sample_size));
        f(&mut b);
        b.report(&format!("{}/{}", self.prefix, name));
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Registers bench functions under a group name (API-compatible with
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `fn main` running the given groups (API-compatible with
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
