//! Offline shim for the subset of `criterion` 0.5 used by this
//! workspace's benchmarks.
//!
//! Runs each registered routine a small, fixed number of iterations
//! with `std::time::Instant` timing and prints a one-line summary of
//! the **median** per-iteration wall time. The median (rather than
//! the mean) keeps the summary meaningful on noisy shared single-CPU
//! runners, where one preempted iteration would otherwise dominate
//! the figure. It trades criterion's statistical rigor for zero
//! dependencies; the bench entry points and registration macros are
//! API-compatible so the real crate can be dropped back in.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Batch sizing hint (accepted, ignored by the shim).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per allocation.
    PerIteration,
}

/// Timing harness handed to each bench closure.
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            durations: Vec::with_capacity(samples),
        }
    }

    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.durations.push(start.elapsed());
        }
    }

    /// Times `routine` with a fresh input from `setup` per iteration.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.durations.push(start.elapsed());
        }
    }

    fn report(&self, name: &str) {
        let median = median(&self.durations);
        println!(
            "bench {name:<48} {median:>12.3?}/iter over {} iters",
            self.durations.len()
        );
    }
}

/// Median of the recorded per-iteration times (mean of the two middle
/// elements for even counts); [`Duration::ZERO`] when nothing ran.
/// One preempted iteration on a busy runner shifts a mean arbitrarily
/// far, but leaves the median untouched.
fn median(durations: &[Duration]) -> Duration {
    if durations.is_empty() {
        return Duration::ZERO;
    }
    let mut sorted = durations.to_vec();
    sorted.sort_unstable();
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2
    }
}

/// Top-level bench registry (stands in for `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    sample_size: Option<usize>,
}

const DEFAULT_SAMPLES: usize = 10;

/// Environment variable overriding every iteration count, e.g.
/// `THERMAL_BENCH_SAMPLES=3` for the quick informational CI pass.
pub const SAMPLES_ENV: &str = "THERMAL_BENCH_SAMPLES";

/// Largest iteration count accepted from the environment; bigger
/// values are almost certainly typos and are clamped.
pub const MAX_SAMPLES: usize = 10_000;

/// Why a [`SAMPLES_ENV`] value was rejected (or clamped).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SamplesParseError {
    /// The value did not parse as an unsigned integer.
    NotANumber {
        /// The raw (trimmed) value found in the environment.
        raw: String,
    },
    /// The value parsed as `0`, which would time nothing.
    Zero,
    /// The value exceeded [`MAX_SAMPLES`] and was clamped.
    TooLarge {
        /// The value found in the environment.
        parsed: usize,
    },
}

impl std::fmt::Display for SamplesParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SamplesParseError::NotANumber { raw } => {
                write!(f, "{raw:?} is not an unsigned integer")
            }
            SamplesParseError::Zero => write!(f, "0 samples would time nothing"),
            SamplesParseError::TooLarge { parsed } => {
                write!(f, "{parsed} exceeds the cap of {MAX_SAMPLES}")
            }
        }
    }
}

impl std::error::Error for SamplesParseError {}

/// Resolves a raw [`SAMPLES_ENV`] value against the configured
/// iteration count. A well-formed positive value (clamped to
/// [`MAX_SAMPLES`]) wins over `configured`; anything else falls back
/// to `configured` with a typed reason so the caller can warn instead
/// of silently running the wrong number of iterations.
#[must_use]
pub fn resolve_samples(raw: Option<&str>, configured: usize) -> (usize, Option<SamplesParseError>) {
    let Some(raw) = raw else {
        return (configured, None);
    };
    let trimmed = raw.trim();
    match trimmed.parse::<usize>() {
        Ok(0) => (configured, Some(SamplesParseError::Zero)),
        Ok(n) if n > MAX_SAMPLES => (MAX_SAMPLES, Some(SamplesParseError::TooLarge { parsed: n })),
        Ok(n) => (n, None),
        Err(_) => (
            configured,
            Some(SamplesParseError::NotANumber {
                raw: trimmed.to_string(),
            }),
        ),
    }
}

/// Iteration count after applying the [`SAMPLES_ENV`] override; the
/// override wins over both the shim default and explicit
/// `sample_size` calls so "quick mode" is a one-knob decision. A
/// malformed override is reported once per process on stderr and the
/// configured count is used.
fn effective_samples(configured: usize) -> usize {
    let raw = std::env::var(SAMPLES_ENV).ok();
    let (samples, rejection) = resolve_samples(raw.as_deref(), configured);
    if let Some(rejection) = rejection {
        static WARNED: std::sync::Once = std::sync::Once::new();
        WARNED.call_once(|| {
            eprintln!("criterion-shim: bad {SAMPLES_ENV}: {rejection}; using {samples} samples");
        });
    }
    samples
}

impl Criterion {
    /// Registers and immediately runs a named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(effective_samples(
            self.sample_size.unwrap_or(DEFAULT_SAMPLES),
        ));
        f(&mut b);
        b.report(name);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            prefix: name.to_string(),
            sample_size: DEFAULT_SAMPLES,
        }
    }
}

/// A named group of benchmarks sharing a sample-size override.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    prefix: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the iteration count for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Registers and immediately runs a named benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(effective_samples(self.sample_size));
        f(&mut b);
        b.report(&format!("{}/{}", self.prefix, name));
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Registers bench functions under a group name (API-compatible with
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `fn main` running the given groups (API-compatible with
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
