//! Offline shim for the subset of `rand` 0.8 used by this workspace.
//!
//! Backed by xoshiro256++ seeded via SplitMix64, mirroring the
//! determinism guarantees the workspace relies on: the same seed
//! always produces the same stream on every platform.

/// Core random-number-generator trait (subset of `rand::Rng`).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Sampling of a value of type `Self` from raw generator bits.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Types that can be drawn uniformly from a range (subset of
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from the half-open range `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Draws uniformly from the closed range `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128;
                let draw = (((rng.next_u64() as u128) << 64) | rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (((rng.next_u64() as u128) << 64) | rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u8, u16, u32, u64, isize, i8, i16, i32, i64);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        assert!(lo < hi, "empty range in gen_range");
        lo + f64::sample(rng) * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        assert!(lo <= hi, "empty range in gen_range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        assert!(lo < hi, "empty range in gen_range");
        lo + f32::sample(rng) * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        assert!(lo <= hi, "empty range in gen_range");
        lo + f32::sample(rng) * (hi - lo)
    }
}

/// A range that can be sampled uniformly (subset of `rand::distributions::uniform`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Convenience sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability outside [0, 1]"
        );
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for `rand::rngs::StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers (subset of `rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and choosing on slices (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly chooses one element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let i = rng.gen_range(5..17usize);
            assert!((5..17).contains(&i));
            let f = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
