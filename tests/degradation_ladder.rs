//! The degradation ladder, exhaustively: every rung of
//! `evaluate_degraded` (healthy → ranked backup → cluster mean →
//! structured blackout), plus the property that *no* pattern of dead
//! sensors can make the evaluation panic or error.
//!
//! Together with the streaming health-machine transition tests in
//! `thermal-stream`, this pins the full failure-handling contract:
//! batch evaluation here, live supervision there, both built on the
//! same [`FallbackAction`] ladder.

// Test fixtures: panicking on a broken fixture is the right failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use thermal_core::timeseries::{Channel, Dataset, Mask, TimeGrid, Timestamp};
use thermal_core::{
    ClusterCount, DegradationPolicy, FallbackAction, ReducedModel, SelectorKind, ThermalPipeline,
};
use thermal_sysid::ModelOrder;

const N: usize = 300;
const SENSORS: usize = 6;

/// Six sensors in two thermal families of three (gains near +1 and
/// −1), driven by one shared input — clusters of three so the ladder
/// has a middle rung to land on.
fn synth_dataset() -> Dataset {
    let u: Vec<f64> = (0..N)
        .map(|k| 0.5 + 0.5 * (k as f64 * 0.11).sin())
        .collect();
    let mut channels = vec![Channel::from_values("u", u.clone()).unwrap()];
    let params = [
        (1.0, 20.0),
        (1.05, 20.1),
        (1.1, 20.2),
        (-1.0, 22.0),
        (-0.95, 22.1),
        (-0.9, 22.2),
    ];
    for (i, (gain, base)) in params.into_iter().enumerate() {
        let mut t = vec![base];
        for k in 0..N - 1 {
            t.push(0.9 * t[k] + 0.1 * base + gain * 0.2 * u[k]);
        }
        channels.push(Channel::from_values(format!("s{i}"), t).unwrap());
    }
    let grid = TimeGrid::new(Timestamp::from_minutes(0), 5, N).unwrap();
    Dataset::new(grid, channels).unwrap()
}

fn fit_reduced(ds: &Dataset) -> ReducedModel {
    ThermalPipeline::builder()
        .cluster_count(ClusterCount::Fixed(2))
        .selector(SelectorKind::NearMean)
        .model_order(ModelOrder::First)
        .build()
        .unwrap()
        .fit(
            ds,
            &["s0", "s1", "s2", "s3", "s4", "s5"],
            &["u"],
            &Mask::all(ds.grid()),
        )
        .unwrap()
}

/// Returns `ds` with the named channel blanked on `[start, end)`.
fn kill_channel(ds: &Dataset, name: &str, start: usize, end: usize) -> Dataset {
    let channels: Vec<Channel> = ds
        .channels()
        .iter()
        .map(|ch| {
            if ch.name() == name {
                let values = ch
                    .values()
                    .iter()
                    .enumerate()
                    .map(|(i, v)| if (start..end).contains(&i) { None } else { *v })
                    .collect();
                Channel::new(ch.name(), values).unwrap()
            } else {
                ch.clone()
            }
        })
        .collect();
    Dataset::new(*ds.grid(), channels).unwrap()
}

/// The cluster (0 or 1) a sensor name belongs to in this fixture,
/// resolved through the fitted clustering rather than assumed.
fn cluster_of(reduced: &ReducedModel, name: &str) -> usize {
    let idx = reduced
        .all_channels()
        .iter()
        .position(|n| n == name)
        .unwrap();
    reduced.clustering().assignments()[idx]
}

#[test]
fn backup_rung_engages_when_the_representative_dies() {
    let ds = synth_dataset();
    let reduced = fit_reduced(&ds);
    let rep = reduced.selected_channels()[0].clone();
    let c = cluster_of(&reduced, &rep);
    let dead = kill_channel(&ds, &rep, 0, N);
    let out = dead_eval(&reduced, &dead);
    let event = out
        .degradation
        .events()
        .iter()
        .find(|e| e.representative == rep)
        .unwrap();
    assert_eq!(event.cluster, c);
    assert!(
        matches!(event.action, FallbackAction::Backup { .. }),
        "expected the ranked-backup rung, got {:?}",
        event.action
    );
    assert!(
        out.report.is_some(),
        "one dead rep must not kill evaluation"
    );
}

#[test]
fn cluster_mean_rung_engages_when_rep_and_backups_are_each_too_sparse() {
    let ds = synth_dataset();
    let reduced = fit_reduced(&ds);
    let rep = reduced.selected_channels()[0].clone();
    let c = cluster_of(&reduced, &rep);
    // Kill the representative and every ranked backup so that each is
    // individually below the 25 % coverage floor, but on staggered
    // windows whose union still covers > 25 % of the trace: the
    // per-slot cluster mean is then the only viable substitute.
    let backups: Vec<String> = reduced
        .selection()
        .backups(c)
        .iter()
        .map(|&b| reduced.all_channels()[b].clone())
        .collect();
    assert!(!backups.is_empty(), "fixture needs ranked backups");
    let mut dead = kill_channel(&ds, &rep, 0, 240); // 20 % left, at the end
    let mut start = 30;
    for b in &backups {
        // Each backup keeps only a 30-slot (10 %) window, staggered.
        dead = kill_channel(&dead, b, 0, start);
        dead = kill_channel(&dead, b, start + 30, N);
        start += 30;
    }
    let out = dead_eval(&reduced, &dead);
    let event = out
        .degradation
        .events()
        .iter()
        .find(|e| e.representative == rep)
        .unwrap();
    assert!(
        matches!(event.action, FallbackAction::ClusterMean { .. }),
        "expected the cluster-mean rung, got {:?}",
        event.action
    );
}

#[test]
fn whole_cluster_dead_is_a_structured_blackout_with_the_other_cluster_evaluable() {
    let ds = synth_dataset();
    let reduced = fit_reduced(&ds);
    let rep = reduced.selected_channels()[0].clone();
    let c = cluster_of(&reduced, &rep);
    let mut dead = ds.clone();
    for (i, name) in reduced.all_channels().iter().enumerate() {
        if reduced.clustering().assignments()[i] == c {
            dead = kill_channel(&dead, name, 0, N);
        }
    }
    let out = dead_eval(&reduced, &dead);
    assert_eq!(out.degradation.unavailable_clusters(), vec![c]);
    let report = out.report.expect("the surviving cluster must evaluate");
    assert_eq!(report.cluster_count(), 1);
}

fn dead_eval(reduced: &ReducedModel, ds: &Dataset) -> thermal_core::DegradedEvaluation {
    reduced
        .evaluate_degraded(ds, &Mask::all(ds.grid()), 50, &DegradationPolicy::default())
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The robustness property behind the whole ladder: *any* subset
    /// of sensors dying over *any* window — including every sensor at
    /// once — yields `Ok` with one event per representative, never a
    /// panic or an `Err`. Blackout shows up as `report: None` plus
    /// `Unavailable` events, not as a failure.
    #[test]
    fn evaluate_degraded_is_total_over_dead_sensor_subsets(
        dead_mask in 0_u32..(1 << SENSORS),
        start in 0_usize..N / 2,
        len in 1_usize..N,
    ) {
        let ds = synth_dataset();
        let reduced = fit_reduced(&ds);
        let mut faulty = ds.clone();
        for s in 0..SENSORS {
            if dead_mask & (1 << s) != 0 {
                faulty = kill_channel(&faulty, &format!("s{s}"), start, (start + len).min(N));
            }
        }
        let out = reduced
            .evaluate_degraded(
                &faulty,
                &Mask::all(faulty.grid()),
                50,
                &DegradationPolicy::default(),
            )
            .unwrap();
        // One event per representative, each with a definite action.
        prop_assert_eq!(out.degradation.events().len(), reduced.selected_channels().len());
        // A fully-dead deployment must still conclude, as a blackout.
        if dead_mask == (1 << SENSORS) - 1 && start == 0 && len >= N {
            prop_assert!(out.report.is_none());
        }
        // Healthy sensors (mask bit clear for every cluster member)
        // mean that cluster cannot be Unavailable.
        for (c, members) in reduced.clustering().clusters().iter().enumerate() {
            let all_dead = members.iter().all(|&m| dead_mask & (1 << m) != 0);
            if !all_dead {
                prop_assert!(
                    !out.degradation.unavailable_clusters().contains(&c),
                    "cluster {} has live members but was blacked out", c
                );
            }
        }
    }
}
