//! CSV round-tripping of simulated campaigns: nothing is lost or
//! invented on the way through the text format.

// Test fixtures: panicking on a broken fixture is the right failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use thermal_core::timeseries::csv;
use thermal_sim::{run, Scenario};

#[test]
fn simulated_campaign_roundtrips_through_csv() {
    let output = run(&Scenario::quick().with_days(3).with_seed(55)).unwrap();
    let text = csv::to_csv_string(&output.dataset).unwrap();
    let back = csv::from_csv_str(&text).unwrap();

    assert_eq!(back.grid(), output.dataset.grid());
    assert_eq!(back.channel_names(), output.dataset.channel_names());
    for (a, b) in back.channels().iter().zip(output.dataset.channels()) {
        assert_eq!(a.name(), b.name());
        assert_eq!(a.present_count(), b.present_count());
        for (x, y) in a.values().iter().zip(b.values()) {
            match (x, y) {
                (None, None) => {}
                (Some(p), Some(q)) => {
                    assert!((p - q).abs() < 1e-9, "{} vs {}", p, q)
                }
                _ => panic!("presence flipped for channel {}", a.name()),
            }
        }
    }
}

#[test]
fn gappy_campaign_roundtrips_with_gaps_intact() {
    let mut scenario = Scenario::quick().with_days(4).with_seed(56);
    scenario.sensors.dropout_start_prob = 0.01;
    scenario.sensors.outage_day_prob = 0.4;
    scenario.min_usable_days = 2;
    let output = run(&scenario).unwrap();
    assert!(
        !output.outage_days.is_empty(),
        "scenario should produce outages"
    );

    let text = csv::to_csv_string(&output.dataset).unwrap();
    let back = csv::from_csv_str(&text).unwrap();
    for name in output.temperature_channels() {
        let orig = output.dataset.channel(&name).unwrap();
        let round = back.channel(&name).unwrap();
        assert_eq!(orig.present_count(), round.present_count(), "{name}");
    }
}

#[test]
fn csv_is_consumable_by_line_tools() {
    // The export must be plain rows: same field count everywhere.
    let output = run(&Scenario::quick().with_days(2).with_seed(57)).unwrap();
    let text = csv::to_csv_string(&output.dataset).unwrap();
    let mut lines = text.lines();
    let header_fields = lines.next().unwrap().split(',').count();
    assert_eq!(header_fields, output.dataset.channel_count() + 1);
    for line in lines {
        assert_eq!(line.split(',').count(), header_fields, "ragged row: {line}");
    }
}
