//! End-to-end integration: simulate a campaign, run the full
//! three-step pipeline, and check the product is coherent.

// Test fixtures: panicking on a broken fixture is the right failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use thermal_core::timeseries::{split, Mask};
use thermal_core::{
    ClusterCount, EvalConfig, FitConfig, ModelOrder, ModelSpec, SelectorKind, Similarity,
    ThermalPipeline,
};
use thermal_sim::{run, Scenario};
use thermal_sysid::{evaluate, identify};

fn campaign() -> thermal_sim::SimOutput {
    run(&Scenario::quick().with_days(14).with_seed(101)).expect("simulation runs")
}

#[test]
fn pipeline_produces_usable_reduced_model() {
    let output = campaign();
    let dataset = &output.dataset;
    let occupied = Mask::daily_window(dataset.grid(), 6 * 60, 21 * 60).unwrap();

    let temps = output.temperature_channels();
    let refs: Vec<&str> = temps.iter().map(String::as_str).collect();
    let inputs = output.input_channels();
    let input_refs: Vec<&str> = inputs.iter().map(String::as_str).collect();

    let pipeline = ThermalPipeline::builder()
        .similarity(Similarity::correlation())
        .cluster_count(ClusterCount::Fixed(2))
        .selector(SelectorKind::NearMean)
        .model_order(ModelOrder::Second)
        .build()
        .unwrap();
    let reduced = pipeline
        .fit(dataset, &refs, &input_refs, &occupied)
        .unwrap();

    // Structure: 2 clusters, one representative each, a model over
    // exactly those representatives.
    assert_eq!(reduced.clustering().k(), 2);
    assert_eq!(reduced.selected_channels().len(), 2);
    assert_eq!(reduced.model().spec().outputs, reduced.selected_channels());
    assert!(reduced.model().coefficients().is_finite());

    // The reduced model must track cluster means within a degree or
    // so over a 3-hour horizon on training-period data.
    let report = reduced
        .evaluate_cluster_means(dataset, &occupied, 36)
        .unwrap();
    assert!(report.segments_used() > 3);
    let p99 = report.percentile(99.0).unwrap();
    assert!(
        p99 < 1.5,
        "99th-percentile cluster-mean error too large: {p99}"
    );
}

#[test]
fn clusters_are_geographically_coherent() {
    let output = campaign();
    let dataset = &output.dataset;
    let occupied = Mask::daily_window(dataset.grid(), 6 * 60, 21 * 60).unwrap();
    let temps = output.wireless_channels();
    let refs: Vec<&str> = temps.iter().map(String::as_str).collect();

    let pipeline = ThermalPipeline::builder()
        .similarity(Similarity::correlation())
        .cluster_count(ClusterCount::Fixed(2))
        .build()
        .unwrap();
    let reduced = pipeline
        .fit(dataset, &refs, &["vav1", "occupancy"], &occupied)
        .unwrap();

    // The paper's front group should overwhelmingly share a cluster.
    let front = [
        "t03", "t06", "t07", "t08", "t13", "t14", "t17", "t23", "t28", "t33", "t38",
    ];
    let assignments = reduced.clustering().assignments();
    let front_labels: Vec<usize> = refs
        .iter()
        .enumerate()
        .filter(|(_, n)| front.contains(n))
        .map(|(i, _)| assignments[i])
        .collect();
    let zeros = front_labels.iter().filter(|&&l| l == 0).count();
    let majority = zeros.max(front_labels.len() - zeros);
    assert!(
        majority as f64 >= 0.8 * front_labels.len() as f64,
        "front sensors scattered across clusters: {front_labels:?}"
    );
}

#[test]
fn dense_models_beat_horizon_free_baseline() {
    // The identified dense model must clearly outperform a "hold the
    // last measurement" persistence baseline over long horizons.
    //
    // Uses a 28-day campaign rather than the shared 14-day one: the
    // half split leaves only ~7 training days at 14 days, which makes
    // the fitted-vs-persistence margin flip sign for some RNG seeds.
    // With 28 days the margin is positive across every seed tried.
    let output = run(&Scenario::quick().with_days(28).with_seed(101)).expect("simulation runs");
    let dataset = &output.dataset;
    let grid = dataset.grid();
    let temps = output.temperature_channels();
    let inputs = output.input_channels();
    let temp_idx: Vec<usize> = temps
        .iter()
        .map(|n| dataset.channel_index(n).unwrap())
        .collect();
    let usable = dataset.usable_days(&temp_idx, 0.5).unwrap();
    let halves = split::halves(&usable).unwrap();
    let occupied = Mask::daily_window(grid, 6 * 60, 21 * 60).unwrap();
    let train = Mask::days(grid, &halves.train).and(&occupied).unwrap();
    let val = Mask::days(grid, &halves.validation).and(&occupied).unwrap();

    let horizon = 12 * 6; // 6 hours
    let rms_of = |model: &thermal_core::ThermalModel| -> f64 {
        evaluate(model, dataset, &val, &EvalConfig::with_horizon(horizon))
            .unwrap()
            .overall_rms()
    };

    let spec = ModelSpec::new(temps.clone(), inputs.clone(), ModelOrder::First).unwrap();
    let fitted = identify(dataset, &spec, &train, &FitConfig::default()).unwrap();
    let fitted_rms = rms_of(&fitted);

    // Persistence baseline: A = I, B = 0 ("temperature never changes").
    let p = temps.len();
    let coef =
        thermal_linalg::Matrix::from_fn(p, p + inputs.len(), |r, c| if r == c { 1.0 } else { 0.0 });
    let persistence = thermal_core::ThermalModel::new(spec, coef).unwrap();
    let persistence_rms = rms_of(&persistence);

    assert!(
        fitted_rms < persistence_rms,
        "identified model ({fitted_rms}) should beat persistence ({persistence_rms})"
    );
}
