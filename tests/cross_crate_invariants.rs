//! Invariants that hold across crate boundaries on realistic data.

// Test fixtures: panicking on a broken fixture is the right failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use thermal_cluster::{
    cluster_trajectories, quality, trajectory_matrix, ClusterCount, Similarity, SpectralConfig,
};
use thermal_core::timeseries::{split, Mask};
use thermal_core::{EvalConfig, FitConfig, ModelOrder, ModelSpec};
use thermal_select::{
    cluster_mean_errors, NearMeanSelector, SelectionInput, Selector, StratifiedRandomSelector,
};
use thermal_sim::{run, Scenario};
use thermal_sysid::{evaluate, identify};

fn campaign() -> &'static thermal_sim::SimOutput {
    use std::sync::OnceLock;
    static CAMPAIGN: OnceLock<thermal_sim::SimOutput> = OnceLock::new();
    CAMPAIGN.get_or_init(|| run(&Scenario::quick().with_days(14).with_seed(404)).unwrap())
}

#[test]
fn error_grows_with_prediction_horizon() {
    let output = campaign();
    let dataset = &output.dataset;
    let grid = dataset.grid();
    let temps = output.temperature_channels();
    let idx: Vec<usize> = temps
        .iter()
        .map(|n| dataset.channel_index(n).unwrap())
        .collect();
    let usable = dataset.usable_days(&idx, 0.5).unwrap();
    let halves = split::halves(&usable).unwrap();
    let occupied = Mask::daily_window(grid, 6 * 60, 21 * 60).unwrap();
    let train = Mask::days(grid, &halves.train).and(&occupied).unwrap();
    let val = Mask::days(grid, &halves.validation).and(&occupied).unwrap();

    let spec = ModelSpec::new(temps.clone(), output.input_channels(), ModelOrder::Second).unwrap();
    let model = identify(dataset, &spec, &train, &FitConfig::default()).unwrap();
    let short = evaluate(&model, dataset, &val, &EvalConfig::with_horizon(6))
        .unwrap()
        .overall_rms();
    let long = evaluate(&model, dataset, &val, &EvalConfig::with_horizon(120))
        .unwrap()
        .overall_rms();
    assert!(
        short < long,
        "6-step error {short} should undercut 120-step error {long}"
    );
}

#[test]
fn near_mean_beats_worst_random_selection() {
    let output = campaign();
    let dataset = &output.dataset;
    let occupied = Mask::daily_window(dataset.grid(), 6 * 60, 21 * 60).unwrap();
    let temps = output.temperature_channels();
    let refs: Vec<&str> = temps.iter().map(String::as_str).collect();
    let traj = trajectory_matrix(dataset, &refs, &occupied).unwrap();
    let clustering = cluster_trajectories(
        &traj,
        &SpectralConfig {
            similarity: Similarity::correlation(),
            count: ClusterCount::Fixed(2),
            seed: 3,
            restarts: 8,
        },
    )
    .unwrap();

    let sms = NearMeanSelector
        .select(&SelectionInput {
            trajectories: &traj,
            clustering: &clustering,
            per_cluster: 1,
            seed: 0,
        })
        .unwrap();
    let sms_err = cluster_mean_errors(&traj, &clustering, &sms)
        .unwrap()
        .percentile(99.0)
        .unwrap();

    let mut worst_srs = f64::NEG_INFINITY;
    for seed in 0..20 {
        let srs = StratifiedRandomSelector
            .select(&SelectionInput {
                trajectories: &traj,
                clustering: &clustering,
                per_cluster: 1,
                seed,
            })
            .unwrap();
        let err = cluster_mean_errors(&traj, &clustering, &srs)
            .unwrap()
            .percentile(99.0)
            .unwrap();
        worst_srs = worst_srs.max(err);
    }
    assert!(
        sms_err <= worst_srs,
        "near-mean ({sms_err}) should not lose to the worst random pick ({worst_srs})"
    );
}

#[test]
fn correlation_map_is_blockier_for_clustered_order() {
    let output = campaign();
    let dataset = &output.dataset;
    let occupied = Mask::daily_window(dataset.grid(), 6 * 60, 21 * 60).unwrap();
    let temps = output.wireless_channels();
    let refs: Vec<&str> = temps.iter().map(String::as_str).collect();
    let traj = trajectory_matrix(dataset, &refs, &occupied).unwrap();
    let clustering = cluster_trajectories(
        &traj,
        &SpectralConfig {
            similarity: Similarity::correlation(),
            count: ClusterCount::Fixed(2),
            seed: 3,
            restarts: 8,
        },
    )
    .unwrap();
    let map = quality::correlation_map(&traj, &clustering).unwrap();
    assert!(
        map.mean_within() > map.mean_between(),
        "within-cluster correlation ({}) must exceed cross-cluster ({})",
        map.mean_within(),
        map.mean_between()
    );
}

#[test]
fn within_cluster_temperature_spread_is_tighter_than_overall() {
    let output = campaign();
    let dataset = &output.dataset;
    let occupied = Mask::daily_window(dataset.grid(), 6 * 60, 21 * 60).unwrap();
    let temps = output.wireless_channels();
    let refs: Vec<&str> = temps.iter().map(String::as_str).collect();
    let traj = trajectory_matrix(dataset, &refs, &occupied).unwrap();
    let clustering = cluster_trajectories(
        &traj,
        &SpectralConfig {
            similarity: Similarity::euclidean(),
            count: ClusterCount::Fixed(2),
            seed: 3,
            restarts: 8,
        },
    )
    .unwrap();
    let report = quality::temp_diff_report(&traj, &clustering).unwrap();
    let overall_median = report.overall.quantile(0.5).unwrap();
    let mut any_tighter = false;
    for cdf in report.per_cluster.iter().flatten() {
        if cdf.quantile(0.5).unwrap() < overall_median {
            any_tighter = true;
        }
    }
    assert!(
        any_tighter,
        "clustering should tighten intra-cluster spread"
    );
}

#[test]
fn both_modes_identify_with_finite_bounded_error() {
    // The paper's Table I protocol runs per mode; on a short quick
    // campaign the occupied/unoccupied ordering is noisy, so here we
    // assert the protocol itself: both modes identify and evaluate
    // with sane error magnitudes (the ordering is checked on the
    // full-scale campaign by the repro harness).
    let output = campaign();
    let dataset = &output.dataset;
    let grid = dataset.grid();
    let temps = output.temperature_channels();
    let idx: Vec<usize> = temps
        .iter()
        .map(|n| dataset.channel_index(n).unwrap())
        .collect();
    let usable = dataset.usable_days(&idx, 0.5).unwrap();
    let halves = split::halves(&usable).unwrap();
    let occupied = Mask::daily_window(grid, 6 * 60, 21 * 60).unwrap();
    let night = occupied.not();

    let mut results = Vec::new();
    for mode in [&occupied, &night] {
        let train = Mask::days(grid, &halves.train).and(mode).unwrap();
        let val = Mask::days(grid, &halves.validation).and(mode).unwrap();
        let spec =
            ModelSpec::new(temps.clone(), output.input_channels(), ModelOrder::Second).unwrap();
        let model = identify(dataset, &spec, &train, &FitConfig::default()).unwrap();
        let report = evaluate(&model, dataset, &val, &EvalConfig::with_horizon(90)).unwrap();
        results.push(report.rms_percentile(90.0).unwrap());
    }
    for r in &results {
        assert!(
            r.is_finite() && *r > 0.0 && *r < 3.0,
            "unreasonable RMS {r}"
        );
    }
}
