//! Error-path coverage: the failure modes the panic-free library
//! surfaces must report as *typed* errors rather than panics. Each
//! test drives a kernel or pipeline stage with degenerate input and
//! asserts the specific error variant, so a refactor that swaps a
//! typed error for a panic (or for a different variant) fails here
//! before it reaches `cargo xtask lint`.

// Test fixtures: panicking on a broken fixture is the right failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use thermal_cluster::{cluster_trajectories, ClusterCount, ClusterError, SpectralConfig};
use thermal_core::timeseries::{Channel, Dataset, TimeGrid, Timestamp};
use thermal_linalg::{lstsq, CholeskyDecomposition, LinalgError, LuDecomposition, Matrix, Vector};

/// A column-rank-deficient least-squares problem (two identical
/// columns) is reported as `Singular`, not solved garbage and not a
/// panic.
#[test]
fn rank_deficient_lstsq_is_singular() {
    let a = Matrix::from_rows(&[&[1.0, 1.0][..], &[2.0, 2.0][..], &[3.0, 3.0][..]]).unwrap();
    let b = Vector::from_slice(&[1.0, 2.0, 3.0]);
    assert!(matches!(
        lstsq::solve(&a, &b),
        Err(LinalgError::Singular { .. })
    ));
}

/// Fewer observations than unknowns is `Underdetermined`, with the
/// offending shape carried in the variant.
#[test]
fn underdetermined_lstsq_carries_shape() {
    let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0][..]]).unwrap();
    let b = Vector::from_slice(&[1.0]);
    match lstsq::solve(&a, &b) {
        Err(LinalgError::Underdetermined { rows, cols }) => {
            assert_eq!((rows, cols), (1, 3));
        }
        other => panic!("expected Underdetermined, got {other:?}"),
    }
}

/// LU on a singular matrix reports the pivot index where elimination
/// broke down.
#[test]
fn singular_lu_reports_pivot_index() {
    let a = Matrix::from_rows(&[
        &[1.0, 2.0][..],
        &[2.0, 4.0][..], // row 2 = 2 x row 1
    ])
    .unwrap();
    match LuDecomposition::new(&a) {
        Err(LinalgError::Singular { index }) => assert_eq!(index, 1),
        other => panic!("expected Singular, got {other:?}"),
    }
}

/// Cholesky on an indefinite matrix reports the offending pivot and
/// its (non-positive) value.
#[test]
fn non_psd_cholesky_reports_pivot() {
    let a = Matrix::from_rows(&[
        &[1.0, 2.0][..],
        &[2.0, 1.0][..], // eigenvalues 3 and -1: indefinite
    ])
    .unwrap();
    match CholeskyDecomposition::new(&a) {
        Err(LinalgError::NotPositiveDefinite { index, pivot }) => {
            assert_eq!(index, 1);
            assert!(pivot <= 0.0, "pivot {pivot} should be non-positive");
        }
        other => panic!("expected NotPositiveDefinite, got {other:?}"),
    }
}

/// An empty time grid is rejected at construction, so no dataset can
/// ever exist with zero samples.
#[test]
fn empty_grid_is_rejected() {
    assert!(matches!(
        TimeGrid::new(Timestamp::from_minutes(0), 5, 0),
        Err(thermal_core::timeseries::TimeSeriesError::InvalidGrid { .. })
    ));
}

/// A channel whose length disagrees with the grid is a typed
/// `LengthMismatch` naming the channel.
#[test]
fn short_channel_is_length_mismatch() {
    let grid = TimeGrid::new(Timestamp::from_minutes(0), 5, 10).unwrap();
    let short = Channel::from_values("t1", vec![20.0; 7]).unwrap();
    match Dataset::new(grid, vec![short]) {
        Err(thermal_core::timeseries::TimeSeriesError::LengthMismatch {
            expected, actual, ..
        }) => {
            assert_eq!((expected, actual), (10, 7));
        }
        other => panic!("expected LengthMismatch, got {other:?}"),
    }
}

/// Asking spectral clustering for more clusters than sensors is a
/// `BadClusterCount` carrying both numbers.
#[test]
fn too_many_clusters_is_bad_cluster_count() {
    // Three sensors with distinct trajectories.
    let rows: Vec<Vec<f64>> = (0..3)
        .map(|s| {
            (0..40)
                .map(|k| 20.0 + s as f64 + (k as f64 * (0.1 + 0.05 * s as f64)).sin())
                .collect()
        })
        .collect();
    let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
    let traj = Matrix::from_rows(&refs).unwrap();
    let config = SpectralConfig {
        count: ClusterCount::Fixed(5),
        ..SpectralConfig::default()
    };
    match cluster_trajectories(&traj, &config) {
        Err(ClusterError::BadClusterCount { requested, sensors }) => {
            assert_eq!((requested, sensors), (5, 3));
        }
        other => panic!("expected BadClusterCount, got {other:?}"),
    }
}

/// Zero clusters is equally impossible and equally typed.
#[test]
fn zero_clusters_is_bad_cluster_count() {
    let rows: Vec<Vec<f64>> = (0..3)
        .map(|s| {
            (0..40)
                .map(|k| 20.0 + s as f64 + (k as f64 * 0.2).cos())
                .collect()
        })
        .collect();
    let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
    let traj = Matrix::from_rows(&refs).unwrap();
    let config = SpectralConfig {
        count: ClusterCount::Fixed(0),
        ..SpectralConfig::default()
    };
    assert!(matches!(
        cluster_trajectories(&traj, &config),
        Err(ClusterError::BadClusterCount {
            requested: 0,
            sensors: 3
        })
    ));
}
