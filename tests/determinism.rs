//! Determinism: identical seeds reproduce campaigns and pipeline
//! products bit-for-bit; different seeds genuinely differ.

// Test fixtures: panicking on a broken fixture is the right failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use thermal_core::timeseries::Mask;
use thermal_core::{ClusterCount, SelectorKind, Similarity, ThermalPipeline};
use thermal_sim::{run, Scenario};

#[test]
fn same_seed_same_campaign() {
    let a = run(&Scenario::quick().with_days(5).with_seed(7)).unwrap();
    let b = run(&Scenario::quick().with_days(5).with_seed(7)).unwrap();
    assert_eq!(a.dataset, b.dataset);
    assert_eq!(a.clean_dataset, b.clean_dataset);
    assert_eq!(a.outage_days, b.outage_days);
}

#[test]
fn different_seed_different_campaign() {
    let a = run(&Scenario::quick().with_days(5).with_seed(7)).unwrap();
    let b = run(&Scenario::quick().with_days(5).with_seed(8)).unwrap();
    assert_ne!(a.dataset, b.dataset);
}

#[test]
fn pipeline_is_deterministic() {
    let output = run(&Scenario::quick().with_days(10).with_seed(31)).unwrap();
    let dataset = &output.dataset;
    let occupied = Mask::daily_window(dataset.grid(), 6 * 60, 21 * 60).unwrap();
    let temps = output.temperature_channels();
    let refs: Vec<&str> = temps.iter().map(String::as_str).collect();
    let inputs = output.input_channels();
    let input_refs: Vec<&str> = inputs.iter().map(String::as_str).collect();

    let build = || {
        ThermalPipeline::builder()
            .similarity(Similarity::correlation())
            .cluster_count(ClusterCount::Fixed(2))
            .selector(SelectorKind::StratifiedRandom) // stochastic stage
            .seed(99)
            .build()
            .unwrap()
    };
    let a = build().fit(dataset, &refs, &input_refs, &occupied).unwrap();
    let b = build().fit(dataset, &refs, &input_refs, &occupied).unwrap();
    assert_eq!(a.clustering().assignments(), b.clustering().assignments());
    assert_eq!(a.selected_channels(), b.selected_channels());
    assert_eq!(a.model().coefficients(), b.model().coefficients());
}

#[test]
fn stochastic_selection_varies_with_seed() {
    let output = run(&Scenario::quick().with_days(10).with_seed(31)).unwrap();
    let dataset = &output.dataset;
    let occupied = Mask::daily_window(dataset.grid(), 6 * 60, 21 * 60).unwrap();
    let temps = output.temperature_channels();
    let refs: Vec<&str> = temps.iter().map(String::as_str).collect();
    let inputs = output.input_channels();
    let input_refs: Vec<&str> = inputs.iter().map(String::as_str).collect();

    let fit_with_seed = |seed: u64| {
        ThermalPipeline::builder()
            .similarity(Similarity::correlation())
            .cluster_count(ClusterCount::Fixed(2))
            .selector(SelectorKind::StratifiedRandom)
            .seed(seed)
            .build()
            .unwrap()
            .fit(dataset, &refs, &input_refs, &occupied)
            .unwrap()
    };
    // With 25 candidate sensors the probability that five different
    // seeds all pick identical pairs is negligible.
    let baseline = fit_with_seed(1).selected_channels().to_vec();
    let any_differs = (2..=6).any(|s| fit_with_seed(s).selected_channels() != baseline);
    assert!(any_differs, "SRS never varied across seeds");
}
