//! Failure injection: the pipeline must degrade gracefully — not
//! panic, not fabricate data — when telemetry is badly damaged.

// Test fixtures: panicking on a broken fixture is the right failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use thermal_cluster::{cluster_trajectories, ClusterCount, Similarity, SpectralConfig};
use thermal_core::timeseries::{Channel, Mask};
use thermal_core::{ClusterCount as CoreCount, SelectorKind, ThermalPipeline};
use thermal_linalg::Matrix;
use thermal_sim::{run, Scenario};
use thermal_sysid::{identify, FitConfig, ModelOrder, ModelSpec};

#[test]
fn heavy_dropouts_still_identify() {
    let mut scenario = Scenario::quick().with_days(10).with_seed(301);
    scenario.sensors.dropout_start_prob = 0.02;
    scenario.sensors.dropout_mean_len = 6.0;
    let output = run(&scenario).unwrap();
    let dataset = &output.dataset;

    // Coverage is visibly damaged…
    let t = dataset.channel("t27").unwrap();
    assert!(t.coverage() < 0.99);

    // …but the piece-wise objective still finds enough segments.
    let spec = ModelSpec::new(
        output.temperature_channels(),
        output.input_channels(),
        ModelOrder::First,
    )
    .unwrap();
    let occupied = Mask::daily_window(dataset.grid(), 6 * 60, 21 * 60).unwrap();
    let model = identify(dataset, &spec, &occupied, &FitConfig::default()).unwrap();
    assert!(model.coefficients().is_finite());
}

#[test]
fn wholesale_outages_are_excluded_not_fabricated() {
    let mut scenario = Scenario::quick().with_days(8).with_seed(302);
    scenario.sensors.outage_day_prob = 0.5;
    scenario.min_usable_days = 3;
    let output = run(&scenario).unwrap();
    let dataset = &output.dataset;

    let idx: Vec<usize> = output
        .temperature_channels()
        .iter()
        .map(|n| dataset.channel_index(n).unwrap())
        .collect();
    let usable = dataset.usable_days(&idx, 0.5).unwrap();
    for day in &output.outage_days {
        assert!(!usable.contains(day), "outage day {day} counted usable");
    }
    assert!(usable.len() >= 3);
}

#[test]
fn dead_sensor_is_a_clusterable_outlier_not_a_crash() {
    // A sensor stuck at a constant: correlation treats it as
    // dissimilar from everything, and clustering must not panic.
    let n = 50;
    let mut rows: Vec<Vec<f64>> = Vec::new();
    for s in 0..5 {
        rows.push(
            (0..n)
                .map(|k| 20.0 + 0.1 * s as f64 + (k as f64 * 0.2).sin())
                .collect(),
        );
    }
    rows.push(vec![21.0; n]); // dead sensor
    let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    let traj = Matrix::from_rows(&refs).unwrap();
    let clustering = cluster_trajectories(
        &traj,
        &SpectralConfig {
            similarity: Similarity::correlation(),
            count: ClusterCount::Fixed(2),
            seed: 1,
            restarts: 4,
        },
    )
    .unwrap();
    // The dead sensor sits alone (or at least separated from the
    // coherent five).
    let dead_label = clustering.assignments()[5];
    let live_with_dead = clustering.assignments()[..5]
        .iter()
        .filter(|&&l| l == dead_label)
        .count();
    assert!(live_with_dead <= 1, "dead sensor absorbed the live ones");
}

#[test]
fn channel_lost_entirely_yields_error_not_panic() {
    let output = run(&Scenario::quick().with_days(5).with_seed(303)).unwrap();
    let dataset = &output.dataset;
    // Kill one temperature channel wholesale.
    let grid = *dataset.grid();
    let mut channels = Vec::new();
    for ch in dataset.channels() {
        if ch.name() == "t27" {
            channels.push(Channel::new("t27", vec![None; grid.len()]).unwrap());
        } else {
            channels.push(ch.clone());
        }
    }
    let damaged = thermal_core::timeseries::Dataset::new(grid, channels).unwrap();

    let spec = ModelSpec::new(
        output.temperature_channels(),
        output.input_channels(),
        ModelOrder::First,
    )
    .unwrap();
    let occupied = Mask::daily_window(damaged.grid(), 6 * 60, 21 * 60).unwrap();
    let err = identify(&damaged, &spec, &occupied, &FitConfig::default());
    assert!(
        err.is_err(),
        "identification over a dead channel must fail loudly"
    );
}

#[test]
fn pipeline_survives_realistic_damage() {
    let mut scenario = Scenario::quick().with_days(12).with_seed(304);
    scenario.sensors.dropout_start_prob = 0.008;
    scenario.sensors.outage_day_prob = 0.25;
    scenario.min_usable_days = 6;
    let output = run(&scenario).unwrap();
    let dataset = &output.dataset;
    let occupied = Mask::daily_window(dataset.grid(), 6 * 60, 21 * 60).unwrap();

    let temps = output.temperature_channels();
    let refs: Vec<&str> = temps.iter().map(String::as_str).collect();
    let inputs = output.input_channels();
    let input_refs: Vec<&str> = inputs.iter().map(String::as_str).collect();

    let reduced = ThermalPipeline::builder()
        .cluster_count(CoreCount::Fixed(2))
        .selector(SelectorKind::NearMean)
        .build()
        .unwrap()
        .fit(dataset, &refs, &input_refs, &occupied)
        .unwrap();
    assert_eq!(reduced.selected_channels().len(), 2);
}
